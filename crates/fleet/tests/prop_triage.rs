//! Property tests for the triage-store merge laws the coordinator relies
//! on: folding fragment findings in *any* order — original run, chaos-kill
//! reassignments, checkpointed resume — must converge on byte-identical
//! triage JSON.  That requires merge to be associative and commutative
//! (counts and provenance sum, representatives take `(seed, index)`
//! minima) and `record` to be arrival-order independent.

use gauntlet_core::{BugKind, BugReport, CompilerArea, Platform, Technique};
use gauntlet_fleet::TriageStore;
use proptest::prelude::*;

/// Deterministically expand a compact seed into a batch of recorded
/// occurrences.  A small message pool forces dedup-key collisions (the
/// interesting case); distinct bodies behind equal first lines exercise the
/// first-seen representative choice.
fn store_from(seed: u64) -> TriageStore {
    let mut store = TriageStore::new();
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for _ in 0..(seed % 11) + 1 {
        let roll = next();
        let kind = [BugKind::Crash, BugKind::Semantic, BugKind::Rejection][(roll % 3) as usize];
        let platform = [Platform::P4c, Platform::Bmv2][((roll >> 2) % 2) as usize];
        let first_line = ["mismatch", "assert failed", "timeout"][((roll >> 4) % 3) as usize];
        let report = BugReport::new(
            kind,
            platform,
            CompilerArea::MidEnd,
            Technique::TranslationValidation,
            Some("SimplifyDefUse".into()),
            format!("{first_line}\nbody variant {}", (roll >> 8) % 4),
        );
        let worker = format!("worker-{}", (roll >> 16) % 3);
        store.record(&worker, (roll >> 24) % 50, (roll >> 32) % 2, &report);
    }
    store
}

fn merged(base: &TriageStore, others: &[&TriageStore]) -> TriageStore {
    let mut out = base.clone();
    for other in others {
        out.merge(other);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// merge(a, b) == merge(b, a), byte-for-byte.
    #[test]
    fn merge_is_commutative(a in any::<u64>(), b in any::<u64>()) {
        let (sa, sb) = (store_from(a), store_from(b));
        prop_assert_eq!(merged(&sa, &[&sb]).to_json(), merged(&sb, &[&sa]).to_json());
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (sa, sb, sc) = (store_from(a), store_from(b), store_from(c));
        let left = merged(&merged(&sa, &[&sb]), &[&sc]);
        let right = merged(&sa, &[&merged(&sb, &[&sc])]);
        prop_assert_eq!(left.to_json(), right.to_json());
    }

    /// Merging the empty store is the identity.
    #[test]
    fn empty_store_is_the_identity(a in any::<u64>()) {
        let store = store_from(a);
        let empty = TriageStore::new();
        prop_assert_eq!(merged(&store, &[&empty]).to_json(), store.to_json());
        prop_assert_eq!(merged(&empty, &[&store]).to_json(), store.to_json());
    }

    /// Occurrence totals are preserved by merge (nothing dropped, nothing
    /// double-counted) and the distinct count is bounded by both inputs.
    #[test]
    fn merge_conserves_occurrences(a in any::<u64>(), b in any::<u64>()) {
        let (sa, sb) = (store_from(a), store_from(b));
        let both = merged(&sa, &[&sb]);
        prop_assert_eq!(both.occurrences(), sa.occurrences() + sb.occurrences());
        prop_assert!(both.len() <= sa.len() + sb.len());
        prop_assert!(both.len() >= sa.len().max(sb.len()));
    }

    /// The first-seen representative survives any interleaving: a single
    /// store fed occurrences in seed-shuffled order serializes identically.
    #[test]
    fn record_order_is_immaterial(a in any::<u64>(), b in any::<u64>()) {
        let (sa, sb) = (store_from(a), store_from(b));
        // a-then-b versus b-then-a through record-level merge.
        prop_assert_eq!(merged(&sa, &[&sb]).to_json(), merged(&sb, &[&sa]).to_json());
        // And a JSON round trip changes nothing.
        let combined = merged(&sa, &[&sb]);
        let parsed = gauntlet_telemetry::json::parse(&combined.to_json()).unwrap();
        prop_assert_eq!(TriageStore::from_json(&parsed).unwrap().to_json(), combined.to_json());
    }
}
