//! Folding shard fragments back into one campaign result.
//!
//! Every completed shard arrives as a *fragment*: the shard campaign's
//! deterministic `gauntlet-report-v1` `result` document, plus a fleet
//! envelope carrying what the cross-shard merge needs but the report schema
//! deliberately excludes — the shard's candidate corpus entries and its
//! construct-census keys.
//!
//! # Why the merge is exact
//!
//! Every seed derives its randomness from itself alone and (in fleet runs)
//! coverage adaptation is off, so a shard processes exactly the seeds the
//! single-process run would.  Report fields then merge by concatenation and
//! summation.  The one subtle piece is the corpus: single-process admission
//! is stateful ("does this program fire a rule the accumulator hasn't
//! seen?").  The key invariant is that a shard's accumulator always equals
//! the union of its *admitted* entries' full rule sets — a seed either adds
//! nothing to the accumulator or is admitted with its full fired set.
//! Consequently (a) a seed not admitted by its shard can never be
//! admissible globally (the global accumulator at that point is a superset
//! of the shard-local one), and (b) re-filtering the shard-admitted
//! candidates in seed order against an accumulator built from
//! previously-admitted candidates reproduces single-process admission
//! decision-for-decision.  `tests/fleet.rs` pins the result byte-identical
//! to `ParallelCampaign`.

use crate::spec::{FleetMode, FleetSpec};
use gauntlet_core::{
    cache_json, cache_summary_from_json, hunt_result_from_json, CacheSummary, Corpus, CorpusEntry,
    CoverageSummary, HuntReport, MutationSummary,
};
use gauntlet_telemetry::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Build one fragment body: the shard's deterministic result document plus
/// the fleet envelope — candidate corpus entries and census keys when the
/// campaign is coverage-guided, and the shard's cache counters (shaped like
/// the report's `run.cache` object) when the shard ran with a cache.  The
/// cache block is run-descriptive, like `elapsed`: the merged report and
/// corpus stay byte-identical whether or not any fragment carries one.
pub fn fragment_body(
    result_json: &str,
    coverage: Option<(&Corpus, &[String])>,
    cache: Option<&CacheSummary>,
) -> String {
    let mut body = format!("{{\"result\":{result_json}");
    if let Some(cache) = cache {
        body.push_str(",\"cache\":");
        body.push_str(&cache_json(cache));
    }
    if let Some((corpus, census)) = coverage {
        body.push_str(",\"corpus\":[");
        for (index, entry) in corpus.entries.iter().enumerate() {
            if index > 0 {
                body.push(',');
            }
            let mut rules = String::from("[");
            for (rule_index, rule) in entry.rules.iter().enumerate() {
                if rule_index > 0 {
                    rules.push(',');
                }
                rules.push_str(&json::string(rule));
            }
            rules.push(']');
            let mut pairs = String::from("[");
            for (pair_index, pair) in entry.pairs.iter().enumerate() {
                if pair_index > 0 {
                    pairs.push(',');
                }
                pairs.push_str(&json::string(pair));
            }
            pairs.push(']');
            body.push_str(&format!(
                "{{\"seed\":{},\"rules\":{},\"pairs\":{},\"source\":{}}}",
                entry.seed,
                rules,
                pairs,
                json::string(&entry.source)
            ));
        }
        body.push_str("],\"census\":[");
        for (index, key) in census.iter().enumerate() {
            if index > 0 {
                body.push(',');
            }
            body.push_str(&json::string(key));
        }
        body.push(']');
    }
    body.push('}');
    body
}

fn fragment_corpus(body: &Json) -> Result<Vec<CorpusEntry>, String> {
    let Some(entries) = body.get("corpus") else {
        return Ok(Vec::new());
    };
    entries
        .as_array()
        .ok_or("fragment `corpus` is not an array")?
        .iter()
        .map(|entry| {
            Ok(CorpusEntry {
                seed: entry
                    .get("seed")
                    .and_then(|s| s.as_u64())
                    .ok_or("corpus entry without `seed`")?,
                rules: entry
                    .get("rules")
                    .and_then(|r| r.as_array())
                    .ok_or("corpus entry without `rules`")?
                    .iter()
                    .map(|rule| {
                        rule.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "corpus rule is not a string".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                // Absent from pre-pair-tracking fragments: empty.
                pairs: match entry.get("pairs") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(pairs) => pairs
                        .as_array()
                        .ok_or("corpus entry `pairs` is not an array")?
                        .iter()
                        .map(|pair| {
                            pair.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "corpus pair is not a string".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                },
                source: entry
                    .get("source")
                    .and_then(|s| s.as_str())
                    .ok_or("corpus entry without `source`")?
                    .to_string(),
            })
        })
        .collect()
}

fn fragment_cache(body: &Json) -> Result<Option<CacheSummary>, String> {
    match body.get("cache") {
        None | Some(Json::Null) => Ok(None),
        Some(value) => cache_summary_from_json(value).map(Some),
    }
}

/// Field-wise sum of two cache summaries (workers report per-shard deltas,
/// so summing over fragments gives fleet-wide totals).
fn add_cache(total: &mut CacheSummary, part: &CacheSummary) {
    total.epochs += part.epochs;
    total.stats.semantics_hits += part.stats.semantics_hits;
    total.stats.semantics_misses += part.stats.semantics_misses;
    total.stats.verdict_hits += part.stats.verdict_hits;
    total.stats.verdict_misses += part.stats.verdict_misses;
    total.sessions.semantics_hits += part.sessions.semantics_hits;
    total.sessions.semantics_misses += part.sessions.semantics_misses;
    total.sessions.trivial_checks += part.sessions.trivial_checks;
    total.sessions.solver_checks += part.sessions.solver_checks;
    total.sessions.cached_checks += part.sessions.cached_checks;
    total.sessions.verdict_hits += part.sessions.verdict_hits;
    total.sessions.verdict_misses += part.sessions.verdict_misses;
    total.portfolio_races += part.portfolio_races;
}

fn fragment_census(body: &Json) -> Result<Vec<String>, String> {
    let Some(keys) = body.get("census") else {
        return Ok(Vec::new());
    };
    keys.as_array()
        .ok_or("fragment `census` is not an array")?
        .iter()
        .map(|key| {
            key.as_str()
                .map(str::to_string)
                .ok_or_else(|| "census key is not a string".to_string())
        })
        .collect()
}

/// Re-filter the shard-admitted candidates into the global corpus, in
/// `(shard, admission)` order — exactly reproducing single-process
/// admission (see the module docs for why).
///
/// Admission must test the *full* coverage signal — a rule novelty OR a
/// pair novelty — exactly as `ParallelCampaign` does.  Checking rules alone
/// would silently drop entries whose only contribution is a new cross-pass
/// interaction, and the merged corpus would no longer be byte-identical to
/// the single-process one.  Rule keys (`pass/rule`) and pair keys (`a->b`)
/// are disjoint string namespaces, so one accumulator set serves both.
pub fn refilter_corpus(fragments: &BTreeMap<usize, Json>) -> Result<Corpus, String> {
    let mut accum: BTreeSet<String> = BTreeSet::new();
    let mut corpus = Corpus::default();
    for body in fragments.values() {
        for entry in fragment_corpus(body)? {
            if entry.rules.iter().any(|rule| !accum.contains(rule))
                || entry.pairs.iter().any(|pair| !accum.contains(pair))
            {
                accum.extend(entry.rules.iter().cloned());
                accum.extend(entry.pairs.iter().cloned());
                corpus.entries.push(entry);
            }
        }
    }
    Ok(corpus)
}

/// Fold all fragments into the final report and corpus.
///
/// In deterministic mode outcomes concatenate in shard order (= ascending
/// seed order, matching `ParallelCampaign`'s ordered commit); in throughput
/// mode they concatenate in `arrival` order.  The corpus re-filter always
/// runs in shard order — its exactness argument needs it, and corpus bytes
/// are a persistent artifact worth keeping stable even in throughput runs.
pub fn merge(
    spec: &FleetSpec,
    fragments: &BTreeMap<usize, Json>,
    arrival: &[usize],
) -> Result<(HuntReport, Corpus), String> {
    let order: Vec<usize> = match spec.mode {
        FleetMode::Deterministic => fragments.keys().copied().collect(),
        FleetMode::Throughput => arrival.to_vec(),
    };
    let mut outcomes = Vec::new();
    let mut programs_checked = 0usize;
    let mut total_bugs = 0usize;
    let mut reduction_failures = 0usize;
    let mut fired: BTreeSet<String> = BTreeSet::new();
    let mut pairs: BTreeSet<String> = BTreeSet::new();
    let mut census: BTreeSet<String> = BTreeSet::new();
    let mut mutants_checked = 0usize;
    let mut divergent = 0usize;
    let mut mutation_fired: BTreeSet<String> = BTreeSet::new();
    let mut cache: Option<CacheSummary> = None;
    for shard in &order {
        let body = fragments
            .get(shard)
            .ok_or_else(|| format!("fragment for shard {shard} missing"))?;
        let result = body
            .get("result")
            .ok_or_else(|| format!("fragment for shard {shard} has no `result`"))?;
        let partial = hunt_result_from_json(result)
            .map_err(|error| format!("fragment for shard {shard}: {error}"))?;
        programs_checked += partial.programs_checked;
        total_bugs += partial.total_bugs;
        reduction_failures += partial.reduction_failures;
        outcomes.extend(partial.outcomes);
        if let Some(coverage) = partial.coverage {
            fired.extend(coverage.fired);
            pairs.extend(coverage.pairs);
        }
        if let Some(mutation) = partial.mutation {
            mutants_checked += mutation.mutants_checked;
            divergent += mutation.divergent;
            mutation_fired.extend(mutation.fired);
        }
        census.extend(fragment_census(body)?);
        if let Some(part) = fragment_cache(body)
            .map_err(|error| format!("fragment for shard {shard} cache: {error}"))?
        {
            add_cache(cache.get_or_insert_with(CacheSummary::default), &part);
        }
    }
    let corpus = if spec.coverage {
        refilter_corpus(fragments)?
    } else {
        Corpus::default()
    };
    let coverage = spec.coverage.then(|| {
        let fired: Vec<String> = fired.iter().cloned().collect();
        CoverageSummary {
            rules_total: p4c::coverage::total_rules(),
            constructs_seen: census.len(),
            corpus_size: corpus.len(),
            corpus_added: corpus.len(),
            // One entry, like a single-process non-adaptive hunt (one
            // epoch spanning the whole range).
            rules_over_time: vec![(programs_checked, fired.len())],
            fired,
            pairs: pairs.iter().cloned().collect(),
            pairs_total: p4c::coverage::total_pairs(),
        }
    });
    let mutation = (spec.mutants_per_seed > 0).then(|| MutationSummary {
        mutants_checked,
        divergent,
        fired: mutation_fired.into_iter().collect(),
        rules_total: p4_mutate::total_rules(),
    });
    let report = HuntReport {
        outcomes,
        programs_checked,
        total_bugs,
        elapsed: Duration::ZERO,
        per_worker: Vec::new(),
        reduction_failures,
        coverage,
        mutation,
        // Filled in by the coordinator from the merged triage store when
        // the spec runs with diversity (per-slice distinct-bug yield).
        diversity: None,
        cache,
        telemetry: None,
    };
    Ok((report, corpus))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Json {
        json::parse(text).expect("test fragment parses")
    }

    const EMPTY_RESULT: &str = "\"result\":{\"programs_checked\":0,\"seeds_with_bugs\":0,\"total_bugs\":0,\"reduction_failures\":0,\"outcomes\":[],\"summary\":{\"by_platform\":{},\"by_area\":{},\"by_attribution\":{},\"total_detected\":0},\"coverage\":null,\"mutation\":null}";

    fn corpus_fragment(entries: &[(u64, &[&str], &[&str])]) -> Json {
        let mut text = format!("{{{EMPTY_RESULT},\"corpus\":[");
        for (index, (seed, rules, pairs)) in entries.iter().enumerate() {
            if index > 0 {
                text.push(',');
            }
            let rules: Vec<String> = rules.iter().map(|r| format!("\"{r}\"")).collect();
            let pairs: Vec<String> = pairs.iter().map(|p| format!("\"{p}\"")).collect();
            text.push_str(&format!(
                "{{\"seed\":{seed},\"rules\":[{}],\"pairs\":[{}],\"source\":\"control c() {{ apply {{ }} }}\"}}",
                rules.join(","),
                pairs.join(",")
            ));
        }
        text.push_str("],\"census\":[]}");
        body(&text)
    }

    #[test]
    fn refilter_drops_candidates_covered_by_earlier_shards() {
        let mut fragments = BTreeMap::new();
        // Shard 0 admits rules {a, b}; shard 1's first candidate only
        // re-fires {a} (locally novel, globally redundant) and must be
        // dropped, while its second brings {c} and survives.
        fragments.insert(
            0,
            corpus_fragment(&[(1, &["p/a"], &[]), (3, &["p/a", "p/b"], &[])]),
        );
        fragments.insert(
            1,
            corpus_fragment(&[(25, &["p/a"], &[]), (27, &["p/c", "p/a"], &[])]),
        );
        let corpus = refilter_corpus(&fragments).expect("refilter");
        let seeds: Vec<u64> = corpus.entries.iter().map(|e| e.seed).collect();
        assert_eq!(seeds, vec![1, 3, 27]);
        assert_eq!(
            corpus.fingerprint(),
            vec!["p/a".to_string(), "p/b".to_string(), "p/c".to_string()]
        );
    }

    /// A candidate whose rules are all globally known but which observed a
    /// new cross-pass pair must still be admitted — the full coverage
    /// signal, exactly as single-process admission tests it.
    #[test]
    fn refilter_admits_on_pair_novelty_alone() {
        let mut fragments = BTreeMap::new();
        fragments.insert(0, corpus_fragment(&[(1, &["p/a", "q/b"], &["p/a->q/b"])]));
        fragments.insert(
            1,
            // Seed 25: same rules, same pair — dropped.  Seed 27: same
            // rules, new pair ordering observed — admitted.
            corpus_fragment(&[
                (25, &["p/a", "q/b"], &["p/a->q/b"]),
                (27, &["p/a", "q/b"], &["p/a->q/b", "p/a->r/c"]),
            ]),
        );
        let corpus = refilter_corpus(&fragments).expect("refilter");
        let seeds: Vec<u64> = corpus.entries.iter().map(|e| e.seed).collect();
        assert_eq!(seeds, vec![1, 27]);
        assert_eq!(
            corpus.pair_fingerprint(),
            vec!["p/a->q/b".to_string(), "p/a->r/c".to_string()]
        );
    }

    #[test]
    fn merge_orders_outcomes_by_mode() {
        let with_bug = |seed: u64| {
            body(&format!(
                "{{\"result\":{{\"programs_checked\":5,\"seeds_with_bugs\":1,\"total_bugs\":1,\"reduction_failures\":0,\"outcomes\":[{{\"seed\":{seed},\"reports\":[{{\"kind\":\"Semantic\",\"platform\":\"P4C\",\"area\":\"Mid End\",\"technique\":\"TranslationValidation\",\"pass\":null,\"message\":\"m{seed}\",\"attributed_to\":null,\"minimized\":null,\"reduction\":null}}]}}],\"summary\":{{\"by_platform\":{{}},\"by_area\":{{}},\"by_attribution\":{{}},\"total_detected\":0}},\"coverage\":null,\"mutation\":null}}}}"
            ))
        };
        let mut fragments = BTreeMap::new();
        fragments.insert(0, with_bug(2));
        fragments.insert(1, with_bug(7));
        let spec = FleetSpec {
            seed_count: 10,
            shard_size: 5,
            ..FleetSpec::default()
        };
        // Deterministic: shard order, whatever the arrival order was.
        let (report, _) = merge(&spec, &fragments, &[1, 0]).expect("merge");
        let seeds: Vec<u64> = report.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, vec![2, 7]);
        assert_eq!(report.programs_checked, 10);
        assert_eq!(report.total_bugs, 2);
        // Throughput: arrival order.
        let throughput = FleetSpec {
            mode: FleetMode::Throughput,
            ..spec
        };
        let (report, _) = merge(&throughput, &fragments, &[1, 0]).expect("merge");
        let seeds: Vec<u64> = report.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, vec![7, 2]);
    }

    #[test]
    fn fragment_body_round_trips_the_envelope() {
        let corpus = Corpus {
            entries: vec![CorpusEntry {
                seed: 4,
                rules: vec!["p/a".into()],
                pairs: vec!["p/a->q/b".into()],
                source: "control c() { apply { } }\n".into(),
            }],
        };
        let census = vec!["control/decl".to_string()];
        let text = fragment_body("{\"total_bugs\":0}", Some((&corpus, &census)), None);
        let parsed = body(&text);
        assert_eq!(fragment_corpus(&parsed).unwrap(), corpus.entries);
        assert_eq!(fragment_census(&parsed).unwrap(), census);
        assert_eq!(fragment_cache(&parsed).unwrap(), None);
        // Coverage off: no envelope at all.
        let bare = body(&fragment_body("{\"total_bugs\":0}", None, None));
        assert!(fragment_corpus(&bare).unwrap().is_empty());
        assert!(fragment_census(&bare).unwrap().is_empty());
    }

    #[test]
    fn merge_sums_fragment_cache_blocks() {
        use gauntlet_core::{CacheStats, SessionStats};
        let part = CacheSummary {
            epochs: 2,
            stats: CacheStats {
                semantics_hits: 3,
                semantics_misses: 5,
                verdict_hits: 7,
                verdict_misses: 11,
            },
            sessions: SessionStats {
                semantics_hits: 3,
                semantics_misses: 5,
                trivial_checks: 2,
                solver_checks: 9,
                cached_checks: 1,
                verdict_hits: 7,
                verdict_misses: 11,
            },
            portfolio_races: 1,
        };
        // The cache block round-trips through the fragment envelope.
        let text = fragment_body("{\"total_bugs\":0}", None, Some(&part));
        assert_eq!(fragment_cache(&body(&text)).unwrap(), Some(part));

        let mut fragments = BTreeMap::new();
        fragments.insert(
            0,
            body(&format!(
                "{{{EMPTY_RESULT},\"cache\":{}}}",
                cache_json(&part)
            )),
        );
        fragments.insert(
            1,
            body(&format!(
                "{{{EMPTY_RESULT},\"cache\":{}}}",
                cache_json(&part)
            )),
        );
        // A cache-less fragment (a worker run with the cache off) still
        // merges; it just contributes nothing.
        fragments.insert(2, body(&format!("{{{EMPTY_RESULT}}}")));
        let spec = FleetSpec::default();
        let (report, _) = merge(&spec, &fragments, &[]).expect("merge");
        let merged = report.cache.expect("cache block survives the merge");
        assert_eq!(merged.epochs, 4);
        assert_eq!(merged.stats.semantics_hits, 6);
        assert_eq!(merged.stats.verdict_misses, 22);
        assert_eq!(merged.sessions.solver_checks, 18);
        assert_eq!(merged.portfolio_races, 2);

        // No fragment carries a cache: the merged report has none either.
        let mut bare = BTreeMap::new();
        bare.insert(0, body(&format!("{{{EMPTY_RESULT}}}")));
        let (report, _) = merge(&spec, &bare, &[]).expect("merge");
        assert!(report.cache.is_none());
    }
}
