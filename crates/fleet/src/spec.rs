//! The fleet campaign description: everything a worker needs to rebuild the
//! exact [`HuntConfig`] for any shard of the seed range.
//!
//! The spec is deliberately a *description* (strings and numbers), not a
//! `HuntConfig`: it crosses a process boundary, lands in checkpoints, and
//! must stay meaningful to a coordinator restarted days later.  Workers
//! resolve it back to concrete objects (compiler factory, generator preset)
//! through [`FleetSpec::validate`]-checked names.
//!
//! Deterministic mode restrictions (enforced by `validate`): coverage runs
//! with `adapt: false` — weight adaptation feeds committed coverage back
//! into generation, which would couple shards and break the equal-to-
//! single-process guarantee — and there is no bug quota (an early stop
//! cannot be replicated across independently-scheduled shards).

use gauntlet_core::{CoverageOptions, HuntConfig, MetamorphicOptions, SeededBug};
use gauntlet_telemetry::json::{self, Json};
use p4_gen::GeneratorConfig;

/// Shard scheduling / merge mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetMode {
    /// Ordered commit across shards: the merged report and corpus are
    /// byte-identical to a single-process `ParallelCampaign` over the same
    /// range, at any worker count.
    Deterministic,
    /// First-come merge: outcomes appear in fragment-arrival order and a
    /// live status line streams from worker events.  Explicitly
    /// non-deterministic.
    Throughput,
}

impl FleetMode {
    pub fn as_str(self) -> &'static str {
        match self {
            FleetMode::Deterministic => "deterministic",
            FleetMode::Throughput => "throughput",
        }
    }

    pub fn from_name(name: &str) -> Option<FleetMode> {
        match name {
            "deterministic" => Some(FleetMode::Deterministic),
            "throughput" => Some(FleetMode::Throughput),
            _ => None,
        }
    }
}

/// The compiler under test, by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompilerSpec {
    /// The correct reference pipeline.
    Reference,
    /// A pipeline seeded with one catalogue bug (`SeededBug::name`).
    Seeded(String),
}

impl CompilerSpec {
    pub fn as_str(&self) -> &str {
        match self {
            CompilerSpec::Reference => "reference",
            CompilerSpec::Seeded(name) => name,
        }
    }

    pub fn from_name(name: &str) -> CompilerSpec {
        if name == "reference" {
            CompilerSpec::Reference
        } else {
            CompilerSpec::Seeded(name.to_string())
        }
    }

    /// Resolve to the seeded bug, if any; `Err` on an unknown name.
    pub fn resolve(&self) -> Result<Option<SeededBug>, String> {
        match self {
            CompilerSpec::Reference => Ok(None),
            CompilerSpec::Seeded(name) => SeededBug::catalogue()
                .into_iter()
                .find(|bug| bug.name() == *name)
                .map(Some)
                .ok_or_else(|| format!("unknown seeded bug `{name}`")),
        }
    }

    /// Build one compiler instance.
    pub fn build(&self) -> p4c::Compiler {
        match self.resolve().expect("spec validated") {
            Some(bug) => bug.build_compiler(),
            None => p4c::Compiler::reference(),
        }
    }
}

/// The full campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Worker processes.
    pub workers: usize,
    /// Threads per worker process (`HuntConfig::jobs`).
    pub jobs_per_worker: usize,
    /// First seed of the range.
    pub seed_start: u64,
    /// Total seeds across all shards.
    pub seed_count: usize,
    /// Seeds per shard (the lease granularity).
    pub shard_size: usize,
    /// Compiler under test.
    pub compiler: CompilerSpec,
    /// Generator preset: `"tiny"`, `"default"`, or `"tofino"`.
    pub generator: String,
    pub mode: FleetMode,
    /// Account pass-rule coverage (always `adapt: false` — see module docs).
    pub coverage: bool,
    /// Coordinator-side output path for the merged corpus (requires
    /// `coverage`).
    pub corpus: Option<String>,
    /// Swarm diversity: give each worker slice a deterministic generator
    /// perturbation and a disjoint partition of the uncovered pair frontier
    /// (requires `coverage`).  A slice is `shard % workers` — a pure
    /// function of the spec, so lease reassignment and crash-resume keep
    /// every shard's generator identical.  Diversity trades the
    /// equal-at-any-worker-count guarantee for exploration breadth: results
    /// are still deterministic *for a fixed spec*, but differ across
    /// `workers` settings (uniform fleets remain count-independent).
    pub diversity: bool,
    /// Mutants per seed; 0 disables the metamorphic dimension.
    pub mutants_per_seed: usize,
    /// Delta-debug committed findings.
    pub reduce_reports: bool,
    /// Differential target specs (`HuntConfig::targets`).
    pub targets: Vec<String>,
    /// Checkpoint file path; `None` disables checkpointing (and resume).
    pub checkpoint: Option<String>,
    /// Completed shards between checkpoint writes.
    pub checkpoint_every: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            workers: 2,
            jobs_per_worker: 1,
            seed_start: 0,
            seed_count: 100,
            shard_size: 25,
            compiler: CompilerSpec::Reference,
            generator: "tiny".to_string(),
            mode: FleetMode::Deterministic,
            coverage: false,
            corpus: None,
            diversity: false,
            mutants_per_seed: 0,
            reduce_reports: false,
            targets: Vec::new(),
            checkpoint: None,
            checkpoint_every: 1,
        }
    }
}

impl FleetSpec {
    /// Number of shards the seed range splits into.
    pub fn shard_count(&self) -> usize {
        self.seed_count.div_ceil(self.shard_size.max(1))
    }

    /// `(offset, count)` of one shard.
    pub fn shard_range(&self, shard: usize) -> (u64, usize) {
        let offset = shard * self.shard_size;
        let count = self.shard_size.min(self.seed_count - offset);
        (offset as u64, count)
    }

    /// Resolve the generator preset.
    pub fn generator_config(&self) -> Result<GeneratorConfig, String> {
        match self.generator.as_str() {
            "tiny" => Ok(GeneratorConfig::tiny()),
            "default" => Ok(GeneratorConfig::default()),
            "tofino" => Ok(GeneratorConfig::tofino()),
            other => Err(format!("unknown generator preset `{other}`")),
        }
    }

    /// Check every name resolves and the shape is runnable.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.seed_count == 0 {
            return Err("seed_count must be at least 1".into());
        }
        if self.shard_size == 0 {
            return Err("shard_size must be at least 1".into());
        }
        if self.corpus.is_some() && !self.coverage {
            return Err("a corpus path requires coverage".into());
        }
        if self.diversity && !self.coverage {
            return Err("diversity requires coverage".into());
        }
        self.compiler.resolve()?;
        self.generator_config()?;
        Ok(())
    }

    /// The `HuntConfig` for the *whole* seed range; shards are cut from it
    /// with [`HuntConfig::shard`].  Corpus and telemetry stay unset here —
    /// the worker attaches its own temp corpus and event sink per shard.
    pub fn hunt_config(&self) -> Result<HuntConfig, String> {
        Ok(HuntConfig {
            jobs: self.jobs_per_worker.max(1),
            seed_start: self.seed_start,
            seed_count: self.seed_count,
            generator: self.generator_config()?,
            bug_quota: None,
            reduce_reports: self.reduce_reports,
            targets: self.targets.clone(),
            coverage: self.coverage.then(|| CoverageOptions {
                adapt: false,
                corpus: None,
                ..CoverageOptions::default()
            }),
            mutation: (self.mutants_per_seed > 0).then(|| MetamorphicOptions {
                mutants_per_seed: self.mutants_per_seed,
                ..MetamorphicOptions::default()
            }),
            ..HuntConfig::default()
        })
    }

    pub fn to_json(&self) -> String {
        let mut targets = String::from("[");
        for (index, target) in self.targets.iter().enumerate() {
            if index > 0 {
                targets.push(',');
            }
            targets.push_str(&json::string(target));
        }
        targets.push(']');
        format!(
            "{{\"workers\":{},\"jobs_per_worker\":{},\"seed_start\":{},\"seed_count\":{},\"shard_size\":{},\"compiler\":{},\"generator\":{},\"mode\":{},\"coverage\":{},\"corpus\":{},\"diversity\":{},\"mutants_per_seed\":{},\"reduce_reports\":{},\"targets\":{},\"checkpoint\":{},\"checkpoint_every\":{}}}",
            self.workers,
            self.jobs_per_worker,
            self.seed_start,
            self.seed_count,
            self.shard_size,
            json::string(self.compiler.as_str()),
            json::string(&self.generator),
            json::string(self.mode.as_str()),
            self.coverage,
            match &self.corpus {
                Some(path) => json::string(path),
                None => "null".to_string(),
            },
            self.diversity,
            self.mutants_per_seed,
            self.reduce_reports,
            targets,
            match &self.checkpoint {
                Some(path) => json::string(path),
                None => "null".to_string(),
            },
            self.checkpoint_every
        )
    }

    pub fn from_json(value: &Json) -> Result<FleetSpec, String> {
        fn num(value: &Json, key: &str) -> Result<u64, String> {
            value
                .get(key)
                .and_then(|n| n.as_u64())
                .ok_or_else(|| format!("spec: `{key}` missing or not an integer"))
        }
        fn text(value: &Json, key: &str) -> Result<String, String> {
            value
                .get(key)
                .and_then(|s| s.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("spec: `{key}` missing or not a string"))
        }
        fn flag(value: &Json, key: &str) -> Result<bool, String> {
            value
                .get(key)
                .and_then(|b| b.as_bool())
                .ok_or_else(|| format!("spec: `{key}` missing or not a bool"))
        }
        fn opt_text(value: &Json, key: &str) -> Result<Option<String>, String> {
            match value.get(key) {
                Some(Json::Null) | None => Ok(None),
                Some(other) => other
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("spec: `{key}` is not a string or null")),
            }
        }
        let mode_name = text(value, "mode")?;
        let targets = value
            .get("targets")
            .and_then(|t| t.as_array())
            .ok_or("spec: `targets` missing or not an array")?
            .iter()
            .map(|t| {
                t.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "spec: `targets` holds a non-string".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FleetSpec {
            workers: num(value, "workers")? as usize,
            jobs_per_worker: num(value, "jobs_per_worker")? as usize,
            seed_start: num(value, "seed_start")?,
            seed_count: num(value, "seed_count")? as usize,
            shard_size: num(value, "shard_size")? as usize,
            compiler: CompilerSpec::from_name(&text(value, "compiler")?),
            generator: text(value, "generator")?,
            mode: FleetMode::from_name(&mode_name)
                .ok_or_else(|| format!("spec: unknown mode `{mode_name}`"))?,
            coverage: flag(value, "coverage")?,
            corpus: opt_text(value, "corpus")?,
            // Absent from pre-diversity specs and checkpoints: default off.
            diversity: match value.get("diversity") {
                Some(Json::Null) | None => false,
                Some(_) => flag(value, "diversity")?,
            },
            mutants_per_seed: num(value, "mutants_per_seed")? as usize,
            reduce_reports: flag(value, "reduce_reports")?,
            targets,
            checkpoint: opt_text(value, "checkpoint")?,
            checkpoint_every: num(value, "checkpoint_every")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = FleetSpec {
            workers: 3,
            seed_start: 40,
            seed_count: 90,
            shard_size: 15,
            compiler: CompilerSpec::Seeded("DropPredicateBlocks".into()),
            mode: FleetMode::Throughput,
            coverage: true,
            corpus: Some("corpus.txt".into()),
            diversity: true,
            mutants_per_seed: 2,
            targets: vec!["bmv2".into(), "ref-interp".into()],
            checkpoint: Some("fleet.ckpt".into()),
            ..FleetSpec::default()
        };
        let parsed = json::parse(&spec.to_json()).expect("spec JSON parses");
        assert_eq!(FleetSpec::from_json(&parsed).expect("reconstructs"), spec);
    }

    #[test]
    fn shards_tile_the_seed_range_exactly() {
        let spec = FleetSpec {
            seed_count: 95,
            shard_size: 25,
            ..FleetSpec::default()
        };
        assert_eq!(spec.shard_count(), 4);
        let mut next = 0u64;
        let mut total = 0usize;
        for shard in 0..spec.shard_count() {
            let (offset, count) = spec.shard_range(shard);
            assert_eq!(offset, next);
            assert!(count > 0);
            next = offset + count as u64;
            total += count;
        }
        assert_eq!(total, 95);
    }

    /// Specs serialized before the diversity flag (old checkpoints) load
    /// with diversity off instead of failing.
    #[test]
    fn legacy_specs_without_the_diversity_key_still_load() {
        let spec = FleetSpec::default();
        let mut text = spec.to_json();
        let needle = "\"diversity\":false,";
        let at = text.find(needle).expect("serialized diversity key");
        text.replace_range(at..at + needle.len(), "");
        let parsed = json::parse(&text).expect("stripped spec parses");
        assert_eq!(FleetSpec::from_json(&parsed).expect("reconstructs"), spec);
    }

    #[test]
    fn validation_rejects_unresolvable_names() {
        let mut spec = FleetSpec::default();
        assert!(spec.validate().is_ok());
        spec.compiler = CompilerSpec::Seeded("NoSuchBug".into());
        assert!(spec.validate().is_err());
        spec.compiler = CompilerSpec::Reference;
        spec.generator = "enormous".into();
        assert!(spec.validate().is_err());
        spec.generator = "tiny".into();
        spec.corpus = Some("c.txt".into());
        assert!(spec.validate().is_err(), "corpus without coverage");
        spec.coverage = true;
        assert!(spec.validate().is_ok());
        spec.coverage = false;
        spec.corpus = None;
        spec.diversity = true;
        assert!(spec.validate().is_err(), "diversity without coverage");
        spec.coverage = true;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn seeded_compilers_resolve_through_the_catalogue() {
        let bug = SeededBug::catalogue()[0];
        let spec = CompilerSpec::from_name(&bug.name());
        assert_eq!(spec.resolve().expect("known bug"), Some(bug));
        assert_eq!(CompilerSpec::Reference.resolve().unwrap(), None);
    }
}
