//! The on-disk checkpoint: everything a restarted coordinator needs to
//! continue a campaign (`gauntlet fleet resume`) — and nothing a worker
//! restart needs, because workers are stateless by design (their whole
//! state is the shard lease, which the coordinator re-issues).
//!
//! A checkpoint carries the spec, every completed fragment verbatim, the
//! triage store, and — derived but stored explicitly so `fleet status` and
//! external tools need no merge logic — the corpus-so-far, its coverage
//! fingerprint, and the done/remaining shard map.  Saves are atomic
//! (write-to-temp, rename), so a coordinator killed mid-checkpoint leaves
//! the previous checkpoint intact rather than a torn file.
//!
//! Resume correctness: the final report is a pure function of the fragment
//! set (see `merge`), and the triage store's merge is order-independent, so
//! a resumed run converges on byte-identical artifacts no matter where the
//! original died (pinned by `tests/fleet.rs`).

use crate::merge::refilter_corpus;
use crate::spec::FleetSpec;
use crate::triage::TriageStore;
use gauntlet_telemetry::json::{self, Json};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema tag of the checkpoint document.
pub const CHECKPOINT_SCHEMA: &str = "gauntlet-checkpoint-v1";

/// Why [`Checkpoint::load`] failed.  Typed so callers can distinguish "no
/// such file" from "the file is damaged" — and so `fleet status`/`fleet
/// resume` report a corrupt checkpoint as a diagnostic with a nonzero exit
/// instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read (missing, permissions, I/O failure).
    Io { path: String, error: String },
    /// The bytes are not one well-formed JSON document — the signature of a
    /// checkpoint truncated by a crash or a full disk.  Atomic saves make
    /// this unreachable for checkpoints this binary wrote, but older or
    /// foreign files still arrive here.
    Truncated { path: String, error: String },
    /// Well-formed JSON that is not a valid `gauntlet-checkpoint-v1`
    /// document (wrong schema tag, missing fields, bad spec).
    Invalid { path: String, error: String },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, error } => {
                write!(f, "cannot read checkpoint {path}: {error}")
            }
            CheckpointError::Truncated { path, error } => write!(
                f,
                "checkpoint {path} is not well-formed JSON (truncated or corrupt): {error}"
            ),
            CheckpointError::Invalid { path, error } => {
                write!(
                    f,
                    "checkpoint {path} is not a valid {CHECKPOINT_SCHEMA} document: {error}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// `gauntlet`'s CLI plumbing threads `Result<_, String>`; the conversion
/// keeps `Checkpoint::load(...)?` working there while the typed error stays
/// available to programmatic callers.
impl From<CheckpointError> for String {
    fn from(error: CheckpointError) -> String {
        error.to_string()
    }
}

/// A saved (or loaded) campaign state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub spec: FleetSpec,
    /// Completed shards: fragment bodies exactly as the workers sent them.
    pub fragments: BTreeMap<usize, Json>,
    pub triage: TriageStore,
    /// True once every shard has completed (the final checkpoint of a
    /// finished run).
    pub complete: bool,
}

impl Checkpoint {
    /// Shards not yet covered by a fragment, in ascending order.
    pub fn remaining_shards(&self) -> Vec<usize> {
        (0..self.spec.shard_count())
            .filter(|shard| !self.fragments.contains_key(shard))
            .collect()
    }

    pub fn to_json(&self) -> Result<String, String> {
        let corpus = refilter_corpus(&self.fragments)?;
        let fingerprint = corpus.fingerprint();
        let mut out = format!(
            "{{\"schema\":{},\"complete\":{},\"spec\":{}",
            json::string(CHECKPOINT_SCHEMA),
            self.complete,
            self.spec.to_json()
        );
        out.push_str(",\"shards\":{\"total\":");
        out.push_str(&self.spec.shard_count().to_string());
        out.push_str(",\"done\":[");
        for (index, shard) in self.fragments.keys().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&shard.to_string());
        }
        out.push_str("],\"remaining\":[");
        for (index, shard) in self.remaining_shards().iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&shard.to_string());
        }
        out.push_str("]}");
        out.push_str(",\"corpus\":");
        out.push_str(&json::string(&corpus.to_text()));
        out.push_str(",\"fingerprint\":[");
        for (index, rule) in fingerprint.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&json::string(rule));
        }
        out.push(']');
        out.push_str(",\"triage\":");
        out.push_str(&self.triage.to_json());
        out.push_str(",\"fragments\":{");
        for (index, (shard, body)) in self.fragments.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&json::string(&shard.to_string()));
            out.push(':');
            out.push_str(&json::render(body));
        }
        out.push_str("}}");
        Ok(out)
    }

    pub fn from_json(value: &Json) -> Result<Checkpoint, String> {
        match value.get("schema").and_then(|s| s.as_str()) {
            Some(CHECKPOINT_SCHEMA) => {}
            other => return Err(format!("not a checkpoint: schema {other:?}")),
        }
        let spec = FleetSpec::from_json(value.get("spec").ok_or("checkpoint without `spec`")?)?;
        let mut fragments = BTreeMap::new();
        for (shard, body) in value
            .get("fragments")
            .and_then(|f| f.as_object())
            .ok_or("checkpoint without `fragments`")?
        {
            let shard: usize = shard
                .parse()
                .map_err(|_| format!("bad fragment shard key `{shard}`"))?;
            fragments.insert(shard, body.clone());
        }
        Ok(Checkpoint {
            spec,
            fragments,
            triage: TriageStore::from_json(
                value.get("triage").ok_or("checkpoint without `triage`")?,
            )?,
            complete: value
                .get("complete")
                .and_then(|c| c.as_bool())
                .ok_or("checkpoint without `complete`")?,
        })
    }

    /// Atomic save: write a sibling temp file, then rename over the target.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        let bytes = self.to_json()?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(|error| format!("write {}: {error}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|error| format!("rename to {}: {error}", path.display()))
    }

    /// Load and validate a checkpoint file.  Never panics on damaged input:
    /// every failure mode maps to a [`CheckpointError`] variant.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| CheckpointError::Io {
            path: path.display().to_string(),
            error: error.to_string(),
        })?;
        let value = json::parse(&text).map_err(|error| CheckpointError::Truncated {
            path: path.display().to_string(),
            error,
        })?;
        Checkpoint::from_json(&value).map_err(|error| CheckpointError::Invalid {
            path: path.display().to_string(),
            error,
        })
    }

    /// The `fleet status` view.
    pub fn render_status(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet campaign: {} seed(s) from {}, {} shard(s) of {}, mode {}",
            self.spec.seed_count,
            self.spec.seed_start,
            self.spec.shard_count(),
            self.spec.shard_size,
            self.spec.mode.as_str()
        );
        let _ = writeln!(
            out,
            "compiler: {} · generator: {} · coverage: {} · mutants/seed: {}",
            self.spec.compiler.as_str(),
            self.spec.generator,
            self.spec.coverage,
            self.spec.mutants_per_seed
        );
        let remaining = self.remaining_shards();
        let _ = writeln!(
            out,
            "progress: {}/{} shard(s) done{} · remaining {:?}",
            self.fragments.len(),
            self.spec.shard_count(),
            if self.complete { " · COMPLETE" } else { "" },
            remaining
        );
        if self.spec.coverage {
            if let Ok(corpus) = refilter_corpus(&self.fragments) {
                let _ = writeln!(
                    out,
                    "corpus so far: {} entry(ies), {} distinct rule(s)",
                    corpus.len(),
                    corpus.fingerprint().len()
                );
            }
        }
        out.push_str(&self.triage.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gauntlet_core::{BugKind, BugReport, CompilerArea, Platform, Technique};

    fn sample() -> Checkpoint {
        let mut triage = TriageStore::new();
        triage.record(
            "worker-0",
            12,
            0,
            &BugReport::new(
                BugKind::Crash,
                Platform::P4c,
                CompilerArea::FrontEnd,
                Technique::RandomGeneration,
                Some("Predication".into()),
                "assertion failed".into(),
            ),
        );
        let mut fragments = BTreeMap::new();
        fragments.insert(
            0,
            json::parse("{\"result\":{\"programs_checked\":25,\"total_bugs\":1},\"corpus\":[],\"census\":[]}")
                .unwrap(),
        );
        fragments.insert(
            2,
            json::parse("{\"result\":{\"programs_checked\":25,\"total_bugs\":0},\"corpus\":[],\"census\":[]}")
                .unwrap(),
        );
        Checkpoint {
            spec: FleetSpec {
                seed_count: 100,
                shard_size: 25,
                checkpoint: Some("fleet.ckpt".into()),
                ..FleetSpec::default()
            },
            fragments,
            triage,
            complete: false,
        }
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let checkpoint = sample();
        let bytes = checkpoint.to_json().expect("serializes");
        let back = Checkpoint::from_json(&json::parse(&bytes).expect("parses")).expect("loads");
        assert_eq!(back.spec, checkpoint.spec);
        assert_eq!(back.fragments, checkpoint.fragments);
        assert_eq!(back.triage.to_json(), checkpoint.triage.to_json());
        assert!(!back.complete);
        assert_eq!(back.to_json().expect("re-serializes"), bytes);
    }

    #[test]
    fn remaining_shards_are_the_gaps() {
        assert_eq!(sample().remaining_shards(), vec![1, 3]);
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join(format!("gauntlet-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.ckpt");
        let checkpoint = sample();
        checkpoint.save(&path).expect("saves");
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        let back = Checkpoint::load(&path).expect("loads");
        assert_eq!(back.spec, checkpoint.spec);
        let status = back.render_status();
        assert!(status.contains("2/4 shard(s) done"));
        assert!(status.contains("remaining [1, 3]"));
        assert!(status.contains("triage: 1 distinct bug(s)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_reports_truncated_and_corrupt_files_as_typed_errors() {
        let dir =
            std::env::temp_dir().join(format!("gauntlet-ckpt-truncated-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.ckpt");

        // A real checkpoint, truncated mid-file — the shape a crash during
        // a non-atomic write (or a torn copy) leaves behind.
        let checkpoint = sample();
        checkpoint.save(&path).expect("saves");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        match Checkpoint::load(&path) {
            Err(CheckpointError::Truncated { path: reported, .. }) => {
                assert_eq!(reported, path.display().to_string());
            }
            other => panic!("expected Truncated error, got {other:?}"),
        }

        // Well-formed JSON that is not a checkpoint document.
        std::fs::write(&path, "{\"schema\":\"not-a-checkpoint\"}").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(CheckpointError::Invalid { .. })
        ));

        // Missing file.
        let missing = dir.join("nope.ckpt");
        let error = Checkpoint::load(&missing).expect_err("missing file errors");
        assert!(matches!(error, CheckpointError::Io { .. }));
        // The String conversion used by the CLI keeps the diagnostic.
        let rendered: String = error.into();
        assert!(rendered.contains("nope.ckpt"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
