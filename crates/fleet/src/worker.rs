//! The worker process: a stateless shard executor behind the frame
//! protocol.
//!
//! `gauntlet fleet-worker` calls [`serve`], which speaks frames on
//! stdin/stdout: `init` delivers the [`FleetSpec`], each `assign` runs one
//! shard through the ordinary in-process [`ParallelCampaign`] and answers
//! with a `fragment` frame, and `shutdown` exits.  Campaign events stream
//! out as `event` frames *while the shard runs* (the coordinator's live
//! status and crash forensics depend on that), via an [`EventLog`] sink
//! that reframes each JSONL line onto stdout.
//!
//! Statelessness is the crash-tolerance story: a worker owns nothing but
//! its current lease, so the coordinator recovers from a dead worker by
//! re-assigning the shard — no worker-side journal, no partial-shard
//! resume.  Shards are small (the lease granularity) precisely so that
//! re-running one is cheap.

use crate::merge::fragment_body;
use crate::protocol::{read_frame, write_frame, FromWorker, ToWorker};
use crate::spec::FleetSpec;
use gauntlet_core::{Corpus, ParallelCampaign, TelemetryOptions};
use gauntlet_telemetry::EventLog;
use p4_gen::RandomProgramGenerator;
use p4_ir::ConstructCensus;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// An [`EventLog`] sink that turns each complete JSONL line into one
/// `event` frame on stdout.  Every frame is a single `write_all` and
/// `Stdout` serializes writers internally, so event frames never interleave
/// with the fragment frame the main thread writes at shard end.
#[derive(Default)]
struct EventFrameWriter {
    buffer: Vec<u8>,
}

impl Write for EventFrameWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buffer.extend_from_slice(buf);
        while let Some(newline) = self.buffer.iter().position(|&byte| byte == b'\n') {
            let line: Vec<u8> = self.buffer.drain(..=newline).collect();
            let line = String::from_utf8(line).map_err(|error| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, error.to_string())
            })?;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            // The line is already one rendered JSON object — embed verbatim.
            let body = format!("{{\"type\":\"event\",\"payload\":{line}}}");
            write_frame(&mut std::io::stdout(), &body)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        std::io::stdout().flush()
    }
}

/// The worker's scratch corpus path for one shard.  Campaigns persist their
/// corpus through a file path, so the worker lends each shard a throwaway
/// file in the temp dir and reads the admitted candidates back out of it.
fn shard_corpus_path(shard: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gauntlet-fleet-worker-{}-{shard}.corpus",
        std::process::id()
    ))
}

/// Run one shard and build its fragment body.
fn run_shard(spec: &FleetSpec, shard: usize, offset: u64, count: usize) -> Result<String, String> {
    let mut config = spec
        .hunt_config()
        .map_err(|error| format!("shard {shard}: {error}"))?
        .shard(offset, count);
    let corpus_path = spec.coverage.then(|| shard_corpus_path(shard));
    if let (Some(path), Some(coverage)) = (&corpus_path, config.coverage.as_mut()) {
        // Start cold: a stale file from a previous lease of this shard
        // would be replayed into the campaign.
        let _ = std::fs::remove_file(path);
        coverage.corpus = Some(path.display().to_string());
    }
    config.telemetry = Some(TelemetryOptions {
        events: None,
        sink: Some(Arc::new(EventLog::with_sink(Box::new(
            EventFrameWriter::default(),
        )))),
        progress: false,
        heartbeat_every: usize::MAX,
    });
    let generator = config.generator.clone();
    let compiler = spec.compiler.clone();
    let report = ParallelCampaign::new(config).run(move || compiler.build());
    let result_json = report.deterministic_json();
    let body = match &corpus_path {
        None => fragment_body(&result_json, None),
        Some(path) => {
            let corpus = Corpus::load_or_empty(path)
                .map_err(|error| format!("shard {shard} corpus: {error}"))?;
            let _ = std::fs::remove_file(path);
            // The shard's construct-census keys.  The census is a pure
            // function of the generated programs, which are a pure function
            // of (generator config, seed) — so regenerating here observes
            // exactly what the campaign observed, without widening the
            // deterministic report schema.
            let mut census: BTreeSet<String> = BTreeSet::new();
            for index in 0..count {
                let seed = spec.seed_start + offset + index as u64;
                let program = RandomProgramGenerator::new(generator.clone(), seed).generate();
                census.extend(
                    ConstructCensus::of(&program)
                        .iter()
                        .map(|(key, _)| key.to_string()),
                );
            }
            let census: Vec<String> = census.into_iter().collect();
            fragment_body(&result_json, Some((&corpus, &census)))
        }
    };
    Ok(body)
}

/// The worker main loop.  Returns an error string for protocol violations
/// (which the binary surfaces on stderr and exits nonzero); a closed stdin
/// is an orderly exit, mirroring coordinator death.
pub fn serve() -> Result<(), String> {
    let stdout = std::io::stdout();
    write_frame(
        &mut stdout.lock(),
        &FromWorker::Hello {
            pid: std::process::id() as u64,
        }
        .to_body(),
    )
    .map_err(|error| format!("hello: {error}"))?;

    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut spec: Option<FleetSpec> = None;
    loop {
        let frame = match read_frame(&mut input) {
            Ok(Some(frame)) => frame,
            // Coordinator gone (cleanly or not): exit quietly.
            Ok(None) => return Ok(()),
            Err(error) if error.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(error) => return Err(format!("reading frame: {error}")),
        };
        match ToWorker::from_body(&frame)? {
            ToWorker::Init { spec: value } => {
                let parsed = FleetSpec::from_json(&value)?;
                parsed.validate()?;
                spec = Some(parsed);
            }
            ToWorker::Assign {
                shard,
                offset,
                count,
            } => {
                let spec = spec.as_ref().ok_or("assign before init")?;
                let body = run_shard(spec, shard, offset, count)?;
                write_frame(
                    &mut stdout.lock(),
                    &format!("{{\"type\":\"fragment\",\"shard\":{shard},\"body\":{body}}}"),
                )
                .map_err(|error| format!("fragment: {error}"))?;
            }
            ToWorker::Stall => loop {
                // Chaos hook: emulate a wedged worker until killed.
                std::thread::sleep(std::time::Duration::from_secs(3600));
            },
            ToWorker::Shutdown => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;
    use crate::spec::FleetMode;
    use gauntlet_core::SeededBug;
    use gauntlet_telemetry::json;
    use std::collections::BTreeMap;

    fn seeded_spec() -> FleetSpec {
        // A compiler guaranteed to produce detections on the open-compiler
        // oracles (no crash-killed pipeline, P4C platform).
        let bug = SeededBug::catalogue()
            .into_iter()
            .find(|bug| bug.platform() == gauntlet_core::Platform::P4c && !bug.is_crash_class())
            .expect("catalogue has an open-compiler semantic bug");
        FleetSpec {
            seed_count: 12,
            shard_size: 4,
            compiler: crate::spec::CompilerSpec::Seeded(bug.name()),
            coverage: true,
            mode: FleetMode::Deterministic,
            ..FleetSpec::default()
        }
    }

    #[test]
    fn shard_fragments_merge_to_the_single_process_report() {
        let spec = seeded_spec();
        let mut fragments = BTreeMap::new();
        for shard in 0..spec.shard_count() {
            let (offset, count) = spec.shard_range(shard);
            let body = run_shard(&spec, shard, offset, count).expect("shard runs");
            fragments.insert(shard, json::parse(&body).expect("fragment parses"));
        }
        let (merged, corpus) = merge::merge(&spec, &fragments, &[]).expect("merges");

        // The single-process baseline over the whole range, with its own
        // scratch corpus file.
        let baseline_path = std::env::temp_dir().join(format!(
            "gauntlet-fleet-baseline-{}.corpus",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&baseline_path);
        let mut config = spec.hunt_config().expect("config");
        config.coverage.as_mut().expect("coverage on").corpus =
            Some(baseline_path.display().to_string());
        let compiler = spec.compiler.clone();
        let baseline = ParallelCampaign::new(config).run(move || compiler.build());
        let baseline_corpus = Corpus::load_or_empty(&baseline_path).expect("baseline corpus");
        let _ = std::fs::remove_file(&baseline_path);

        assert!(baseline.total_bugs > 0, "seeded bug must be detected");
        assert_eq!(merged.deterministic_json(), baseline.deterministic_json());
        assert_eq!(merged.render(), baseline.render());
        assert_eq!(corpus.to_text(), baseline_corpus.to_text());
    }

    #[test]
    fn event_frame_writer_reframes_lines_even_split_across_writes() {
        let mut writer = EventFrameWriter::default();
        // Split one JSONL line across writes; no frame until the newline.
        writer.write_all(b"{\"event\":\"seed\",").unwrap();
        assert!(!writer.buffer.is_empty());
        writer.write_all(b"\"seed\":7}\n").unwrap();
        assert!(writer.buffer.is_empty(), "complete line was drained");
    }
}
