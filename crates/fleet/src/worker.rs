//! The worker process: a stateless shard executor behind the frame
//! protocol.
//!
//! `gauntlet fleet-worker` calls [`serve`], which speaks frames on
//! stdin/stdout: `init` delivers the [`FleetSpec`], each `assign` runs one
//! shard through the ordinary in-process [`ParallelCampaign`] and answers
//! with a `fragment` frame, and `shutdown` exits.  Campaign events stream
//! out as `event` frames *while the shard runs* (the coordinator's live
//! status and crash forensics depend on that), via an [`EventLog`] sink
//! that reframes each JSONL line onto stdout.
//!
//! Statelessness is the crash-tolerance story: a worker owns nothing but
//! its current lease, so the coordinator recovers from a dead worker by
//! re-assigning the shard — no worker-side journal, no partial-shard
//! resume.  Shards are small (the lease granularity) precisely so that
//! re-running one is cheap.

use crate::merge::fragment_body;
use crate::protocol::{read_frame, write_frame, FromWorker, ToWorker};
use crate::spec::FleetSpec;
use gauntlet_core::{CampaignCache, Corpus, ParallelCampaign, TelemetryOptions};
use gauntlet_telemetry::EventLog;
use p4_gen::RandomProgramGenerator;
use p4_ir::ConstructCensus;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// An [`EventLog`] sink that turns each complete JSONL line into one
/// `event` frame on stdout.  Every frame is a single `write_all` and
/// `Stdout` serializes writers internally, so event frames never interleave
/// with the fragment frame the main thread writes at shard end.
#[derive(Default)]
struct EventFrameWriter {
    buffer: Vec<u8>,
}

impl Write for EventFrameWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buffer.extend_from_slice(buf);
        while let Some(newline) = self.buffer.iter().position(|&byte| byte == b'\n') {
            let line: Vec<u8> = self.buffer.drain(..=newline).collect();
            let line = String::from_utf8(line).map_err(|error| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, error.to_string())
            })?;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            // The line is already one rendered JSON object — embed verbatim.
            let body = format!("{{\"type\":\"event\",\"payload\":{line}}}");
            write_frame(&mut std::io::stdout(), &body)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        std::io::stdout().flush()
    }
}

/// This worker process's scratch directory.  Everything a worker writes to
/// disk lives under one per-pid directory so that (a) concurrent workers
/// never collide and (b) a crashed worker's leftovers are identifiable —
/// [`sweep_stale_worker_dirs`] removes directories whose owning pid is
/// gone.
fn worker_temp_dir() -> PathBuf {
    std::env::temp_dir().join(format!("gauntlet-fleet-worker-{}", std::process::id()))
}

/// The worker's scratch corpus path for one shard.  Campaigns persist their
/// corpus through a file path, so the worker lends each shard a throwaway
/// file in its scratch directory and reads the admitted candidates back out
/// of it.  The file is removed when the shard completes (success or error);
/// anything a crash leaves behind falls to the startup sweep.
fn shard_corpus_path(shard: usize) -> PathBuf {
    worker_temp_dir().join(format!("shard-{shard}.corpus"))
}

#[cfg(target_os = "linux")]
fn process_is_alive(pid: u32) -> bool {
    std::path::Path::new("/proc").join(pid.to_string()).exists()
}

/// Without procfs there is no cheap liveness probe; keep stale directories
/// rather than risk deleting a live worker's scratch space.
#[cfg(not(target_os = "linux"))]
fn process_is_alive(_pid: u32) -> bool {
    true
}

/// Remove scratch directories abandoned by dead workers.  Runs once at
/// worker startup: each `gauntlet-fleet-worker-<pid>` directory in the temp
/// dir whose pid no longer exists is swept away.  Best-effort — a sweep
/// failure never blocks the worker.
fn sweep_stale_worker_dirs() {
    let Ok(entries) = std::fs::read_dir(std::env::temp_dir()) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid_text) = name
            .to_str()
            .and_then(|name| name.strip_prefix("gauntlet-fleet-worker-"))
        else {
            continue;
        };
        let Ok(pid) = pid_text.parse::<u32>() else {
            continue;
        };
        if pid == std::process::id() || process_is_alive(pid) {
            continue;
        }
        let _ = std::fs::remove_dir_all(entry.path());
    }
}

/// Run one shard through the worker-lifetime `cache` and build its fragment
/// body.  The cache outlives shard assignments (it is created once per
/// worker process in [`serve`]): interned identifiers and memoised verdicts
/// accumulated on one shard stay warm for the next, while the deterministic
/// half of every fragment remains byte-identical to a cold run — the same
/// guarantee `ParallelCampaign` gives across epochs.
fn run_shard(
    spec: &FleetSpec,
    shard: usize,
    offset: u64,
    count: usize,
    cache: &Arc<CampaignCache>,
) -> Result<String, String> {
    let mut config = spec
        .hunt_config()
        .map_err(|error| format!("shard {shard}: {error}"))?
        .shard(offset, count);
    let corpus_path = spec.coverage.then(|| shard_corpus_path(shard));
    if let (Some(path), Some(coverage)) = (&corpus_path, config.coverage.as_mut()) {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|error| format!("shard {shard} scratch dir: {error}"))?;
        }
        // Start cold: a stale file from a previous lease of this shard
        // would be replayed into the campaign.
        let _ = std::fs::remove_file(path);
        coverage.corpus = Some(path.display().to_string());
    }
    config.telemetry = Some(TelemetryOptions {
        events: None,
        sink: Some(Arc::new(EventLog::with_sink(Box::new(
            EventFrameWriter::default(),
        )))),
        progress: false,
        heartbeat_every: usize::MAX,
    });
    if spec.diversity {
        // Swarm diversity: perturb this shard's generator towards the
        // slice's partition of the pair universe.  The slice is a pure
        // function of the spec (`shard % workers`), never of which worker
        // process happens to hold the lease — so chaos re-assignment and
        // `fleet resume` rebuild the exact same generator per shard.
        let slice = shard % spec.workers.max(1);
        let focus: Vec<String> = p4c::coverage::all_pair_keys()
            .into_iter()
            .enumerate()
            .filter(|(index, _)| index % spec.workers.max(1) == slice)
            .map(|(_, key)| key)
            .collect();
        config.generator = p4_gen::WeightAdapter::default().diversify(
            &config.generator,
            slice,
            spec.workers.max(1),
            &focus,
        );
    }
    let generator = config.generator.clone();
    let compiler = spec.compiler.clone();
    let report =
        ParallelCampaign::new(config).run_with_cache(move || compiler.build(), Some(cache.clone()));
    let result_json = report.deterministic_json();
    let body = match &corpus_path {
        None => fragment_body(&result_json, None, report.cache.as_ref()),
        Some(path) => {
            // Read the admitted candidates back, dropping the scratch file
            // whether or not the read succeeds — a completed shard leaves
            // nothing behind.
            let loaded = Corpus::load_or_empty(path);
            let _ = std::fs::remove_file(path);
            let corpus = loaded.map_err(|error| format!("shard {shard} corpus: {error}"))?;
            // The shard's construct-census keys.  The census is a pure
            // function of the generated programs, which are a pure function
            // of (generator config, seed) — so regenerating here observes
            // exactly what the campaign observed, without widening the
            // deterministic report schema.
            let mut census: BTreeSet<String> = BTreeSet::new();
            for index in 0..count {
                let seed = spec.seed_start + offset + index as u64;
                let program = RandomProgramGenerator::new(generator.clone(), seed).generate();
                census.extend(
                    ConstructCensus::of(&program)
                        .iter()
                        .map(|(key, _)| key.to_string()),
                );
            }
            let census: Vec<String> = census.into_iter().collect();
            fragment_body(
                &result_json,
                Some((&corpus, &census)),
                report.cache.as_ref(),
            )
        }
    };
    Ok(body)
}

/// The worker main loop.  Returns an error string for protocol violations
/// (which the binary surfaces on stderr and exits nonzero); a closed stdin
/// is an orderly exit, mirroring coordinator death.
pub fn serve() -> Result<(), String> {
    sweep_stale_worker_dirs();
    let stdout = std::io::stdout();
    write_frame(
        &mut stdout.lock(),
        &FromWorker::Hello {
            pid: std::process::id() as u64,
        }
        .to_body(),
    )
    .map_err(|error| format!("hello: {error}"))?;

    // The worker-lifetime cache: one campaign cache shared by every shard
    // this process is ever assigned.  Interned identifiers and memoised
    // semantics/verdicts stay warm across assignments; each shard's
    // fragment reports the counters it contributed.
    let cache = Arc::new(CampaignCache::new());

    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut spec: Option<FleetSpec> = None;
    loop {
        let frame = match read_frame(&mut input) {
            Ok(Some(frame)) => frame,
            // Coordinator gone (cleanly or not): exit quietly.
            Ok(None) => return Ok(()),
            Err(error) if error.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(error) => return Err(format!("reading frame: {error}")),
        };
        match ToWorker::from_body(&frame)? {
            ToWorker::Init { spec: value } => {
                let parsed = FleetSpec::from_json(&value)?;
                parsed.validate()?;
                spec = Some(parsed);
            }
            ToWorker::Assign {
                shard,
                offset,
                count,
            } => {
                let spec = spec.as_ref().ok_or("assign before init")?;
                let body = run_shard(spec, shard, offset, count, &cache)?;
                write_frame(
                    &mut stdout.lock(),
                    &format!("{{\"type\":\"fragment\",\"shard\":{shard},\"body\":{body}}}"),
                )
                .map_err(|error| format!("fragment: {error}"))?;
            }
            ToWorker::Stall => loop {
                // Chaos hook: emulate a wedged worker until killed.
                std::thread::sleep(std::time::Duration::from_secs(3600));
            },
            ToWorker::Shutdown => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;
    use crate::spec::FleetMode;
    use gauntlet_core::SeededBug;
    use gauntlet_telemetry::json;
    use std::collections::BTreeMap;

    /// Tests below share this process's scratch dir (same pid, overlapping
    /// shard numbers), so they must not run concurrently.
    static SCRATCH: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn seeded_spec() -> FleetSpec {
        // A compiler guaranteed to produce detections on the open-compiler
        // oracles (no crash-killed pipeline, P4C platform).
        let bug = SeededBug::catalogue()
            .into_iter()
            .find(|bug| bug.platform() == gauntlet_core::Platform::P4c && !bug.is_crash_class())
            .expect("catalogue has an open-compiler semantic bug");
        FleetSpec {
            seed_count: 12,
            shard_size: 4,
            compiler: crate::spec::CompilerSpec::Seeded(bug.name()),
            coverage: true,
            mode: FleetMode::Deterministic,
            ..FleetSpec::default()
        }
    }

    #[test]
    fn shard_fragments_merge_to_the_single_process_report() {
        let _scratch = SCRATCH
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let spec = seeded_spec();
        // One worker-lifetime cache across every shard, as `serve` runs.
        let cache = Arc::new(CampaignCache::new());
        let mut fragments = BTreeMap::new();
        for shard in 0..spec.shard_count() {
            let (offset, count) = spec.shard_range(shard);
            let body = run_shard(&spec, shard, offset, count, &cache).expect("shard runs");
            fragments.insert(shard, json::parse(&body).expect("fragment parses"));
        }
        let (merged, corpus) = merge::merge(&spec, &fragments, &[]).expect("merges");

        // The single-process baseline over the whole range, with its own
        // scratch corpus file.
        let baseline_path = std::env::temp_dir().join(format!(
            "gauntlet-fleet-baseline-{}.corpus",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&baseline_path);
        let mut config = spec.hunt_config().expect("config");
        config.coverage.as_mut().expect("coverage on").corpus =
            Some(baseline_path.display().to_string());
        let compiler = spec.compiler.clone();
        let baseline = ParallelCampaign::new(config).run(move || compiler.build());
        let baseline_corpus = Corpus::load_or_empty(&baseline_path).expect("baseline corpus");
        let _ = std::fs::remove_file(&baseline_path);

        assert!(baseline.total_bugs > 0, "seeded bug must be detected");
        assert_eq!(merged.deterministic_json(), baseline.deterministic_json());
        assert_eq!(merged.render(), baseline.render());
        assert_eq!(corpus.to_text(), baseline_corpus.to_text());
        // Every fragment carried its cache counters; the merge summed them.
        let merged_cache = merged.cache.expect("fragments carry cache counters");
        assert_eq!(merged_cache.epochs, spec.shard_count());
        assert!(merged_cache.stats.semantics_misses > 0);
    }

    #[test]
    fn worker_lifetime_cache_keeps_reruns_byte_identical() {
        // A worker's cache survives shard assignments; re-assigning the
        // same shards to the same (now warm) worker must reproduce the
        // deterministic result and corpus bytes exactly, while the warm
        // pass actually hits the memo.
        let _scratch = SCRATCH
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let spec = seeded_spec();
        let cache = Arc::new(CampaignCache::new());
        let run_all = |cache: &Arc<CampaignCache>| {
            let mut fragments = BTreeMap::new();
            for shard in 0..spec.shard_count() {
                let (offset, count) = spec.shard_range(shard);
                let body = run_shard(&spec, shard, offset, count, cache).expect("shard runs");
                fragments.insert(shard, json::parse(&body).expect("fragment parses"));
            }
            merge::merge(&spec, &fragments, &[]).expect("merges")
        };
        let (cold, cold_corpus) = run_all(&cache);
        let (warm, warm_corpus) = run_all(&cache);
        assert_eq!(cold.deterministic_json(), warm.deterministic_json());
        assert_eq!(cold_corpus.to_text(), warm_corpus.to_text());
        let warm_cache = warm.cache.expect("warm pass reports cache counters");
        assert!(
            warm_cache.stats.semantics_hits > 0,
            "re-assigned seeds must be served from the worker-lifetime cache"
        );
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn startup_sweep_removes_only_dead_workers_scratch_dirs() {
        // A scratch dir owned by a pid that no longer exists is swept;
        // this live process's own dir survives.
        let _scratch = SCRATCH
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let dead = std::env::temp_dir().join("gauntlet-fleet-worker-4294967294");
        std::fs::create_dir_all(dead.join("nested")).expect("create stale dir");
        std::fs::write(dead.join("shard-0.corpus"), b"stale").expect("stale file");
        let live = worker_temp_dir();
        std::fs::create_dir_all(&live).expect("create live dir");
        sweep_stale_worker_dirs();
        assert!(!dead.exists(), "dead worker's scratch dir is swept");
        assert!(live.exists(), "live worker's scratch dir survives");
        let _ = std::fs::remove_dir_all(live);
    }

    #[test]
    fn event_frame_writer_reframes_lines_even_split_across_writes() {
        let mut writer = EventFrameWriter::default();
        // Split one JSONL line across writes; no frame until the newline.
        writer.write_all(b"{\"event\":\"seed\",").unwrap();
        assert!(!writer.buffer.is_empty());
        writer.write_all(b"\"seed\":7}\n").unwrap();
        assert!(writer.buffer.is_empty(), "complete line was drained");
    }
}
