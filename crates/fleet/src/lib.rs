//! Fleet mode: a crash-tolerant multi-process campaign service.
//!
//! `gauntlet-core`'s [`ParallelCampaign`](gauntlet_core::ParallelCampaign)
//! scales a hunt across threads; this crate scales it across *processes* —
//! the deployment shape of a long-running bug-hunting service, where a
//! compiler crash, an OOM kill, or an operator restart must cost one shard,
//! not the campaign.
//!
//! The pieces, bottom-up:
//!
//! - [`protocol`] — length-framed JSON frames over worker stdin/stdout;
//!   truncation (a worker killed mid-frame) is detectable by construction.
//! - [`spec`] — the serializable campaign description ([`FleetSpec`])
//!   workers rebuild their [`HuntConfig`](gauntlet_core::HuntConfig) from.
//! - [`worker`] — the stateless shard executor behind `gauntlet
//!   fleet-worker`.
//! - [`merge`] — folds shard fragments into one report and corpus; in
//!   deterministic mode the result is byte-identical to a single-process
//!   campaign over the same seed range, at any worker count.
//! - [`triage`] — the deduplicating cross-shard bug store
//!   ([`TriageStore`]): occurrence counts, per-worker provenance, and an
//!   arrival-order-independent first-seen representative per dedup key.
//! - [`checkpoint`] — the atomic on-disk state behind `fleet resume` and
//!   `fleet status`.
//! - [`coordinator`] — shard leases, crash detection and reassignment,
//!   respawns, lease timeouts, and the chaos hooks that prove all of the
//!   above works ([`hunt`], [`resume`]).

pub mod checkpoint;
pub mod coordinator;
pub mod merge;
pub mod protocol;
pub mod spec;
pub mod triage;
pub mod worker;

pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_SCHEMA};
pub use coordinator::{hunt, resume, FleetOptions, FleetOutcome, FleetStats};
pub use merge::{fragment_body, refilter_corpus};
pub use spec::{CompilerSpec, FleetMode, FleetSpec};
pub use triage::{TriageEntry, TriageStore, TRIAGE_SCHEMA};
