//! The fleet coordinator: shard scheduling, lease-based crash recovery,
//! fragment folding, and checkpointing.
//!
//! The coordinator spawns N worker *processes* (`gauntlet fleet-worker`),
//! sends each the campaign spec, and hands out shards one at a time as
//! leases.  A worker that dies — crash, OOM-kill, chaos injection — simply
//! stops producing frames: its reader thread reports death, the leased
//! shard goes back to the front of the queue, and a replacement process is
//! spawned (up to `max_respawns`).  A worker that *hangs* is caught by the
//! optional lease timeout and killed into the same path.  Because workers
//! are stateless (see `worker`), recovery is re-assignment; no partial work
//! needs rescuing.
//!
//! Completed fragments fold into the [`TriageStore`] immediately and into a
//! [`Checkpoint`] every `checkpoint_every` shards, so `fleet resume` can
//! continue a coordinator killed at any point and still converge on the
//! byte-identical final report (deterministic mode's contract, pinned by
//! `tests/fleet.rs`).
//!
//! Chaos hooks (`chaos_kill`, `chaos_stall`, `stop_after_checkpoints`) are
//! first-class options rather than test-only patches: fault recovery that
//! cannot be exercised on demand is fault recovery that does not work.

use crate::checkpoint::Checkpoint;
use crate::merge;
use crate::protocol::{read_frame, write_frame, FromWorker, ToWorker};
use crate::spec::FleetSpec;
use crate::triage::TriageStore;
use gauntlet_core::{hunt_result_from_json, Corpus, DiversitySummary, HuntReport};
use gauntlet_telemetry::json::{self, Json};
use gauntlet_telemetry::{EventLog, Heartbeat, ProgressSink};
use std::collections::{BTreeMap, VecDeque};
use std::io::BufReader;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How to run a fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    pub spec: FleetSpec,
    /// Worker process argv (`["path/to/gauntlet", "fleet-worker"]`).
    pub worker_command: Vec<String>,
    /// Silence the live status line and worker stderr.
    pub quiet: bool,
    /// Merged JSONL event log path: coordinator lifecycle events plus every
    /// worker event.  Relayed worker events are tagged `"worker": <slot>`;
    /// the coordinator's own events about a worker use `"slot"` instead, so
    /// each `worker` value names exactly one emitting process (the per-stream
    /// `ts_ms` monotonicity contract checked by `validate_events`).
    pub events: Option<String>,
    /// Chaos: kill worker `slot` right after it delivers its `n`th fragment
    /// (and has been handed a fresh lease), forcing a mid-epoch death.
    pub chaos_kill: Option<(usize, usize)>,
    /// Chaos: park worker `slot` instead of sending its `n`th-after-delivery
    /// assignment, forcing the lease timeout to fire.
    pub chaos_stall: Option<(usize, usize)>,
    /// Stop (orderly, workers killed, checkpoint on disk) after writing this
    /// many checkpoints.  The `fleet resume` test hook.
    pub stop_after_checkpoints: Option<usize>,
    /// Kill a worker whose lease is older than this.
    pub lease_timeout: Option<Duration>,
    /// Replacement processes allowed across the whole run.
    pub max_respawns: usize,
}

impl FleetOptions {
    pub fn new(spec: FleetSpec, worker_command: Vec<String>) -> FleetOptions {
        FleetOptions {
            spec,
            worker_command,
            quiet: false,
            events: None,
            chaos_kill: None,
            chaos_stall: None,
            stop_after_checkpoints: None,
            lease_timeout: None,
            max_respawns: 8,
        }
    }
}

/// What happened, operationally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    pub shards_total: usize,
    pub workers_spawned: usize,
    pub worker_deaths: usize,
    pub leases_reassigned: usize,
    pub checkpoints_written: usize,
}

/// The coordinator's result.
pub struct FleetOutcome {
    /// The merged report; `None` when the run stopped early
    /// (`stop_after_checkpoints`).
    pub report: Option<HuntReport>,
    /// The merged corpus (so far, on an interrupted run).
    pub corpus: Corpus,
    pub triage: TriageStore,
    pub stats: FleetStats,
    /// True when the run stopped before completing every shard.
    pub interrupted: bool,
}

enum Incoming {
    Frame(FromWorker),
    Dead,
}

struct WorkerSlot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Bumped per spawn; messages from older generations are ignored.
    generation: u64,
    /// `(shard, leased_at)` of the outstanding assignment.
    lease: Option<(usize, Instant)>,
    /// Fragments this slot has delivered (across generations).
    delivered: usize,
}

/// Run a fresh fleet campaign.
pub fn hunt(options: FleetOptions) -> Result<FleetOutcome, String> {
    options.spec.validate()?;
    let queue: VecDeque<usize> = (0..options.spec.shard_count()).collect();
    Coordinator::new(options, queue, BTreeMap::new(), TriageStore::new())?.run()
}

/// Continue a checkpointed campaign.  The caller loads the [`Checkpoint`]
/// (its spec replaces `options.spec`) and the coordinator re-runs only the
/// remaining shards; preloaded fragments are *not* re-folded into triage —
/// the checkpointed store already accounts for them.
pub fn resume(mut options: FleetOptions, checkpoint: Checkpoint) -> Result<FleetOutcome, String> {
    options.spec = checkpoint.spec.clone();
    options.spec.validate()?;
    let queue: VecDeque<usize> = checkpoint.remaining_shards().into();
    Coordinator::new(options, queue, checkpoint.fragments, checkpoint.triage)?.run()
}

struct Coordinator {
    options: FleetOptions,
    spec_json: Json,
    slots: Vec<WorkerSlot>,
    queue: VecDeque<usize>,
    fragments: BTreeMap<usize, Json>,
    /// Fragment arrival order (throughput-mode merge order).  Preloaded
    /// fragments come first, in shard order.
    arrival: Vec<usize>,
    triage: TriageStore,
    stats: FleetStats,
    tx: mpsc::Sender<(usize, u64, Incoming)>,
    rx: mpsc::Receiver<(usize, u64, Incoming)>,
    events: Option<EventLog>,
    progress: ProgressSink,
    respawns_used: usize,
    chaos_kill: Option<(usize, usize)>,
    chaos_stall: Option<(usize, usize)>,
    since_checkpoint: usize,
    stop_requested: bool,
    seeds_done: usize,
    bugs_seen: usize,
    started: Instant,
}

impl Coordinator {
    fn new(
        options: FleetOptions,
        queue: VecDeque<usize>,
        fragments: BTreeMap<usize, Json>,
        triage: TriageStore,
    ) -> Result<Coordinator, String> {
        if options.worker_command.is_empty() {
            return Err("fleet: empty worker command".into());
        }
        let events = match &options.events {
            Some(path) => Some(
                EventLog::create(path)
                    .map_err(|error| format!("cannot create event log `{path}`: {error}"))?,
            ),
            None => None,
        };
        let spec_json = json::parse(&options.spec.to_json())?;
        let arrival: Vec<usize> = fragments.keys().copied().collect();
        let (tx, rx) = mpsc::channel();
        let stats = FleetStats {
            shards_total: options.spec.shard_count(),
            ..FleetStats::default()
        };
        let progress = ProgressSink::new(!options.quiet);
        let chaos_kill = options.chaos_kill;
        let chaos_stall = options.chaos_stall;
        Ok(Coordinator {
            slots: Vec::new(),
            queue,
            fragments,
            arrival,
            triage,
            stats,
            tx,
            rx,
            events,
            progress,
            respawns_used: 0,
            chaos_kill,
            chaos_stall,
            since_checkpoint: 0,
            stop_requested: false,
            seeds_done: 0,
            bugs_seen: 0,
            started: Instant::now(),
            spec_json,
            options,
        })
    }

    fn emit(&self, event: &str, fields: &[(&str, String)]) {
        if let Some(log) = &self.events {
            log.emit(event, fields);
        }
    }

    fn spawn_into(&mut self, slot: usize) -> Result<(), String> {
        let command = &self.options.worker_command;
        let mut child = Command::new(&command[0])
            .args(&command[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(if self.options.quiet {
                Stdio::null()
            } else {
                Stdio::inherit()
            })
            .spawn()
            .map_err(|error| format!("cannot spawn worker `{}`: {error}", command[0]))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        while self.slots.len() <= slot {
            self.slots.push(WorkerSlot {
                child: None,
                stdin: None,
                generation: 0,
                lease: None,
                delivered: 0,
            });
        }
        let state = &mut self.slots[slot];
        state.generation += 1;
        let generation = state.generation;
        state.child = Some(child);
        state.stdin = Some(stdin);
        state.lease = None;
        self.stats.workers_spawned += 1;

        let tx = self.tx.clone();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            loop {
                match read_frame(&mut reader) {
                    Ok(Some(body)) => match FromWorker::from_body(&body) {
                        Ok(frame) => {
                            if tx.send((slot, generation, Incoming::Frame(frame))).is_err() {
                                return;
                            }
                        }
                        // A garbled frame is indistinguishable from
                        // corruption: treat the worker as lost.
                        Err(_) => {
                            let _ = tx.send((slot, generation, Incoming::Dead));
                            return;
                        }
                    },
                    Ok(None) | Err(_) => {
                        let _ = tx.send((slot, generation, Incoming::Dead));
                        return;
                    }
                }
            }
        });

        self.send(
            slot,
            &ToWorker::Init {
                spec: self.spec_json.clone(),
            },
        );
        Ok(())
    }

    /// Write one frame to a worker.  Errors are ignored: a broken pipe means
    /// the worker died, which its reader thread reports through the normal
    /// death path.
    fn send(&mut self, slot: usize, message: &ToWorker) {
        if let Some(stdin) = self.slots[slot].stdin.as_mut() {
            let _ = write_frame(stdin, &message.to_body());
        }
    }

    fn alive(&self, slot: usize) -> bool {
        self.slots[slot].child.is_some()
    }

    /// Hand the next queued shard to an idle worker.
    fn assign_next(&mut self, slot: usize) {
        if !self.alive(slot) || self.slots[slot].lease.is_some() {
            return;
        }
        let Some(shard) = self.queue.pop_front() else {
            return;
        };
        self.slots[slot].lease = Some((shard, Instant::now()));
        if self.chaos_stall == Some((slot, self.slots[slot].delivered)) {
            // Withhold the assignment: the worker idles, the coordinator
            // believes it is working, and only the lease timeout can
            // recover the shard.
            self.chaos_stall = None;
            self.send(slot, &ToWorker::Stall);
            return;
        }
        let (offset, count) = self.options.spec.shard_range(shard);
        self.send(
            slot,
            &ToWorker::Assign {
                shard,
                offset,
                count,
            },
        );
        self.emit(
            "shard_assign",
            &[
                ("shard", shard.to_string()),
                ("slot", slot.to_string()),
                ("offset", offset.to_string()),
                ("count", count.to_string()),
            ],
        );
    }

    fn kill(&mut self, slot: usize) {
        if let Some(child) = self.slots[slot].child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        // Keep `child`/`stdin` in place until the reader thread's Dead
        // message arrives — handle_dead owns the cleanup and reassignment.
    }

    fn handle_fragment(&mut self, slot: usize, shard: usize, body: Json) -> Result<(), String> {
        if let Some((leased, _)) = self.slots[slot].lease {
            if leased == shard {
                self.slots[slot].lease = None;
            }
        }
        self.slots[slot].delivered += 1;
        if self.fragments.contains_key(&shard) {
            // A reassigned shard can complete twice when the original
            // worker's frame was already buffered; first delivery wins.
            self.assign_next(slot);
            return Ok(());
        }
        let result = body
            .get("result")
            .ok_or_else(|| format!("fragment for shard {shard} has no `result`"))?;
        let partial = hunt_result_from_json(result)
            .map_err(|error| format!("fragment for shard {shard}: {error}"))?;
        // Under diversity, provenance is the *configuration* that found the
        // bug (`slice-N`, a pure function of the shard), not the worker
        // process that happened to hold the lease — so per-configuration
        // yield survives lease reassignment and resume byte-identically.
        let provenance = if self.options.spec.diversity {
            format!("slice-{}", shard % self.options.spec.workers.max(1))
        } else {
            format!("worker-{slot}")
        };
        for outcome in &partial.outcomes {
            for (index, report) in outcome.reports.iter().enumerate() {
                self.triage
                    .record(&provenance, outcome.seed, index as u64, report);
            }
        }
        self.fragments.insert(shard, body);
        self.arrival.push(shard);
        self.since_checkpoint += 1;
        self.emit(
            "shard_done",
            &[
                ("shard", shard.to_string()),
                ("slot", slot.to_string()),
                ("bugs", partial.total_bugs.to_string()),
            ],
        );

        let complete = self.fragments.len() == self.stats.shards_total;
        if self.options.spec.checkpoint.is_some()
            && (self.since_checkpoint >= self.options.spec.checkpoint_every.max(1) || complete)
        {
            self.write_checkpoint(complete)?;
            if !complete
                && self
                    .options
                    .stop_after_checkpoints
                    .is_some_and(|limit| self.stats.checkpoints_written >= limit)
            {
                self.stop_requested = true;
                return Ok(());
            }
        }

        if self.chaos_kill == Some((slot, self.slots[slot].delivered)) {
            self.chaos_kill = None;
            // Take a fresh lease *first* so the kill strands an assigned
            // shard — the recovery path under test.
            self.assign_next(slot);
            self.progress
                .note(&format!("[fleet] chaos: killing worker {slot}"));
            self.kill(slot);
            return Ok(());
        }
        self.assign_next(slot);
        Ok(())
    }

    fn handle_dead(&mut self, slot: usize) -> Result<(), String> {
        let state = &mut self.slots[slot];
        if let Some(mut child) = state.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        state.stdin = None;
        self.stats.worker_deaths += 1;
        self.emit("worker_exit", &[("slot", slot.to_string())]);
        if let Some((shard, _)) = self.slots[slot].lease.take() {
            self.queue.push_front(shard);
            self.stats.leases_reassigned += 1;
            self.progress.note(&format!(
                "[fleet] worker {slot} died holding shard {shard}; reassigning"
            ));
            self.emit(
                "shard_reassign",
                &[("shard", shard.to_string()), ("slot", slot.to_string())],
            );
        }
        if !self.queue.is_empty() {
            if self.respawns_used < self.options.max_respawns {
                self.respawns_used += 1;
                self.spawn_into(slot)?;
                self.assign_next(slot);
            } else {
                // Someone else may still drain the queue.
                for other in 0..self.slots.len() {
                    self.assign_next(other);
                }
            }
        }
        Ok(())
    }

    fn relay_event(&mut self, slot: usize, payload: Json) {
        if let Some(kind) = payload.get("event").and_then(|e| e.as_str()) {
            match kind {
                "seed" => {
                    self.seeds_done += 1;
                    if self.seeds_done.is_multiple_of(25) {
                        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
                        self.progress.heartbeat(&Heartbeat {
                            done: self.seeds_done,
                            total: self.options.spec.seed_count,
                            bugs: self.bugs_seen,
                            seeds_per_sec: self.seeds_done as f64 / elapsed,
                            cache_hit_rate: None,
                            eta_secs: None,
                        });
                    }
                }
                "bug" => self.bugs_seen += 1,
                _ => {}
            }
        }
        if let Some(log) = &self.events {
            // Tag provenance so the merged log's per-process streams stay
            // separable (validate_events checks ts_ms monotonicity per
            // worker, not globally).  Only relayed events carry `worker`;
            // the coordinator's own events use `slot` — mixing the two
            // clocks under one stream key would break monotonicity.
            if let Json::Object(mut fields) = payload {
                fields.push(("worker".to_string(), Json::Number(slot as f64)));
                log.emit_raw(&json::render(&Json::Object(fields)));
            }
        }
    }

    fn check_lease_timeouts(&mut self) {
        let Some(timeout) = self.options.lease_timeout else {
            return;
        };
        let expired: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, state)| match state.lease {
                Some((_, since)) if since.elapsed() > timeout && state.child.is_some() => {
                    Some(slot)
                }
                _ => None,
            })
            .collect();
        for slot in expired {
            self.progress.note(&format!(
                "[fleet] worker {slot} exceeded the lease timeout; killing"
            ));
            self.kill(slot);
        }
    }

    fn write_checkpoint(&mut self, complete: bool) -> Result<(), String> {
        let Some(path) = self.options.spec.checkpoint.clone() else {
            return Ok(());
        };
        let checkpoint = Checkpoint {
            spec: self.options.spec.clone(),
            fragments: self.fragments.clone(),
            triage: self.triage.clone(),
            complete,
        };
        checkpoint.save(&path)?;
        self.stats.checkpoints_written += 1;
        self.since_checkpoint = 0;
        self.emit(
            "checkpoint",
            &[
                ("path", json::string(&path)),
                ("shards_done", self.fragments.len().to_string()),
                ("complete", complete.to_string()),
            ],
        );
        Ok(())
    }

    fn live_workers(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| slot.child.is_some())
            .count()
    }

    fn shutdown_all(&mut self) {
        for slot in 0..self.slots.len() {
            self.send(slot, &ToWorker::Shutdown);
        }
        for state in &mut self.slots {
            if let Some(mut child) = state.child.take() {
                // Workers exit on Shutdown or on stdin EOF; kill covers a
                // parked (chaos-stalled) straggler.
                drop(state.stdin.take());
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    fn interrupted_outcome(mut self) -> Result<FleetOutcome, String> {
        self.shutdown_all();
        let corpus = if self.options.spec.coverage {
            merge::refilter_corpus(&self.fragments)?
        } else {
            Corpus::default()
        };
        self.emit(
            "fleet_end",
            &[
                ("complete", "false".to_string()),
                ("shards_done", self.fragments.len().to_string()),
            ],
        );
        Ok(FleetOutcome {
            report: None,
            corpus,
            triage: self.triage,
            stats: self.stats,
            interrupted: true,
        })
    }

    fn run(mut self) -> Result<FleetOutcome, String> {
        self.emit(
            "fleet_start",
            &[
                ("workers", self.options.spec.workers.to_string()),
                ("shards", self.stats.shards_total.to_string()),
                ("seeds", self.options.spec.seed_count.to_string()),
                ("mode", json::string(self.options.spec.mode.as_str())),
            ],
        );
        let initial = self.options.spec.workers.min(self.queue.len()).max(1);
        for slot in 0..initial {
            self.spawn_into(slot)?;
        }
        for slot in 0..self.slots.len() {
            self.assign_next(slot);
        }

        while self.fragments.len() < self.stats.shards_total {
            if self.stop_requested {
                return self.interrupted_outcome();
            }
            if self.queue.is_empty() && self.slots.iter().all(|slot| slot.lease.is_none()) {
                // Every shard is either done or unaccounted for — with an
                // empty queue and no leases the counts must disagree.
                return Err("fleet: shards lost without a lease".into());
            }
            if self.live_workers() == 0 {
                return Err(format!(
                    "fleet: all workers lost after {} death(s) ({} respawn(s) used, limit {})",
                    self.stats.worker_deaths, self.respawns_used, self.options.max_respawns
                ));
            }
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok((slot, generation, incoming)) => {
                    if self.slots[slot].generation != generation {
                        continue; // A previous incarnation's leftovers.
                    }
                    match incoming {
                        Incoming::Frame(FromWorker::Hello { pid }) => {
                            self.emit(
                                "worker_spawn",
                                &[("slot", slot.to_string()), ("pid", pid.to_string())],
                            );
                        }
                        Incoming::Frame(FromWorker::Event { payload }) => {
                            self.relay_event(slot, payload);
                        }
                        Incoming::Frame(FromWorker::Fragment { shard, body }) => {
                            self.handle_fragment(slot, shard, body)?;
                        }
                        Incoming::Dead => self.handle_dead(slot)?,
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("coordinator holds a sender")
                }
            }
            self.check_lease_timeouts();
        }

        if self.options.spec.checkpoint.is_some() && self.since_checkpoint > 0 {
            self.write_checkpoint(true)?;
        }
        self.shutdown_all();
        let (mut report, corpus) =
            merge::merge(&self.options.spec, &self.fragments, &self.arrival)?;
        if self.options.spec.diversity {
            // Per-configuration distinct-bug yield, derived from the merged
            // triage store: a slice is credited for every distinct bug whose
            // provenance includes it.  Deterministic because the store's
            // merge is order-independent and slices are spec-derived.
            let slices = self.options.spec.workers.max(1);
            let mut distinct_bugs: BTreeMap<String, usize> =
                (0..slices).map(|s| (format!("slice-{s}"), 0)).collect();
            for entry in self.triage.entries() {
                for slice in entry.workers.keys().filter(|k| k.starts_with("slice-")) {
                    *distinct_bugs.entry(slice.clone()).or_insert(0) += 1;
                }
            }
            report.diversity = Some(DiversitySummary {
                slices,
                distinct_bugs,
            });
        }
        if let Some(path) = &self.options.spec.corpus {
            corpus
                .save(path)
                .map_err(|error| format!("cannot save corpus `{path}`: {error}"))?;
        }
        self.emit(
            "fleet_end",
            &[
                ("complete", "true".to_string()),
                ("bugs", report.total_bugs.to_string()),
                ("distinct", self.triage.len().to_string()),
            ],
        );
        self.progress.note(&format!(
            "[fleet] {} shard(s) merged · {} bug(s), {} distinct · {} death(s) survived",
            self.stats.shards_total,
            report.total_bugs,
            self.triage.len(),
            self.stats.worker_deaths
        ));
        Ok(FleetOutcome {
            report: Some(report),
            corpus,
            triage: self.triage,
            stats: self.stats,
            interrupted: false,
        })
    }
}
