//! The deduplicating triage store: the fleet's cross-shard analogue of
//! `BugDatabase`, keyed by the existing [`BugReport::dedup_key`].
//!
//! Where `BugDatabase` deduplicates inside one campaign, the triage store
//! folds findings streamed from many worker processes over days of
//! checkpointed hunting — so it additionally tracks occurrence counts and
//! per-worker provenance, and its *first-seen* discipline is made explicit:
//! the representative report of a key is the one with the smallest
//! `(seed, index)` ever recorded, regardless of arrival order.  That makes
//! [`TriageStore::merge`] associative and commutative (counts are sums,
//! provenance maps are element-wise sums, representatives are minima), so a
//! coordinator folding fragments in any order — including a resumed
//! coordinator re-folding checkpointed state — converges on byte-identical
//! triage (pinned by the property tests in `tests/prop_triage.rs`).

use gauntlet_core::{bug_report_from_json, bug_report_json, BugReport};
use gauntlet_telemetry::json::{self, Json};
use std::collections::BTreeMap;

/// Schema tag of the serialized store.
pub const TRIAGE_SCHEMA: &str = "gauntlet-triage-v1";

/// One distinct bug.
#[derive(Debug, Clone)]
pub struct TriageEntry {
    /// [`BugReport::dedup_key`] of every occurrence.
    pub key: String,
    /// Raw occurrences recorded (first-seen plus duplicates).
    pub count: u64,
    /// Seed of the first-seen occurrence.
    pub first_seed: u64,
    /// Report index within that seed's outcome (one seed can yield several
    /// findings; the index breaks the tie deterministically).
    pub first_index: u64,
    /// The first-seen report itself.
    pub report: BugReport,
    /// Occurrences per worker provenance label (`"worker-0"`, ...).
    pub workers: BTreeMap<String, u64>,
}

/// The representative order: `(seed, index, serialized report bytes)`.
/// Comparing the serialized form (rather than arrival order) keeps the
/// choice total, which is what makes record/merge commutative (see the
/// property tests).
fn precedes(seed: u64, index: u64, report: &BugReport, entry: &TriageEntry) -> bool {
    match (seed, index).cmp(&(entry.first_seed, entry.first_index)) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => bug_report_json(report) < bug_report_json(&entry.report),
    }
}

/// The store: distinct bugs by dedup key.
#[derive(Debug, Clone, Default)]
pub struct TriageStore {
    entries: BTreeMap<String, TriageEntry>,
}

impl TriageStore {
    pub fn new() -> TriageStore {
        TriageStore::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total raw occurrences across all distinct bugs.
    pub fn occurrences(&self) -> u64 {
        self.entries.values().map(|entry| entry.count).sum()
    }

    pub fn entries(&self) -> impl Iterator<Item = &TriageEntry> {
        self.entries.values()
    }

    pub fn get(&self, key: &str) -> Option<&TriageEntry> {
        self.entries.get(key)
    }

    /// Record one occurrence.  The stored report is replaced only when this
    /// occurrence precedes the current representative in `(seed, index,
    /// report bytes)` order — a *total* order, so the representative is
    /// arrival-order independent even in the degenerate case of two
    /// different bodies at the same `(seed, index)` (which deterministic
    /// shard re-runs never produce, but the merge laws must not rely on
    /// that).
    pub fn record(&mut self, provenance: &str, seed: u64, index: u64, report: &BugReport) {
        let key = report.dedup_key();
        let entry = self
            .entries
            .entry(key.clone())
            .or_insert_with(|| TriageEntry {
                key,
                count: 0,
                first_seed: seed,
                first_index: index,
                report: report.clone(),
                workers: BTreeMap::new(),
            });
        entry.count += 1;
        *entry.workers.entry(provenance.to_string()).or_insert(0) += 1;
        if precedes(seed, index, report, entry) {
            entry.first_seed = seed;
            entry.first_index = index;
            entry.report = report.clone();
        }
    }

    /// Fold another store into this one.  Counts and provenance add;
    /// representatives take the `(seed, index)` minimum.
    pub fn merge(&mut self, other: &TriageStore) {
        for incoming in other.entries.values() {
            match self.entries.get_mut(&incoming.key) {
                None => {
                    self.entries.insert(incoming.key.clone(), incoming.clone());
                }
                Some(entry) => {
                    entry.count += incoming.count;
                    for (worker, count) in &incoming.workers {
                        *entry.workers.entry(worker.clone()).or_insert(0) += count;
                    }
                    if precedes(
                        incoming.first_seed,
                        incoming.first_index,
                        &incoming.report,
                        entry,
                    ) {
                        entry.first_seed = incoming.first_seed;
                        entry.first_index = incoming.first_index;
                        entry.report = incoming.report.clone();
                    }
                }
            }
        }
    }

    /// Serialize as one `gauntlet-triage-v1` document.  Entries are in key
    /// order and reports use the `gauntlet-report-v1` layout, so equal
    /// stores serialize byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":{},\"distinct\":{},\"occurrences\":{},\"bugs\":[",
            json::string(TRIAGE_SCHEMA),
            self.len(),
            self.occurrences()
        );
        for (index, entry) in self.entries.values().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let mut workers = String::from("{");
            for (worker_index, (worker, count)) in entry.workers.iter().enumerate() {
                if worker_index > 0 {
                    workers.push(',');
                }
                workers.push_str(&format!("{}:{}", json::string(worker), count));
            }
            workers.push('}');
            out.push_str(&format!(
                "{{\"key\":{},\"count\":{},\"first_seed\":{},\"first_index\":{},\"workers\":{},\"report\":{}}}",
                json::string(&entry.key),
                entry.count,
                entry.first_seed,
                entry.first_index,
                workers,
                bug_report_json(&entry.report)
            ));
        }
        out.push_str("]}");
        out
    }

    pub fn from_json(value: &Json) -> Result<TriageStore, String> {
        match value.get("schema").and_then(|s| s.as_str()) {
            Some(TRIAGE_SCHEMA) => {}
            other => return Err(format!("not a triage store: schema {other:?}")),
        }
        let mut store = TriageStore::new();
        for bug in value
            .get("bugs")
            .and_then(|b| b.as_array())
            .ok_or("triage: `bugs` missing or not an array")?
        {
            let key = bug
                .get("key")
                .and_then(|k| k.as_str())
                .ok_or("triage entry without `key`")?
                .to_string();
            let workers = bug
                .get("workers")
                .and_then(|w| w.as_counter_map())
                .ok_or("triage entry without `workers`")?;
            let entry = TriageEntry {
                key: key.clone(),
                count: bug
                    .get("count")
                    .and_then(|c| c.as_u64())
                    .ok_or("triage entry without `count`")?,
                first_seed: bug
                    .get("first_seed")
                    .and_then(|s| s.as_u64())
                    .ok_or("triage entry without `first_seed`")?,
                first_index: bug
                    .get("first_index")
                    .and_then(|i| i.as_u64())
                    .ok_or("triage entry without `first_index`")?,
                report: bug_report_from_json(
                    bug.get("report").ok_or("triage entry without `report`")?,
                )?,
                workers,
            };
            store.entries.insert(key, entry);
        }
        Ok(store)
    }

    /// Human-readable summary, one line per distinct bug.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "triage: {} distinct bug(s), {} occurrence(s)\n",
            self.len(),
            self.occurrences()
        );
        for entry in self.entries.values() {
            let _ = writeln!(
                out,
                "  [{}x] seed {} · {:?} · {} · {}",
                entry.count,
                entry.first_seed,
                entry.report.kind,
                entry.report.platform,
                entry.report.message.lines().next().unwrap_or("")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gauntlet_core::{BugKind, CompilerArea, Platform, Technique};

    fn report(message: &str) -> BugReport {
        BugReport::new(
            BugKind::Semantic,
            Platform::P4c,
            CompilerArea::MidEnd,
            Technique::TranslationValidation,
            Some("SimplifyDefUse".into()),
            message.into(),
        )
    }

    #[test]
    fn first_seen_wins_regardless_of_arrival_order() {
        let early = report("mismatch\nearly detail");
        let late = report("mismatch\nlate detail");
        // Same dedup key (same first message line), different bodies.
        assert_eq!(early.dedup_key(), late.dedup_key());

        let mut forward = TriageStore::new();
        forward.record("worker-0", 3, 0, &early);
        forward.record("worker-1", 9, 0, &late);
        let mut backward = TriageStore::new();
        backward.record("worker-1", 9, 0, &late);
        backward.record("worker-0", 3, 0, &early);
        assert_eq!(forward.to_json(), backward.to_json());
        assert_eq!(
            forward.get(&early.dedup_key()).unwrap().report.message,
            early.message
        );
        assert_eq!(forward.occurrences(), 2);
        assert_eq!(forward.len(), 1);
    }

    #[test]
    fn merge_sums_counts_and_provenance() {
        let bug = report("mismatch");
        let mut a = TriageStore::new();
        a.record("worker-0", 5, 0, &bug);
        a.record("worker-0", 7, 1, &bug);
        let mut b = TriageStore::new();
        b.record("worker-1", 2, 0, &bug);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        let entry = ab.get(&bug.dedup_key()).unwrap();
        assert_eq!(entry.count, 3);
        assert_eq!(entry.first_seed, 2);
        assert_eq!(entry.workers["worker-0"], 2);
        assert_eq!(entry.workers["worker-1"], 1);
    }

    #[test]
    fn store_round_trips_through_json() {
        let mut store = TriageStore::new();
        store.record("worker-0", 11, 0, &report("assert failed: \"quoted\""));
        store.record("worker-1", 4, 2, &report("other bug"));
        store.record("worker-1", 11, 0, &report("assert failed: \"quoted\""));
        let bytes = store.to_json();
        let parsed = json::parse(&bytes).expect("triage JSON parses");
        let back = TriageStore::from_json(&parsed).expect("reconstructs");
        assert_eq!(back.to_json(), bytes);
        assert_eq!(back.len(), 2);
        assert_eq!(back.occurrences(), 3);
    }

    #[test]
    fn render_lists_each_distinct_bug_once() {
        let mut store = TriageStore::new();
        store.record("worker-0", 1, 0, &report("first"));
        store.record("worker-0", 2, 0, &report("first"));
        store.record("worker-0", 3, 0, &report("second"));
        let text = store.render();
        assert!(text.starts_with("triage: 2 distinct bug(s), 3 occurrence(s)"));
        assert_eq!(text.matches("first").count(), 1);
        assert!(text.contains("[2x] seed 1"));
    }
}
