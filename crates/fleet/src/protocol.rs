//! The coordinator↔worker wire protocol: length-framed JSON over
//! stdin/stdout.
//!
//! Each frame is one JSON document preceded by its byte length:
//!
//! ```text
//! <len>\n
//! <len bytes of JSON>\n
//! ```
//!
//! The explicit length makes truncation detectable — a worker killed
//! mid-frame leaves a short read, which the coordinator treats exactly like
//! EOF (worker death), never as a corrupt half-message.  The payloads are
//! plain `gauntlet_telemetry::json` values, so the protocol adds no
//! serialization machinery beyond what the telemetry schemas already use.
//!
//! Worker stdout carries *only* frames: all narration goes to stderr (or
//! nowhere, under `--quiet`), and campaign events travel inside `event`
//! frames rather than straight to a file.

use gauntlet_telemetry::json::{self, Json};
use std::io::{BufRead, Write};

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// The campaign description; sent once, before any assignment.
    Init { spec: Json },
    /// Lease one shard: seed offset `offset` (relative to the spec's
    /// `seed_start`), `count` seeds.
    Assign {
        shard: usize,
        offset: u64,
        count: usize,
    },
    /// Test-only chaos: stop responding (park forever) so the coordinator's
    /// lease timeout fires.  A real stuck worker looks exactly like this.
    Stall,
    /// Orderly exit.
    Shutdown,
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq)]
pub enum FromWorker {
    /// First frame after spawn.
    Hello { pid: u64 },
    /// One relayed `gauntlet-events-v1` object, verbatim.
    Event { payload: Json },
    /// A completed shard: the campaign's deterministic `result` document
    /// plus the fleet envelope (candidate corpus entries and the construct
    /// census keys) the merge needs.
    Fragment { shard: usize, body: Json },
}

/// Write one frame.
pub fn write_frame(out: &mut impl Write, body: &str) -> std::io::Result<()> {
    // One `write_all` of the whole frame: writers on both sides share the
    // stream between threads, and a single write keeps frames contiguous.
    let mut frame = String::with_capacity(body.len() + 16);
    frame.push_str(&body.len().to_string());
    frame.push('\n');
    frame.push_str(body);
    frame.push('\n');
    out.write_all(frame.as_bytes())?;
    out.flush()
}

/// Read one frame.  `Ok(None)` is clean EOF (stream closed between frames);
/// a truncated frame — EOF inside the length line or the body — is an
/// `UnexpectedEof` error, which callers fold into the same death path.
pub fn read_frame(input: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut header = String::new();
    if input.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header.trim().parse().map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length `{}`", header.trim()),
        )
    })?;
    // Body plus its trailing newline.
    let mut body = vec![0u8; len + 1];
    input.read_exact(&mut body)?;
    body.pop();
    String::from_utf8(body)
        .map(Some)
        .map_err(|error| std::io::Error::new(std::io::ErrorKind::InvalidData, error.to_string()))
}

fn type_of(value: &Json) -> Result<&str, String> {
    value
        .get("type")
        .and_then(|t| t.as_str())
        .ok_or_else(|| "frame without a `type`".to_string())
}

impl ToWorker {
    pub fn to_body(&self) -> String {
        match self {
            ToWorker::Init { spec } => {
                format!("{{\"type\":\"init\",\"spec\":{}}}", json::render(spec))
            }
            ToWorker::Assign {
                shard,
                offset,
                count,
            } => format!(
                "{{\"type\":\"assign\",\"shard\":{shard},\"offset\":{offset},\"count\":{count}}}"
            ),
            ToWorker::Stall => "{\"type\":\"stall\"}".to_string(),
            ToWorker::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
        }
    }

    pub fn from_body(body: &str) -> Result<ToWorker, String> {
        let value = json::parse(body)?;
        match type_of(&value)? {
            "init" => Ok(ToWorker::Init {
                spec: value.get("spec").cloned().ok_or("init without `spec`")?,
            }),
            "assign" => Ok(ToWorker::Assign {
                shard: value
                    .get("shard")
                    .and_then(|s| s.as_u64())
                    .ok_or("assign without `shard`")? as usize,
                offset: value
                    .get("offset")
                    .and_then(|o| o.as_u64())
                    .ok_or("assign without `offset`")?,
                count: value
                    .get("count")
                    .and_then(|c| c.as_u64())
                    .ok_or("assign without `count`")? as usize,
            }),
            "stall" => Ok(ToWorker::Stall),
            "shutdown" => Ok(ToWorker::Shutdown),
            other => Err(format!("unknown coordinator frame `{other}`")),
        }
    }
}

impl FromWorker {
    pub fn to_body(&self) -> String {
        match self {
            FromWorker::Hello { pid } => format!("{{\"type\":\"hello\",\"pid\":{pid}}}"),
            FromWorker::Event { payload } => {
                format!(
                    "{{\"type\":\"event\",\"payload\":{}}}",
                    json::render(payload)
                )
            }
            FromWorker::Fragment { shard, body } => format!(
                "{{\"type\":\"fragment\",\"shard\":{shard},\"body\":{}}}",
                json::render(body)
            ),
        }
    }

    pub fn from_body(body: &str) -> Result<FromWorker, String> {
        let value = json::parse(body)?;
        match type_of(&value)? {
            "hello" => Ok(FromWorker::Hello {
                pid: value
                    .get("pid")
                    .and_then(|p| p.as_u64())
                    .ok_or("hello without `pid`")?,
            }),
            "event" => Ok(FromWorker::Event {
                payload: value
                    .get("payload")
                    .cloned()
                    .ok_or("event without `payload`")?,
            }),
            "fragment" => Ok(FromWorker::Fragment {
                shard: value
                    .get("shard")
                    .and_then(|s| s.as_u64())
                    .ok_or("fragment without `shard`")? as usize,
                body: value
                    .get("body")
                    .cloned()
                    .ok_or("fragment without `body`")?,
            }),
            other => Err(format!("unknown worker frame `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_through_a_pipe() {
        let mut pipe = Vec::new();
        let messages = [
            ToWorker::Init {
                spec: json::parse("{\"workers\":2}").unwrap(),
            },
            ToWorker::Assign {
                shard: 3,
                offset: 60,
                count: 20,
            },
            ToWorker::Stall,
            ToWorker::Shutdown,
        ];
        for message in &messages {
            write_frame(&mut pipe, &message.to_body()).unwrap();
        }
        let mut reader = Cursor::new(pipe);
        for message in &messages {
            let body = read_frame(&mut reader).unwrap().expect("frame present");
            assert_eq!(&ToWorker::from_body(&body).unwrap(), message);
        }
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn worker_frames_round_trip() {
        let messages = [
            FromWorker::Hello { pid: 1234 },
            FromWorker::Event {
                payload: json::parse("{\"event\":\"seed\",\"seed\":7}").unwrap(),
            },
            FromWorker::Fragment {
                shard: 0,
                body: json::parse("{\"result\":{\"total_bugs\":1}}").unwrap(),
            },
        ];
        for message in &messages {
            let body = message.to_body();
            assert_eq!(&FromWorker::from_body(&body).unwrap(), message);
        }
    }

    #[test]
    fn truncated_frames_read_as_errors_not_garbage() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, "{\"type\":\"stall\"}").unwrap();
        // A worker killed mid-write leaves a dangling prefix.
        pipe.truncate(pipe.len() - 5);
        let mut reader = Cursor::new(pipe);
        assert!(read_frame(&mut reader).is_err());
        assert!(read_frame(&mut Cursor::new(b"notalen\n".to_vec())).is_err());
    }

    #[test]
    fn frame_bodies_may_contain_newlines() {
        // Length framing, not line framing: embedded newlines (pretty-printed
        // JSON, program sources in corpus entries) pass through intact.
        let body = "{\"type\":\"event\",\"payload\":{\"text\":\"a\\nb\"}}";
        let mut pipe = Vec::new();
        write_frame(&mut pipe, body).unwrap();
        let back = read_frame(&mut Cursor::new(pipe)).unwrap().unwrap();
        assert_eq!(back, body);
    }
}
