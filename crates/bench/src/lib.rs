//! Shared helpers for the benchmark/experiment harness.
//!
//! Each bench target under `benches/` regenerates one table or figure from
//! the paper's evaluation (see DESIGN.md §5 for the experiment index).  The
//! campaign-style experiments print the table rows directly; the
//! micro-benchmarks use Criterion for statistically meaningful timings.

use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_ir::Program;

/// Deterministic set of random programs used by several experiments.
pub fn sample_programs(count: usize, config: GeneratorConfig, base_seed: u64) -> Vec<Program> {
    (0..count)
        .map(|index| {
            RandomProgramGenerator::new(config.clone(), base_seed + index as u64).generate()
        })
        .collect()
}

/// A small helper to format a ratio as a percentage.
pub fn percent(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        100.0 * numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_programs_are_deterministic() {
        let a = sample_programs(3, GeneratorConfig::tiny(), 7);
        let b = sample_programs(3, GeneratorConfig::tiny(), 7);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(p4_ir::print_program(x), p4_ir::print_program(y));
        }
    }

    #[test]
    fn percent_handles_zero_denominator() {
        assert_eq!(percent(1, 0), 0.0);
        assert_eq!(percent(1, 2), 50.0);
    }
}
