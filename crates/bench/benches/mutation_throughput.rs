//! Experiment §8 — metamorphic mutation throughput.
//!
//! Mutation hunting multiplies every seed program into a family of
//! semantics-preserving variants; its cost has three parts measured here:
//! raw mutant derivation (pure AST work), the full metamorphic check on a
//! correct compiler (compile seed + mutants, prove all equivalent — the
//! steady-state cost of a clean hunt, where the incremental validation
//! session discharges most mutants without the solver), and end-to-end
//! detection of the seeded pre-snapshot corruption that plain translation
//! validation provably cannot see.
//!
//! Run with `cargo bench --bench mutation_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_mutate::{MetamorphicChecker, MetamorphicOptions, MutationEngine, CAMPAIGN_MUTATION_SEED};
use p4c::{Compiler, DriverBugClass};

fn seed_programs(count: usize) -> Vec<p4_ir::Program> {
    (0u64..count as u64)
        .map(|seed| RandomProgramGenerator::new(GeneratorConfig::tiny(), seed).generate())
        .collect()
}

fn corrupted_compiler() -> Compiler {
    let mut compiler = Compiler::reference();
    compiler.seed_input_corruption(DriverBugClass::SnapshotDropsFinalWrite);
    compiler
}

fn bench_mutation(c: &mut Criterion) {
    let programs = seed_programs(8);
    let options = MetamorphicOptions::default();
    let mut group = c.benchmark_group("mutation_throughput");
    group.sample_size(20);

    group.bench_function("derive_mutant_chain4", |b| {
        let engine = MutationEngine::standard();
        let mut index = 0usize;
        b.iter(|| {
            let program = &programs[index % programs.len()];
            index += 1;
            std::hint::black_box(engine.mutate(program, index as u64, 4).chain.len())
        })
    });

    group.bench_function("metamorphic_check_clean", |b| {
        let mut checker = MetamorphicChecker::new(Compiler::reference());
        let mut index = 0usize;
        b.iter(|| {
            let program = &programs[index % programs.len()];
            index += 1;
            let outcome = checker.check(program, &options, CAMPAIGN_MUTATION_SEED);
            assert!(outcome.findings.is_empty(), "clean compiler flagged");
            std::hint::black_box(outcome.mutants_checked)
        })
    });

    group.bench_function("metamorphic_detect_driver_bug", |b| {
        let mut checker = MetamorphicChecker::new(corrupted_compiler());
        let trigger = gauntlet_core::SeededBug::catalogue()
            .into_iter()
            .find(|bug| bug.name() == "SnapshotDropsFinalWrite")
            .expect("driver bug registered")
            .trigger_program();
        b.iter(|| {
            let outcome = checker.check(&trigger, &options, CAMPAIGN_MUTATION_SEED);
            assert!(
                !outcome.findings.is_empty(),
                "the corruption must be detected"
            );
            std::hint::black_box(outcome.findings.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mutation);
criterion_main!(benches);
