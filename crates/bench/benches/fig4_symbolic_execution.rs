//! Experiment F4 — Figure 4's symbolic-execution test generation for
//! black-box back ends: how many paths/tests are produced per program, how
//! long generation takes, and whether seeded Tofino bugs are caught.

use bench::{percent, sample_programs};
use criterion::{criterion_group, criterion_main, Criterion};
use gauntlet_core::SeededBug;
use p4_gen::GeneratorConfig;
use p4_symbolic::{generate_tests, TestGenOptions};
use targets::{BackEndBugClass, Target, TofinoBackend};

fn bench_test_generation(c: &mut Criterion) {
    let programs = sample_programs(4, GeneratorConfig::tofino(), 7);
    let options = TestGenOptions {
        max_tests: 8,
        ..TestGenOptions::default()
    };

    let mut group = c.benchmark_group("fig4_symbolic_execution");
    group.sample_size(10);
    group.bench_function("generate_tests_per_program", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for program in &programs {
                if let Ok(tests) = generate_tests(program, &options) {
                    total += tests.len();
                }
            }
            std::hint::black_box(total);
        })
    });
    group.finish();

    // Detection series: for each Tofino-side seeded bug, how many of the
    // generated tests on its trigger program expose the defect.
    println!("black-box detection on the simulated Tofino back end:");
    for bug in [
        BackEndBugClass::TofinoSaturationWraps,
        BackEndBugClass::TofinoExitIgnored,
        BackEndBugClass::TofinoValidityAlwaysTrue,
    ] {
        let seeded = SeededBug::BackEnd(bug);
        let program = seeded.trigger_program();
        let tests = generate_tests(&program, &options).expect("test generation");
        let backend = TofinoBackend::with_bug(bug);
        let binary = backend.compile(&program).expect("compiles");
        let report = backend.run(&binary, &tests);
        println!(
            "  {:<28} tests = {:>2}, failing = {:>2} ({:.0}%)",
            format!("{bug:?}"),
            report.total,
            report.mismatches.len(),
            percent(report.mismatches.len().min(report.total), report.total)
        );
        assert!(report.found_semantic_bug(), "{bug:?} must be detected");
    }
}

criterion_group!(benches, bench_test_generation);
criterion_main!(benches);
