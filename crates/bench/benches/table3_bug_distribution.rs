//! Experiment T3 — reproduces the paper's Table 3 (distribution of bugs over
//! the compiler areas: front end / mid end / back end).

use gauntlet_core::{render_table3, run_campaign, CampaignConfig, CompilerArea};

fn main() {
    let config = CampaignConfig {
        random_programs_per_bug: 0,
        max_tests: 6,
        check_false_alarms: false,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&config);
    println!("{}", render_table3(&report));
    // Shape check against the paper: the front end dominates the shared
    // infrastructure counts, and back ends contribute a large share.
    let front = report.area_count(CompilerArea::FrontEnd);
    let mid = report.area_count(CompilerArea::MidEnd);
    let back = report.area_count(CompilerArea::BackEnd);
    println!("shape check: front({front}) >= mid({mid}), back({back}) > 0");
    assert!(front >= mid);
    assert!(back > 0);
}
