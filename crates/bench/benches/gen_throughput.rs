//! Experiment §5.2 — random-program generation throughput.  The paper
//! reports generating roughly 10 000 programs per week of wall-clock
//! campaign time (dominated by compilation and validation, not generation);
//! this bench measures raw generator throughput and the end-to-end
//! per-program cost of the full local pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use gauntlet_core::Gauntlet;
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4c::Compiler;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_throughput");
    group.sample_size(20);
    group.bench_function("generate_default_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
            std::hint::black_box(generator.generate().size());
        })
    });
    group.bench_function("generate_and_type_check", |b| {
        let mut seed = 10_000u64;
        b.iter(|| {
            seed += 1;
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
            let program = generator.generate();
            assert!(p4_check::check_program(&program).is_empty());
        })
    });
    group.sample_size(10);
    group.bench_function("generate_compile_validate_tiny", |b| {
        let gauntlet = Gauntlet::default();
        let compiler = Compiler::reference();
        let mut seed = 20_000u64;
        b.iter(|| {
            seed += 1;
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
            let program = generator.generate();
            let outcome = gauntlet.check_open_compiler(&compiler, &program);
            std::hint::black_box(outcome.reports.len());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
