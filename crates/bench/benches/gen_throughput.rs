//! Experiment §5.2 — campaign throughput (programs checked per second).
//!
//! The paper reports generating roughly 10 000 programs per week of
//! wall-clock campaign time (dominated by compilation and validation, not
//! generation).  This bench measures raw generator throughput, the
//! end-to-end per-program cost of the full local pipeline, and — the
//! headline numbers — the parallel campaign engine's throughput scaling
//! across `--jobs` and the speedup from incremental solver reuse.
//!
//! Run with `cargo bench --bench gen_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use gauntlet_core::{Gauntlet, HuntConfig, ParallelCampaign};
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4c::Compiler;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_throughput");
    group.sample_size(20);
    group.bench_function("generate_default_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
            std::hint::black_box(generator.generate().size());
        })
    });
    group.bench_function("generate_and_type_check", |b| {
        let mut seed = 10_000u64;
        b.iter(|| {
            seed += 1;
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::default(), seed);
            let program = generator.generate();
            assert!(p4_check::check_program(&program).is_empty());
        })
    });
    group.sample_size(10);
    group.bench_function("generate_compile_validate_tiny", |b| {
        let gauntlet = Gauntlet::default();
        let compiler = Compiler::reference();
        let mut seed = 20_000u64;
        b.iter(|| {
            seed += 1;
            let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
            let program = generator.generate();
            let outcome = gauntlet.check_open_compiler(&compiler, &program);
            std::hint::black_box(outcome.reports.len());
        })
    });
    group.finish();
}

/// The campaign-engine comparison: throughput at increasing `--jobs`, and
/// incremental vs from-scratch validation.  Printed as a table so the
/// reproduction guide can quote it directly.
fn campaign_scaling(_c: &mut Criterion) {
    const SEEDS: usize = 200;
    let base = HuntConfig {
        seed_start: 0,
        seed_count: SEEDS,
        generator: GeneratorConfig::tiny(),
        ..HuntConfig::default()
    };

    println!();
    println!("campaign throughput over {SEEDS} generated programs (reference compiler):");
    let mut baseline = None;
    let mut reference_render = None;
    for jobs in [1usize, 2, 4] {
        let config = HuntConfig {
            jobs,
            ..base.clone()
        };
        let report = ParallelCampaign::new(config).run(Compiler::reference);
        let throughput = report.throughput();
        let speedup = baseline.map(|b: f64| throughput / b).unwrap_or(1.0);
        baseline.get_or_insert(throughput);
        println!(
            "  --jobs {jobs}: {:>8.1} programs/s  ({:>6.2}x vs --jobs 1, {:?} wall clock)",
            throughput, speedup, report.elapsed
        );
        // The determinism contract: every jobs setting commits the identical
        // report.
        match &reference_render {
            None => reference_render = Some(report.render()),
            Some(expected) => assert_eq!(
                expected,
                &report.render(),
                "bug reports must be byte-identical across --jobs"
            ),
        }
    }

    println!();
    println!("incremental validation-chain reuse (--jobs 1, same {SEEDS} programs):");
    let fresh = ParallelCampaign::new(HuntConfig {
        incremental: false,
        ..base.clone()
    })
    .run(Compiler::reference);
    let incremental = ParallelCampaign::new(base).run(Compiler::reference);
    assert_eq!(
        fresh.render(),
        incremental.render(),
        "incremental and from-scratch validation must agree"
    );
    println!(
        "  from-scratch: {:>8.1} programs/s  ({:?})",
        fresh.throughput(),
        fresh.elapsed
    );
    println!(
        "  incremental:  {:>8.1} programs/s  ({:?}, {:.2}x)",
        incremental.throughput(),
        incremental.elapsed,
        incremental.throughput() / fresh.throughput().max(f64::MIN_POSITIVE)
    );
}

criterion_group!(benches, bench_generation, campaign_scaling);
criterion_main!(benches);
