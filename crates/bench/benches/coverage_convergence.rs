//! Experiment — coverage convergence of guided vs unguided hunting.
//!
//! The paper steers generation with static per-node-kind probabilities
//! (§4.1); this bench quantifies what closing the loop buys: over the same
//! seed budget, how many distinct pass-rewrite rules does the campaign
//! exercise with static weights vs with the coverage-guided
//! `WeightAdapter`, and how fast does each converge?  Printed as a table so
//! the reproduction guide can quote it directly.
//!
//! Run with `cargo bench --bench coverage_convergence`.

use criterion::{criterion_group, criterion_main, Criterion};
use gauntlet_core::{CoverageOptions, HuntConfig, ParallelCampaign};
use p4_gen::GeneratorConfig;

fn convergence(_c: &mut Criterion) {
    const SEEDS: usize = 100;
    const EPOCH: usize = 25;
    let hunt = |adapt: bool| {
        ParallelCampaign::new(HuntConfig {
            jobs: 4,
            seed_start: 0,
            seed_count: SEEDS,
            generator: GeneratorConfig::tiny(),
            coverage: Some(CoverageOptions {
                adapt,
                adapt_every: EPOCH,
                corpus: None,
                pairs: true,
            }),
            ..HuntConfig::default()
        })
        .run(p4c::Compiler::reference)
    };

    println!();
    println!("coverage convergence over {SEEDS} programs (epoch {EPOCH}, reference compiler):");
    let unguided = hunt(false);
    let guided = hunt(true);
    let baseline = unguided.coverage.expect("coverage accounting on");
    let steered = guided.coverage.expect("coverage accounting on");
    println!(
        "  {:<10} {:>14} {:>14} {:>12}",
        "mode", "rules fired", "constructs", "corpus"
    );
    for (label, summary) in [("unguided", &baseline), ("guided", &steered)] {
        println!(
            "  {:<10} {:>9}/{:<4} {:>14} {:>12}",
            label,
            summary.rules_fired(),
            summary.rules_total,
            summary.constructs_seen,
            summary.corpus_size
        );
    }
    println!(
        "  guided/unguided rule ratio: {:.2}x",
        steered.rules_fired() as f64 / baseline.rules_fired().max(1) as f64
    );
    println!(
        "  cross-pass pairs: unguided {}/{}, guided {}/{}",
        baseline.pairs_fired(),
        baseline.pairs_total,
        steered.pairs_fired(),
        steered.pairs_total
    );
    let render = |summary: &gauntlet_core::CoverageSummary| {
        summary
            .rules_over_time
            .iter()
            .map(|(programs, rules)| format!("{programs}:{rules}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!(
        "  unguided trajectory (programs:rules): {}",
        render(&baseline)
    );
    println!(
        "  guided   trajectory (programs:rules): {}",
        render(&steered)
    );
    assert!(
        steered.rules_fired() >= baseline.rules_fired(),
        "guided coverage regressed below the unguided baseline"
    );
}

criterion_group!(benches, convergence);
criterion_main!(benches);
