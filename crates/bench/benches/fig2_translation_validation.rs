//! Experiment F2 — the translation-validation pipeline of Figure 2:
//! per-program validation latency across all passes, measured with
//! Criterion over a fixed set of generated programs.

use bench::sample_programs;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gauntlet_core::Gauntlet;
use p4_gen::GeneratorConfig;
use p4c::Compiler;

fn bench_translation_validation(c: &mut Criterion) {
    let programs = sample_programs(4, GeneratorConfig::tiny(), 42);
    let compiler = Compiler::reference();
    let compiled: Vec<_> = programs
        .iter()
        .map(|p| compiler.compile(p).expect("compiles"))
        .collect();
    let gauntlet = Gauntlet::default();

    let mut group = c.benchmark_group("fig2_translation_validation");
    group.sample_size(10);
    group.bench_function("validate_all_passes_per_program", |b| {
        b.iter_batched(
            || compiled.clone(),
            |results| {
                let mut reports = 0;
                for result in &results {
                    reports += gauntlet.validate_translation(result).len();
                }
                assert_eq!(reports, 0, "reference compiler must validate cleanly");
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("compile_with_snapshots", |b| {
        b.iter(|| {
            for program in &programs {
                let result = compiler.compile(program).expect("compiles");
                std::hint::black_box(result.snapshots.len());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_translation_validation);
criterion_main!(benches);
