//! Experiment F3 — Figure 3's symbolic table encoding: formula construction
//! cost and size as the number of table actions grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p4_ir::builder;
use p4_ir::{
    ActionDecl, ActionRef, Block, Declaration, Expr, KeyElement, MatchKind, Statement, TableDecl,
};
use p4_symbolic::interpret_program;
use smt::TermManager;
use std::sync::Arc;

/// Builds a program whose ingress applies one table with `actions` actions
/// and `keys` exact keys.
fn table_program(actions: usize, keys: usize) -> p4_ir::Program {
    let fields = ["a", "b", "c"];
    let mut locals = vec![Declaration::Action(builder::no_action())];
    let mut refs = Vec::new();
    for index in 0..actions {
        let name = format!("set_{index}");
        locals.push(Declaration::Action(ActionDecl {
            name: name.clone(),
            params: vec![],
            body: Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "b"]),
                Expr::uint(index as u128, 8),
            )]),
        }));
        refs.push(ActionRef::new(name));
    }
    refs.push(ActionRef::new("NoAction"));
    locals.push(Declaration::Table(TableDecl {
        name: "t".into(),
        keys: (0..keys)
            .map(|k| KeyElement {
                expr: Expr::dotted(&["hdr", "h", fields[k % fields.len()]]),
                match_kind: MatchKind::Exact,
            })
            .collect(),
        actions: refs,
        default_action: ActionRef::new("NoAction"),
    }));
    builder::v1model_program(
        locals,
        Block::new(vec![Statement::call(vec!["t", "apply"], vec![])]),
    )
}

fn bench_table_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_table_encoding");
    group.sample_size(20);
    for actions in [1usize, 4, 8] {
        let program = table_program(actions, 2);
        group.bench_with_input(
            BenchmarkId::new("interpret_actions", actions),
            &program,
            |b, p| {
                b.iter(|| {
                    let tm = Arc::new(TermManager::new());
                    let semantics = interpret_program(&tm, p).expect("interprets");
                    std::hint::black_box(tm.term_count());
                    std::hint::black_box(semantics.blocks.len());
                })
            },
        );
    }
    // Print the formula-size series (the figure's qualitative content).
    println!("formula size (term count) vs number of table actions:");
    for actions in [1usize, 2, 4, 8, 16] {
        let program = table_program(actions, 2);
        let tm = Arc::new(TermManager::new());
        let _ = interpret_program(&tm, &program).expect("interprets");
        println!("  actions = {actions:>2}  terms = {}", tm.term_count());
    }
    group.finish();
}

criterion_group!(benches, bench_table_encoding);
criterion_main!(benches);
