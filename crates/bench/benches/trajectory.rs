//! The committed benchmark trajectory: every stage of the campaign loop
//! (generate → compile → validate → mutate) timed over a fixed-seed
//! workload, emitted as machine-readable JSON (the `BENCH_pr*.json` files
//! at the repo root, currently `BENCH_pr10.json`) so performance claims are
//! *committed* next to the code they describe and regressions show up in
//! review diffs.
//!
//! ```text
//! cargo bench -p bench --bench trajectory -- \
//!     [--seeds N] [--out PATH] [--compare BASELINE|auto] [--portfolio 1]
//! ```
//!
//! * default — run the workload (50 seeds) and print the JSON to stdout;
//! * `--out PATH` — also write the JSON to `PATH` (use
//!   `--seeds 50 --out BENCH_pr10.json` to regenerate the committed file,
//!   see docs/REPRODUCING.md);
//! * `--compare BASELINE` — gate mode: after measuring, compare against a
//!   previously committed trajectory and exit nonzero on regression.
//!   `--compare auto` resolves to the highest-numbered committed
//!   `BENCH_pr*.json` at the workspace root and fails loudly if none
//!   exists — CI uses this form so the gate follows the newest committed
//!   baseline instead of a hard-coded file name going silently stale.
//!
//! The headline metric is the **warm-over-cold validate speedup**: the same
//! 50 compiled pass chains are translation-validated twice through the
//! campaign worker configuration (a fresh session per program, attached to
//! a shared `EpochCache`) — first against the *empty* cache (the cold miss
//! path: every snapshot interpreted, every non-trivial query solved) and
//! then against the now-populated cache (the warm hit path: what any
//! revalidation inside an epoch experiences — duplicate programs, mutants
//! whose compiled form collapses onto the seed's, replayed corpus entries,
//! or a racing worker arriving second).  Both runs are in this file, so the
//! committed ≥2× claim is measured, not asserted.
//!
//! The campaign-lifetime cache adds a third validation run: the same chains
//! are re-validated *after an epoch barrier* (`validate_cross_epoch`).
//! Under the old per-epoch cache this path was a full cold re-run; with
//! the campaign-lifetime cache the memos and the interner survive the
//! barrier's generation sweep, so cross-epoch revalidation must stay at
//! least [`CROSS_EPOCH_SPEEDUP_FLOOR`]× faster than cold — the committed
//! `validate_speedup_cross_epoch` metric, gated in CI.
//!
//! The comparator deliberately gates on *scale-free* metrics only — the
//! speedup ratio, the deterministic work counters (pass pairs, solver
//! checks, mutants), and the **telemetry overhead**: the cold-validation
//! workload is re-run with a telemetry `Recorder` installed and the
//! relative slowdown is emitted as `telemetry_overhead_pct` and bounded at
//! <3% (the flight-recorder invariant).  Absolute throughput depends on
//! the machine that ran the bench, so comparing a CI runner's numbers
//! against a committed file from another machine would gate on noise;
//! throughputs are recorded for trend reading, not enforced.
//!
//! The per-query solver tail (`solver_tail` blocks) is now also captured by
//! the telemetry histograms inside every campaign run (`run.telemetry.solver`
//! in the `gauntlet-report-v1` document); the bench keeps its own exact
//! sorted-sample percentiles as the ground truth the bucketed histogram
//! approximates.

use gauntlet_core::{hunt_mutation_seed, MetamorphicChecker, MetamorphicOptions};
use gauntlet_telemetry::ProgressSink;
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_symbolic::{EpochCache, SessionStats, ValidationSession};
use p4c::{CompileResult, Compiler};
use smt::PortfolioOptions;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much the gated ratio metrics may degrade relative to the committed
/// baseline before the comparator fails (the "10% regression" CI gate).
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Ceiling on the telemetry flight recorder's measured slowdown of the
/// validation workload (the hard invariant from the telemetry PR).
const TELEMETRY_OVERHEAD_CEILING_PCT: f64 = 3.0;

/// Ceiling on the coverage sink's measured slowdown of the compile
/// workload.  Pair-interaction recording rides the compile hot path on
/// interned `(Symbol, Symbol)` keys — no string allocation per firing —
/// so installing a coverage scope must stay within noise of an
/// uninstrumented compile.
const COVERAGE_OVERHEAD_CEILING_PCT: f64 = 5.0;

/// Floor on the cross-epoch warm-validate speedup at the full committed
/// workload: revalidating the same chains after an epoch barrier must stay
/// at least this much faster than a cold run, proving the memos survive
/// the barrier.
const CROSS_EPOCH_SPEEDUP_FLOOR: f64 = 1.5;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Resolves a `--out`/`--compare` path against the workspace root (cargo
/// runs bench harnesses with the package directory as cwd, which would
/// scatter relative paths under `crates/bench/`).
fn resolve(path: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(path);
    if path.is_absolute() {
        path.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
    }
}

/// `--compare auto`: the highest-numbered `BENCH_pr<N>.json` committed at
/// the workspace root.  Panics (nonzero exit) when none exists — a silent
/// fallback here would let CI "pass" a gate that compared against nothing.
fn latest_committed_baseline() -> std::path::PathBuf {
    let root = resolve(".");
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    let entries = std::fs::read_dir(&root)
        .unwrap_or_else(|error| panic!("cannot list workspace root `{}`: {error}", root.display()));
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(number) = name
            .to_str()
            .and_then(|name| name.strip_prefix("BENCH_pr"))
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|number| number.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(highest, _)| number > *highest) {
            best = Some((number, entry.path()));
        }
    }
    match best {
        Some((_, path)) => path,
        None => panic!(
            "--compare auto: no committed BENCH_pr*.json found at the workspace root `{}`",
            root.display()
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: usize = parse_flag(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let portfolio = parse_flag(&args, "--portfolio")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0)
        != 0;
    let out = parse_flag(&args, "--out");
    let compare = parse_flag(&args, "--compare");
    // Stderr narration routes through one sink (`--quiet` silences it);
    // stdout stays machine-readable JSON only.
    let progress = ProgressSink::new(!args.iter().any(|a| a == "--quiet"));

    let trajectory = measure(seeds, portfolio);
    let json = render_json(&trajectory);
    println!("{json}");
    if let Some(path) = out {
        let path = resolve(&path);
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|error| panic!("cannot write `{}`: {error}", path.display()));
        progress.note(&format!("trajectory written to {}", path.display()));
    }
    if let Some(path) = compare {
        let path = if path == "auto" {
            latest_committed_baseline()
        } else {
            resolve(&path)
        };
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|error| panic!("cannot read baseline `{}`: {error}", path.display()));
        let failures = compare_against(&trajectory, &baseline);
        if failures.is_empty() {
            progress.note(&format!(
                "comparator: no regression against {}",
                path.display()
            ));
        } else {
            for failure in &failures {
                progress.note(&format!("comparator FAIL: {failure}"));
            }
            std::process::exit(1);
        }
    }
}

/// One stage's timing: work units, wall clock, derived rate.
struct Stage {
    units: u64,
    elapsed: Duration,
}

impl Stage {
    fn per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.units as f64 / secs
        }
    }
}

/// Per-query latency percentiles (the solver tail).
#[derive(Default)]
struct Tail {
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    max_us: f64,
}

impl Tail {
    fn of(mut samples: Vec<Duration>) -> Tail {
        if samples.is_empty() {
            return Tail::default();
        }
        samples.sort();
        let at = |q: f64| {
            let index = ((samples.len() - 1) as f64 * q).round() as usize;
            samples[index].as_secs_f64() * 1e6
        };
        Tail {
            p50_us: at(0.50),
            p90_us: at(0.90),
            p99_us: at(0.99),
            max_us: samples[samples.len() - 1].as_secs_f64() * 1e6,
        }
    }
}

struct ValidateRun {
    stage: Stage,
    stats: SessionStats,
    tail: Tail,
}

struct Trajectory {
    seeds: usize,
    portfolio: bool,
    gen: Stage,
    compile: Stage,
    cold: ValidateRun,
    warm: ValidateRun,
    /// Revalidation of the same chains after an epoch barrier: the
    /// campaign-lifetime cache's cross-epoch hit path.
    cross_epoch: ValidateRun,
    mutate: Stage,
    mutants: u64,
    portfolio_races: u64,
    /// Relative slowdown (in percent, may be negative under noise) of the
    /// cold-validation workload with a telemetry `Recorder` installed.
    telemetry_overhead_pct: f64,
    /// Relative slowdown (in percent, may be negative under noise) of the
    /// compile workload with a coverage scope installed — the pair-sink
    /// hot-path micro-assert.
    coverage_overhead_pct: f64,
    /// Distinct cross-pass rule pairs the compile workload fires — a
    /// deterministic counter at fixed seeds (the pair-coverage-at-equal-
    /// budget metric).
    compile_distinct_pairs: u64,
}

impl Trajectory {
    /// The headline warm-over-cold validate speedup.
    fn speedup(&self) -> f64 {
        let cold = self.cold.stage.per_sec();
        if cold <= 0.0 {
            0.0
        } else {
            self.warm.stage.per_sec() / cold
        }
    }

    /// Cross-epoch speedup: revalidation after an epoch barrier over cold.
    fn cross_epoch_speedup(&self) -> f64 {
        let cold = self.cold.stage.per_sec();
        if cold <= 0.0 {
            0.0
        } else {
            self.cross_epoch.stage.per_sec() / cold
        }
    }
}

fn add_stats(into: &mut SessionStats, stats: SessionStats) {
    into.semantics_hits += stats.semantics_hits;
    into.semantics_misses += stats.semantics_misses;
    into.trivial_checks += stats.trivial_checks;
    into.solver_checks += stats.solver_checks;
    into.cached_checks += stats.cached_checks;
    into.verdict_hits += stats.verdict_hits;
    into.verdict_misses += stats.verdict_misses;
}

/// Validates every compiled pass chain in the campaign worker
/// configuration — a fresh session per program attached to the shared
/// epoch cache — timing each per-pair equivalence check.
fn validate_all(
    results: &[CompileResult],
    cache: &Arc<EpochCache>,
    portfolio: bool,
    samples: &mut Vec<Duration>,
) -> ValidateRun {
    let mut pairs = 0u64;
    let mut stats = SessionStats::default();
    let start = Instant::now();
    for result in results {
        let mut session = ValidationSession::with_cache(Arc::clone(cache));
        if portfolio {
            session.set_portfolio(PortfolioOptions::default());
        }
        for (before, after) in result.pass_pairs() {
            pairs += 1;
            let query_start = Instant::now();
            // Verdicts (equal or counterexample) are the workload; pairs the
            // interpreter cannot model are skipped like the pipeline does.
            let _ = session.check_pair(&before.program, &after.program);
            samples.push(query_start.elapsed());
        }
        add_stats(&mut stats, session.stats());
    }
    let elapsed = start.elapsed();
    ValidateRun {
        stage: Stage {
            units: pairs,
            elapsed,
        },
        stats,
        tail: Tail::default(),
    }
}

/// The compiler under test: the catalogue's first P4C semantic (non-crash)
/// seeded bug, the same selection rule as the `bug_campaign` example and
/// the hunt determinism tests.
fn hunted_compiler() -> Compiler {
    gauntlet_core::SeededBug::catalogue()
        .into_iter()
        .find(|b| b.platform() == gauntlet_core::Platform::P4c && !b.is_crash_class())
        .expect("catalogue has a P4C semantic bug")
        .build_compiler()
}

fn measure(seeds: usize, portfolio: bool) -> Trajectory {
    let config = GeneratorConfig::tiny();

    // Stage 1: generation (seeds 0..seeds, the hunt's own derivation).
    let start = Instant::now();
    let programs: Vec<_> = (0..seeds)
        .map(|seed| RandomProgramGenerator::new(config.clone(), seed as u64).generate())
        .collect();
    let gen = Stage {
        units: seeds as u64,
        elapsed: start.elapsed(),
    };

    // Stage 2: compilation through the hunted compiler — seeded with a
    // P4C semantic bug, like the example hunt, so validation downstream
    // exercises the solver (the reference compiler's chains all discharge
    // trivially by hash-consing, which would benchmark nothing).
    let compiler = hunted_compiler();
    let start = Instant::now();
    let results: Vec<CompileResult> = programs
        .iter()
        .map(|program| {
            compiler
                .compile(program)
                .expect("reference compiler accepts generated programs")
        })
        .collect();
    let compile = Stage {
        units: seeds as u64,
        elapsed: start.elapsed(),
    };

    // Stage 2b: the coverage-sink micro-assert.  The pair-interaction sink
    // records interned `(Symbol, Symbol)` keys per rewrite firing — the
    // per-firing `format!` is gone — so re-running the same compile
    // workload with a coverage scope installed must stay within noise of
    // the uninstrumented run.  Interleaved best-of-5 per side, like the
    // telemetry overhead stage.  The distinct-pair count from the scoped
    // run is deterministic at fixed seeds and gated exactly.
    let mut compile_plain = Duration::MAX;
    let mut compile_scoped = Duration::MAX;
    let mut compile_distinct_pairs = 0u64;
    for _ in 0..5 {
        let start = Instant::now();
        for program in &programs {
            let _ = compiler.compile(program);
        }
        compile_plain = compile_plain.min(start.elapsed());

        let start = Instant::now();
        let (_, coverage) = p4c::coverage::with_sink(|| {
            for program in &programs {
                let _ = compiler.compile(program);
            }
        });
        compile_scoped = compile_scoped.min(start.elapsed());
        compile_distinct_pairs = coverage.distinct_pairs() as u64;
    }
    let coverage_overhead_pct =
        (compile_scoped.as_secs_f64() / compile_plain.as_secs_f64() - 1.0) * 100.0;

    // Stages 3a/3b: cold then warm validation, best-of-5 repetitions
    // (min wall clock per side) so the committed speedup ratio gates on
    // the workload, not on scheduler noise in any single run.  Each
    // repetition starts from a fresh cache: cold runs against the *empty*
    // cache (every snapshot interpreted, every non-trivial query solved
    // and its canonical verdict stored), warm re-runs the same chains
    // through fresh sessions against the now-populated cache — the hit
    // path every revalidation inside an epoch takes.  The memo counters
    // are deterministic, so they agree across repetitions.
    let mut cold: Option<ValidateRun> = None;
    let mut warm: Option<ValidateRun> = None;
    let mut cache = Arc::new(EpochCache::new());
    for _ in 0..5 {
        cache = Arc::new(EpochCache::new());
        let mut cold_samples = Vec::new();
        let mut cold_run = validate_all(&results, &cache, portfolio, &mut cold_samples);
        cold_run.tail = Tail::of(cold_samples);
        let mut warm_samples = Vec::new();
        let mut warm_run = validate_all(&results, &cache, portfolio, &mut warm_samples);
        warm_run.tail = Tail::of(warm_samples);
        if cold
            .as_ref()
            .is_none_or(|best| cold_run.stage.elapsed < best.stage.elapsed)
        {
            cold = Some(cold_run);
        }
        if warm
            .as_ref()
            .is_none_or(|best| warm_run.stage.elapsed < best.stage.elapsed)
        {
            warm = Some(warm_run);
        }
    }
    let cold = cold.expect("at least one repetition");
    let warm = warm.expect("at least one repetition");

    // Stage 3c: cross-epoch revalidation.  Populate a fresh cache (epoch
    // 1), run the campaign's epoch barrier — generation bump plus the
    // budget-driven eviction sweep — then revalidate the same chains as
    // epoch 2 would.  Under the retired per-epoch cache this was a cold
    // re-run; the campaign-lifetime cache keeps it on the hit path.
    let mut cross_epoch: Option<ValidateRun> = None;
    for _ in 0..5 {
        let barrier_cache = Arc::new(EpochCache::new());
        let mut sink = Vec::new();
        let _ = validate_all(&results, &barrier_cache, portfolio, &mut sink);
        barrier_cache.epoch_barrier();
        let mut samples = Vec::new();
        let mut run = validate_all(&results, &barrier_cache, portfolio, &mut samples);
        run.tail = Tail::of(samples);
        if cross_epoch
            .as_ref()
            .is_none_or(|best| run.stage.elapsed < best.stage.elapsed)
        {
            cross_epoch = Some(run);
        }
    }
    let cross_epoch = cross_epoch.expect("at least one repetition");

    // Stage 4: metamorphic mutation over the same seeds, warm checker.
    let mut checker = MetamorphicChecker::with_cache(hunted_compiler(), Arc::clone(&cache));
    if portfolio {
        checker.set_portfolio(PortfolioOptions::default());
    }
    let options = MetamorphicOptions::default();
    let mut mutants = 0u64;
    let start = Instant::now();
    for (seed, program) in programs.iter().enumerate() {
        let outcome = checker.check(program, &options, hunt_mutation_seed(seed as u64));
        mutants += outcome.mutants_checked as u64;
    }
    let mutate = Stage {
        units: mutants,
        elapsed: start.elapsed(),
    };
    let portfolio_races = checker.portfolio_races();

    // Stage 5: telemetry overhead.  The cold-validation workload (the
    // hottest instrumented path: a Validate span per pair plus a latency
    // sample per solver query) is re-run with and without a `Recorder`
    // installed, interleaved and best-of-5 per side so the ratio compares
    // the two fast paths rather than scheduler noise.
    let telemetry_overhead_pct = {
        let mut uninstrumented = Duration::MAX;
        let mut instrumented = Duration::MAX;
        for _ in 0..5 {
            let cache = Arc::new(EpochCache::new());
            let mut sink = Vec::new();
            let run = validate_all(&results, &cache, portfolio, &mut sink);
            uninstrumented = uninstrumented.min(run.stage.elapsed);

            let cache = Arc::new(EpochCache::new());
            let enclosing = gauntlet_telemetry::install(gauntlet_telemetry::Recorder::new());
            let mut sink = Vec::new();
            let run = validate_all(&results, &cache, portfolio, &mut sink);
            let recorder = gauntlet_telemetry::take().expect("recorder still installed");
            assert!(!recorder.is_empty(), "instrumented run recorded nothing");
            if let Some(previous) = enclosing {
                gauntlet_telemetry::install(previous);
            }
            instrumented = instrumented.min(run.stage.elapsed);
        }
        (instrumented.as_secs_f64() / uninstrumented.as_secs_f64() - 1.0) * 100.0
    };

    Trajectory {
        seeds,
        portfolio,
        gen,
        compile,
        cold,
        warm,
        cross_epoch,
        mutate,
        mutants,
        portfolio_races,
        telemetry_overhead_pct,
        coverage_overhead_pct,
        compile_distinct_pairs,
    }
}

fn render_json(t: &Trajectory) -> String {
    // Hand-rolled writer (the in-tree serde shim has no JSON back end);
    // key order is fixed so committed regenerations diff cleanly.
    let stage = |s: &Stage| {
        format!(
            "{{ \"units\": {}, \"elapsed_ms\": {:.3}, \"per_sec\": {:.1} }}",
            s.units,
            s.elapsed.as_secs_f64() * 1000.0,
            s.per_sec()
        )
    };
    let tail = |t: &Tail| {
        format!(
            "{{ \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1} }}",
            t.p50_us, t.p90_us, t.p99_us, t.max_us
        )
    };
    let validate = |v: &ValidateRun| {
        format!(
            "{{\n    \"pairs\": {}, \"elapsed_ms\": {:.3}, \"pairs_per_sec\": {:.1},\n    \"semantics_hits\": {}, \"semantics_misses\": {},\n    \"trivial_checks\": {}, \"solver_checks\": {}, \"cached_checks\": {},\n    \"verdict_hits\": {}, \"verdict_misses\": {},\n    \"solver_tail\": {}\n  }}",
            v.stage.units,
            v.stage.elapsed.as_secs_f64() * 1000.0,
            v.stage.per_sec(),
            v.stats.semantics_hits,
            v.stats.semantics_misses,
            v.stats.trivial_checks,
            v.stats.solver_checks,
            v.stats.cached_checks,
            v.stats.verdict_hits,
            v.stats.verdict_misses,
            tail(&v.tail)
        )
    };
    format!(
        "{{\n  \"schema\": \"gauntlet-trajectory-v1\",\n  \"seeds\": {},\n  \"portfolio\": {},\n  \"gen\": {},\n  \"compile\": {},\n  \"compile_distinct_pairs\": {},\n  \"coverage_overhead_pct\": {:.2},\n  \"validate_cold\": {},\n  \"validate_warm\": {},\n  \"validate_speedup_warm_over_cold\": {:.3},\n  \"validate_cross_epoch\": {},\n  \"validate_speedup_cross_epoch\": {:.3},\n  \"mutate\": {},\n  \"mutants_checked\": {},\n  \"portfolio_races\": {},\n  \"telemetry_overhead_pct\": {:.2}\n}}",
        t.seeds,
        t.portfolio,
        stage(&t.gen),
        stage(&t.compile),
        t.compile_distinct_pairs,
        t.coverage_overhead_pct,
        validate(&t.cold),
        validate(&t.warm),
        t.speedup(),
        validate(&t.cross_epoch),
        t.cross_epoch_speedup(),
        stage(&t.mutate),
        t.mutants,
        t.portfolio_races,
        t.telemetry_overhead_pct
    )
}

/// Pulls `"key": <number>` out of a trajectory JSON document.  The format
/// is our own (fixed key order, numeric scalars), so a full JSON parser is
/// unnecessary; the first occurrence wins, which is why gated keys are
/// top-level-unique.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The CI gate: compares the fresh measurement against a committed
/// baseline.  Returns human-readable failures (empty = pass).
fn compare_against(current: &Trajectory, baseline: &str) -> Vec<String> {
    let mut failures = Vec::new();
    if !baseline.contains("\"schema\": \"gauntlet-trajectory-v1\"") {
        return vec!["baseline schema mismatch (expected gauntlet-trajectory-v1)".into()];
    }
    // The telemetry invariant is a property of the current build, not a
    // baseline ratio: gate it at every workload scale.
    if current.telemetry_overhead_pct >= TELEMETRY_OVERHEAD_CEILING_PCT {
        failures.push(format!(
            "telemetry overhead too high: {:.2}% >= {TELEMETRY_OVERHEAD_CEILING_PCT:.0}% ceiling",
            current.telemetry_overhead_pct
        ));
    }
    // Likewise the coverage-sink invariant: recording pair interactions
    // must not tax compile throughput (interned keys, no per-firing
    // allocation) — gated at every workload scale.
    if current.coverage_overhead_pct >= COVERAGE_OVERHEAD_CEILING_PCT {
        failures.push(format!(
            "coverage sink overhead too high: {:.2}% >= {COVERAGE_OVERHEAD_CEILING_PCT:.0}% ceiling",
            current.coverage_overhead_pct
        ));
    }
    let baseline_seeds = json_number(baseline, "seeds").unwrap_or(0.0) as usize;
    let baseline_speedup = json_number(baseline, "validate_speedup_warm_over_cold").unwrap_or(0.0);
    if current.seeds == baseline_seeds {
        // The cross-epoch claim: revalidation after an epoch barrier must
        // stay well above cold — an absolute floor at the committed
        // workload, plus (when the baseline is new enough to carry the
        // key) the usual relative-regression gate.
        if current.cross_epoch_speedup() < CROSS_EPOCH_SPEEDUP_FLOOR {
            failures.push(format!(
                "cross-epoch validate speedup below floor: {:.3} < {CROSS_EPOCH_SPEEDUP_FLOOR:.1}",
                current.cross_epoch_speedup()
            ));
        }
        if let Some(baseline_cross) = json_number(baseline, "validate_speedup_cross_epoch") {
            let floor = baseline_cross * (1.0 - REGRESSION_TOLERANCE);
            if current.cross_epoch_speedup() < floor {
                failures.push(format!(
                    "cross-epoch validate speedup regressed: {:.3} < {:.3} (baseline {:.3} - {:.0}%)",
                    current.cross_epoch_speedup(),
                    floor,
                    baseline_cross,
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
        }
        // Same workload: the speedup must not regress by more than the
        // tolerance, and the deterministic work counters must match
        // exactly (a counter drift means the pipeline changed shape and
        // the baseline must be regenerated deliberately).
        let floor = baseline_speedup * (1.0 - REGRESSION_TOLERANCE);
        if current.speedup() < floor {
            failures.push(format!(
                "validate speedup regressed: {:.3} < {:.3} (baseline {:.3} - {:.0}%)",
                current.speedup(),
                floor,
                baseline_speedup,
                REGRESSION_TOLERANCE * 100.0
            ));
        }
        let counters: [(&str, f64); 4] = [
            ("pairs", current.cold.stage.units as f64),
            ("solver_checks", current.cold.stats.solver_checks as f64),
            ("trivial_checks", current.cold.stats.trivial_checks as f64),
            ("mutants_checked", current.mutants as f64),
        ];
        for (key, value) in counters {
            let expected = json_number(baseline, key);
            if expected != Some(value) {
                failures.push(format!(
                    "deterministic counter `{key}` drifted: measured {value}, baseline {expected:?} — regenerate the committed BENCH_pr*.json if intentional"
                ));
            }
        }
        // The pair-coverage-at-equal-budget counter (only gated when the
        // baseline is new enough to carry it): the distinct cross-pass
        // pairs the fixed-seed compile workload fires is deterministic,
        // so any drift means the pass pipeline or the pair registry
        // changed shape.
        if let Some(expected) = json_number(baseline, "compile_distinct_pairs") {
            let measured = current.compile_distinct_pairs as f64;
            if expected != measured {
                failures.push(format!(
                    "deterministic counter `compile_distinct_pairs` drifted: measured {measured}, baseline {expected} — regenerate the committed BENCH_pr*.json if intentional"
                ));
            }
        }
    } else {
        // Smoke workload (different seed count): the counters cannot be
        // compared, so only require that warm validation is not slower
        // than cold beyond the tolerance.
        let floor = 1.0 - REGRESSION_TOLERANCE;
        if current.speedup() < floor {
            failures.push(format!(
                "smoke: warm validation slower than cold: speedup {:.3} < {floor:.2}",
                current.speedup()
            ));
        }
    }
    failures
}
