//! Experiment §7 — reduction throughput (oracle calls per second and
//! end-to-end reduction time).
//!
//! The paper reduced every reported program to a minimal reproducer before
//! filing it; reduction cost is dominated by re-running the detection
//! technique on every shrink candidate.  This bench measures the raw oracle
//! rate (crash oracle vs incremental semantic oracle) and the end-to-end
//! cost of delta-debugging a fixed seed set, asserting along the way that
//! every minimized program still triggers the original bug.
//!
//! Run with `cargo bench --bench reduce_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_reduce::{statement_count, CrashOracle, Oracle, Reducer, ReducerConfig, SemanticOracle};
use p4c::{Compiler, FrontEndBugClass};

fn buggy_compiler(class: FrontEndBugClass) -> Compiler {
    let mut compiler = Compiler::reference();
    compiler.replace_pass(class.faulty_pass());
    compiler
}

/// The fixed seed set every measurement uses: seeds from a tiny-program
/// range whose generated program triggers the seeded def-use bug.
fn trigger_seeds(count: usize) -> Vec<u64> {
    let mut oracle =
        SemanticOracle::new(buggy_compiler(FrontEndBugClass::DefUseDropsParameterWrites));
    (0u64..)
        .filter(|&seed| {
            let program = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed).generate();
            !oracle.signatures(&program).is_empty()
        })
        .take(count)
        .collect()
}

fn bench_oracle_rate(c: &mut Criterion) {
    let program =
        RandomProgramGenerator::new(GeneratorConfig::tiny(), trigger_seeds(1)[0]).generate();
    let mut group = c.benchmark_group("reduce_throughput");
    group.sample_size(20);
    group.bench_function("crash_oracle_call", |b| {
        let mut oracle =
            CrashOracle::new(buggy_compiler(FrontEndBugClass::TypeInferenceShiftCrash));
        b.iter(|| std::hint::black_box(oracle.signatures(&program).len()))
    });
    group.bench_function("semantic_oracle_call_incremental", |b| {
        // One long-lived session, as during reduction: after the first call
        // the semantics cache and CNF memo are warm.
        let mut oracle =
            SemanticOracle::new(buggy_compiler(FrontEndBugClass::DefUseDropsParameterWrites));
        b.iter(|| std::hint::black_box(oracle.signatures(&program).len()))
    });
    group.finish();
}

/// End-to-end reduction over the fixed seed set, printed as a table (the
/// reproduction guide quotes these numbers), with the soundness assertion
/// that every minimized program still triggers the original bug.
fn reduction_end_to_end(_c: &mut Criterion) {
    const SEEDS: usize = 8;
    let seeds = trigger_seeds(SEEDS);
    println!();
    println!("end-to-end ddmin reduction over {SEEDS} bug-triggering programs:");
    let mut total_calls = 0usize;
    let mut total_elapsed = std::time::Duration::ZERO;
    for &seed in &seeds {
        let program = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed).generate();
        let mut oracle =
            SemanticOracle::new(buggy_compiler(FrontEndBugClass::DefUseDropsParameterWrites));
        let target = oracle.signatures(&program).remove(0);
        let reducer = Reducer::new(ReducerConfig::default());
        let reduction = reducer
            .reduce(&mut oracle, &program, &target)
            .expect("seed set triggers the bug");
        // Soundness: the minimized program still triggers the same bug.
        assert!(
            oracle.reproduces(&reduction.program, &target),
            "seed {seed}: minimized program lost the bug"
        );
        assert_eq!(
            statement_count(&reduction.program),
            reduction.stats.final_statements
        );
        total_calls += reduction.stats.oracle_calls;
        total_elapsed += reduction.wall_clock;
        println!(
            "  seed {seed:>4}: {:>3} -> {:>2} statements, {:>3} oracle calls, {:?}",
            reduction.stats.initial_statements,
            reduction.stats.final_statements,
            reduction.stats.oracle_calls,
            reduction.wall_clock
        );
    }
    let rate = total_calls as f64 / total_elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    println!("  total: {total_calls} oracle calls in {total_elapsed:?} ({rate:.1} oracle calls/s)");
}

criterion_group!(benches, bench_oracle_rate, reduction_end_to_end);
criterion_main!(benches);
