//! Experiment T2 — reproduces the *shape* of the paper's Table 2 (bug
//! summary per platform and bug type) by running the seeded-bug campaign and
//! printing the same rows.
//!
//! The paper reports bugs *found* in production compilers over 4 months; we
//! report seeded bug classes *detected* by the same three techniques.  See
//! EXPERIMENTS.md for the paper-vs-measured comparison.

use gauntlet_core::{render_detection_matrix, render_table2, run_campaign, CampaignConfig};

fn main() {
    let config = CampaignConfig {
        random_programs_per_bug: 1,
        max_tests: 6,
        check_false_alarms: true,
        ..CampaignConfig::default()
    };
    let start = std::time::Instant::now();
    let report = run_campaign(&config);
    let elapsed = start.elapsed();

    println!("{}", render_table2(&report));
    println!("{}", render_detection_matrix(&report));
    println!(
        "campaign: {} seeded classes, {} random program(s) per class, {:.1}s wall clock",
        report.outcomes.len(),
        config.random_programs_per_bug,
        elapsed.as_secs_f64()
    );
    assert_eq!(
        report.false_alarms, 0,
        "the correct pipeline must stay clean"
    );
    assert!(
        report.outcomes.iter().all(|o| o.detected),
        "every seeded bug class must be detected"
    );
}
