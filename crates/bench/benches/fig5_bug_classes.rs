//! Experiment F5 — the six miscompilation examples of Figure 5 (plus the
//! other documented classes): per-class detection status and the technique
//! that finds each, printed as a table.

use gauntlet_core::{Gauntlet, SeededBug};

fn main() {
    let gauntlet = Gauntlet::default();
    println!(
        "{:<36} {:>8} {:>10} {:>10} {:>24}",
        "Seeded bug class (Figure 5 family)", "Platform", "Area", "Kind", "Detected by"
    );
    let mut all_detected = true;
    for bug in SeededBug::catalogue() {
        let program = bug.trigger_program();
        let reports = bug.detect(&gauntlet, &program);
        let technique = reports
            .first()
            .map(|r| format!("{:?}", r.technique))
            .unwrap_or_else(|| "NOT DETECTED".to_string());
        all_detected &= !reports.is_empty();
        println!(
            "{:<36} {:>8} {:>10} {:>10} {:>24}",
            bug.name(),
            bug.platform().to_string(),
            bug.area().to_string(),
            if bug.is_crash_class() {
                "crash"
            } else {
                "semantic"
            },
            technique
        );
    }
    assert!(all_detected, "every Figure-5-style class must be detected");
}
