//! Experiment §5.2/§6.2 — solver scaling: equivalence-query latency as a
//! function of operand width and expression depth.  The paper argues that
//! generated programs are small enough that formula size never needed
//! optimisation; this bench quantifies where our bit-blasting solver stands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smt::{Solver, Sort, TermManager, TermRef};

/// Builds a pair of structurally different but equivalent expressions over a
/// `width`-bit variable, `depth` operations deep, and returns the
/// equivalence query (UNSAT expected).
fn equivalence_query(width: u32, depth: u32) -> (TermManager, TermRef) {
    let tm = TermManager::new();
    let x = tm.var("x", Sort::BitVec(width));
    let mut a = x.clone();
    let mut b = x.clone();
    for i in 0..depth {
        let k = tm.bv_const(u128::from(i) + 1, width);
        // a := (a + k) ^ k ; b is the same computation written differently.
        a = tm.bv_xor(tm.bv_add(a, k.clone()), k.clone());
        b = tm.bv_xor(k.clone(), tm.bv_add(k, b));
    }
    let query = tm.neq(a, b);
    (tm, query)
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(10);
    for width in [8u32, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("equivalence_width", width),
            &width,
            |b, &w| {
                b.iter(|| {
                    let (_tm, query) = equivalence_query(w, 3);
                    let mut solver = Solver::new();
                    solver.assert(query);
                    assert!(!solver.check().is_sat(), "expressions are equivalent");
                })
            },
        );
    }
    for depth in [1u32, 3, 6] {
        group.bench_with_input(
            BenchmarkId::new("equivalence_depth", depth),
            &depth,
            |b, &d| {
                b.iter(|| {
                    let (_tm, query) = equivalence_query(8, d);
                    let mut solver = Solver::new();
                    solver.assert(query);
                    assert!(!solver.check().is_sat());
                })
            },
        );
    }
    group.finish();

    // Print the scaling series for EXPERIMENTS.md.
    println!("solver statistics for the width sweep (depth 3):");
    for width in [8u32, 16, 32, 48] {
        let (_tm, query) = equivalence_query(width, 3);
        let mut solver = Solver::new();
        solver.assert(query);
        let start = std::time::Instant::now();
        let result = solver.check();
        let stats = solver.stats();
        println!(
            "  width {width:>2}: {:?} in {:>6.1?} ms, {} vars, {} clauses, {} conflicts",
            if result.is_sat() { "SAT" } else { "UNSAT" },
            start.elapsed().as_secs_f64() * 1000.0,
            stats.sat_variables,
            stats.sat_clauses,
            stats.conflicts
        );
    }

    // Incremental chain reuse: a Gauntlet pass chain issues a *sequence* of
    // queries over heavily shared terms.  Compare one long-lived solver
    // (assumption-based checks over a shared hash-consing manager, as
    // `ValidationSession` does) against a fresh solver per query.
    println!();
    println!("incremental chain reuse ({CHAIN} chained queries, width 16, depth 4):");
    let tm = TermManager::new();
    let x = tm.var("x", Sort::BitVec(16));
    const CHAIN: usize = 24;
    // Build a chain e_0, e_1, ..., where e_{i+1} shares e_i as a subterm —
    // the shape translation validation produces across adjacent snapshots.
    let mut chain: Vec<TermRef> = vec![x.clone()];
    for i in 0..CHAIN {
        let k = tm.bv_const(i as u128 + 1, 16);
        let previous = chain.last().expect("chain is non-empty").clone();
        chain.push(tm.bv_xor(tm.bv_add(previous, k.clone()), k));
    }
    let queries: Vec<TermRef> = chain
        .windows(2)
        .map(|w| tm.neq(w[0].clone(), w[1].clone()))
        .collect();

    let start = std::time::Instant::now();
    for query in &queries {
        let mut solver = Solver::new();
        assert!(solver.check_with(std::slice::from_ref(query)).is_sat());
    }
    let fresh_elapsed = start.elapsed();

    let start = std::time::Instant::now();
    let mut solver = Solver::new();
    let mut memo_hits = 0usize;
    for query in &queries {
        assert!(solver.check_with(std::slice::from_ref(query)).is_sat());
        memo_hits += solver.stats().memo_hits;
    }
    let incremental_elapsed = start.elapsed();
    println!("  fresh solver per query: {fresh_elapsed:>10.1?}");
    println!(
        "  one incremental solver: {incremental_elapsed:>10.1?}  ({:.2}x, {memo_hits} memoised subterms)",
        fresh_elapsed.as_secs_f64() / incremental_elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    );
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
