//! Per-pass semantic preservation: every reference pass, run on randomly
//! generated programs, must produce a program that the symbolic equivalence
//! checker proves equal to its input.  This is translation validation turned
//! inwards — it keeps the compiler under test honest so that the campaign's
//! "zero false alarms" claim is meaningful.

use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_symbolic::check_equivalence;
use p4c::Compiler;
use proptest::prelude::*;

proptest! {
    // Each case compiles and symbolically validates a whole program, which
    // involves real SAT solving; keep the number of cases moderate.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The full reference pipeline preserves semantics end to end: the input
    /// program and the fully transformed program are equivalent.
    #[test]
    fn reference_pipeline_preserves_semantics(seed in 0u64..10_000) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
        let program = generator.generate();
        let compiled = Compiler::reference()
            .compile(&program)
            .unwrap_or_else(|e| panic!("seed {seed}: reference compiler failed: {e}"));
        let verdict = check_equivalence(&program, &compiled.program)
            .unwrap_or_else(|e| panic!("seed {seed}: cannot compare: {e}"));
        prop_assert!(
            verdict.is_equal(),
            "seed {seed}: the reference pipeline changed semantics\n{}",
            p4_ir::print_program(&program)
        );
    }

    /// Every individual snapshot transition is equivalence-preserving (the
    /// per-pass granularity the paper's translation validation checks).
    #[test]
    fn every_individual_pass_preserves_semantics(seed in 10_000u64..20_000) {
        let mut generator = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed);
        let program = generator.generate();
        let compiled = Compiler::reference()
            .compile(&program)
            .unwrap_or_else(|e| panic!("seed {seed}: reference compiler failed: {e}"));
        for (before, after) in compiled.pass_pairs() {
            let verdict = check_equivalence(&before.program, &after.program)
                .unwrap_or_else(|e| panic!("seed {seed}, pass {}: {e}", after.pass_name));
            prop_assert!(
                verdict.is_equal(),
                "seed {seed}: pass {} changed semantics\nbefore:\n{}\nafter:\n{}",
                after.pass_name,
                before.printed,
                after.printed
            );
        }
    }
}
