//! Faulty pass variants: the seeded-bug catalogue.
//!
//! The original Gauntlet found 78 previously unknown bugs in production
//! compilers.  A reproduction obviously cannot re-discover bugs in the 2020
//! p4c tree, so instead this module provides *faulty variants* of the
//! reference passes, one per miscompilation class the paper describes in
//! §7.2 and Figure 5.  The evaluation harness swaps a correct pass for a
//! faulty one (via [`crate::Compiler::replace_pass`]) and measures whether
//! Gauntlet's techniques detect the seeded bug — reproducing the *shape* of
//! Tables 2 and 3 rather than their absolute counts.
//!
//! Every variant keeps the name of the pass it replaces so the rest of the
//! pipeline (and translation validation's per-pass attribution) is
//! unaffected.

use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use crate::passes::inline::{InlineBehaviour, InlineFunctions, RemoveActionParameters};
use crate::passes::util::collect_reads;
use p4_ir::visit::{mutate_walk_expr, walk_expr};
use p4_ir::{BinOp, Block, Declaration, Expr, Mutator, Program, Statement, Visitor};

/// The catalogue of front-/mid-end bug classes (back-end bug classes live in
/// the `targets` crate).  Each corresponds to a bug family from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FrontEndBugClass {
    /// Figure 5a: `SimplifyDefUse` drops writes that are live through
    /// `inout` parameters.
    DefUseDropsParameterWrites,
    /// Figure 5b: the type checker crashes trying to infer the width of a
    /// shift of an unsized literal by a non-constant amount.
    TypeInferenceShiftCrash,
    /// Figure 5c: `StrengthReduction` mis-handles slices of constants and
    /// makes the compiler reject a valid program.
    StrengthReductionRejectsSlices,
    /// `StrengthReduction` rewrites `x | ~0` to `x` instead of `~0`.
    StrengthReductionOrIdentity,
    /// `ConstantFolding` clamps overflowing additions instead of wrapping
    /// them at the operand width.
    ConstantFoldingNoWraparound,
    /// Figure 5d: an assignment to a slice is deleted because a later call
    /// is assumed to overwrite the whole variable.
    SliceAssignmentDeleted,
    /// Figure 5e-flavoured unsafe optimisation: a header-field copy is
    /// propagated even though the source field was overwritten in between
    /// (a stale value is used).
    CopyPropagationStaleValue,
    /// Figure 5f: copy-out is skipped when an inlined action exits.
    ExitSkipsCopyOut,
    /// Arguments are evaluated right-to-left instead of left-to-right.
    ArgumentOrderReversed,
    /// `InlineFunctions` crashes on function bodies containing `if`.
    InlineCrashOnConditional,
    /// `Predication` swaps the then/else values.
    PredicationSwapsBranches,
    /// `Predication` applies else-branch assignments unconditionally.
    PredicationUnconditionalElse,
}

impl FrontEndBugClass {
    /// All front-/mid-end bug classes.
    pub fn all() -> Vec<FrontEndBugClass> {
        use FrontEndBugClass::*;
        vec![
            DefUseDropsParameterWrites,
            TypeInferenceShiftCrash,
            StrengthReductionRejectsSlices,
            StrengthReductionOrIdentity,
            ConstantFoldingNoWraparound,
            SliceAssignmentDeleted,
            CopyPropagationStaleValue,
            ExitSkipsCopyOut,
            ArgumentOrderReversed,
            InlineCrashOnConditional,
            PredicationSwapsBranches,
            PredicationUnconditionalElse,
        ]
    }

    /// Whether the seeded defect manifests as a crash/rejection (true) or as
    /// a miscompilation that needs semantic checking (false).
    pub fn is_crash_class(self) -> bool {
        matches!(
            self,
            FrontEndBugClass::TypeInferenceShiftCrash
                | FrontEndBugClass::StrengthReductionRejectsSlices
                | FrontEndBugClass::InlineCrashOnConditional
        )
    }

    /// The compiler area the faulty pass lives in (for the Table 3
    /// reproduction).
    pub fn area(self) -> PassArea {
        match self {
            FrontEndBugClass::PredicationSwapsBranches
            | FrontEndBugClass::PredicationUnconditionalElse
            | FrontEndBugClass::CopyPropagationStaleValue => PassArea::MidEnd,
            _ => PassArea::FrontEnd,
        }
    }

    /// The name of the reference pass this class replaces.
    pub fn replaces(self) -> &'static str {
        match self {
            FrontEndBugClass::DefUseDropsParameterWrites => "SimplifyDefUse",
            FrontEndBugClass::TypeInferenceShiftCrash => "ConstantFolding",
            FrontEndBugClass::StrengthReductionRejectsSlices
            | FrontEndBugClass::StrengthReductionOrIdentity => "StrengthReduction",
            FrontEndBugClass::ConstantFoldingNoWraparound => "ConstantFolding",
            FrontEndBugClass::SliceAssignmentDeleted => "SimplifyDefUse",
            FrontEndBugClass::CopyPropagationStaleValue => "LocalCopyPropagation",
            FrontEndBugClass::ExitSkipsCopyOut | FrontEndBugClass::ArgumentOrderReversed => {
                "RemoveActionParameters"
            }
            FrontEndBugClass::InlineCrashOnConditional => "InlineFunctions",
            FrontEndBugClass::PredicationSwapsBranches
            | FrontEndBugClass::PredicationUnconditionalElse => "Predication",
        }
    }

    /// Builds the faulty pass for this class.
    pub fn faulty_pass(self) -> Box<dyn Pass> {
        match self {
            FrontEndBugClass::DefUseDropsParameterWrites => Box::new(FaultyDefUse),
            FrontEndBugClass::TypeInferenceShiftCrash => Box::new(CrashingTypeInference),
            FrontEndBugClass::StrengthReductionRejectsSlices => {
                Box::new(RejectingStrengthReduction)
            }
            FrontEndBugClass::StrengthReductionOrIdentity => Box::new(WrongOrStrengthReduction),
            FrontEndBugClass::ConstantFoldingNoWraparound => Box::new(NonWrappingConstantFolding),
            FrontEndBugClass::SliceAssignmentDeleted => Box::new(SliceDeletingDefUse),
            FrontEndBugClass::CopyPropagationStaleValue => Box::new(StaleCopyProp),
            FrontEndBugClass::ExitSkipsCopyOut => Box::new(RemoveActionParameters {
                behaviour: InlineBehaviour {
                    copy_out_on_exit: false,
                    ..InlineBehaviour::default()
                },
            }),
            FrontEndBugClass::ArgumentOrderReversed => Box::new(RemoveActionParameters {
                behaviour: InlineBehaviour {
                    left_to_right: false,
                    ..InlineBehaviour::default()
                },
            }),
            FrontEndBugClass::InlineCrashOnConditional => Box::new(CrashingInlineFunctions),
            FrontEndBugClass::PredicationSwapsBranches => Box::new(SwappedPredication),
            FrontEndBugClass::PredicationUnconditionalElse => {
                Box::new(UnconditionalElsePredication)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 5a: def-use analysis drops final writes to inout parameters.
// ---------------------------------------------------------------------------

struct FaultyDefUse;

impl Pass for FaultyDefUse {
    fn name(&self) -> &str {
        "SimplifyDefUse"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        for control in program.controls_mut() {
            // Incorrectly treat *everything* not read later inside this
            // control as dead, including inout parameters (which are live at
            // exit through copy-out).
            let statements = std::mem::take(&mut control.apply.statements);
            let mut kept: Vec<Statement> = Vec::with_capacity(statements.len());
            for (index, stmt) in statements.iter().enumerate() {
                let dead = match stmt {
                    Statement::Assign { lhs, rhs } if !rhs.has_call() => match lhs.lvalue_root() {
                        Some(root) => {
                            let mut later_reads = Vec::new();
                            for later in &statements[index + 1..] {
                                collect_reads(later, &mut later_reads);
                            }
                            !later_reads.contains(&root)
                        }
                        None => false,
                    },
                    _ => false,
                };
                if !dead {
                    kept.push(stmt.clone());
                }
            }
            control.apply.statements = kept;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 5b: type inference crash on `(1 << x) + ...`.
// ---------------------------------------------------------------------------

struct CrashingTypeInference;

struct ShiftFinder {
    found: bool,
}

impl Visitor for ShiftFinder {
    fn visit_expr(&mut self, expr: &Expr) {
        if let Expr::Binary {
            op: BinOp::Shl,
            left,
            right,
        } = expr
        {
            let unsized_left = matches!(**left, Expr::Int { width: None, .. });
            let non_const_right = !matches!(**right, Expr::Int { .. } | Expr::Bool(_));
            if unsized_left && non_const_right {
                self.found = true;
            }
        }
        walk_expr(self, expr);
    }
}

impl Pass for CrashingTypeInference {
    fn name(&self) -> &str {
        "ConstantFolding"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        let mut finder = ShiftFinder { found: false };
        finder.visit_program(program);
        assert!(
            !finder.found,
            "type inference failure: cannot compute width of a shift of an unsized literal"
        );
        // Otherwise behave like the real pass.
        crate::passes::ConstantFolding.run(program)
    }
}

// ---------------------------------------------------------------------------
// Figure 5c: strength reduction rejects valid slices of constants.
// ---------------------------------------------------------------------------

struct RejectingStrengthReduction;

struct ConstSliceFinder {
    found: bool,
}

impl Visitor for ConstSliceFinder {
    fn visit_expr(&mut self, expr: &Expr) {
        if let Expr::Slice { base, .. } = expr {
            // The real bug fired on slices the pass tried to "simplify":
            // slices of literals and slices of casts.
            if matches!(**base, Expr::Int { .. } | Expr::Cast { .. }) {
                self.found = true;
            }
        }
        walk_expr(self, expr);
    }
}

impl Pass for RejectingStrengthReduction {
    fn name(&self) -> &str {
        "StrengthReduction"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        let mut finder = ConstSliceFinder { found: false };
        finder.visit_program(program);
        if finder.found {
            return Err(Diagnostic::new(
                "slice index is negative (internal strength-reduction error on a valid program)",
            ));
        }
        crate::passes::StrengthReduction.run(program)
    }
}

// ---------------------------------------------------------------------------
// StrengthReduction OR-identity bug: x | ~0 → x.
// ---------------------------------------------------------------------------

struct WrongOrStrengthReduction;

struct WrongOrRewriter;

impl Mutator for WrongOrRewriter {
    fn mutate_expr(&mut self, expr: &mut Expr) {
        mutate_walk_expr(self, expr);
        if let Expr::Binary {
            op: BinOp::BitOr,
            left,
            right,
        } = expr
        {
            let all_ones = |e: &Expr| matches!(e, Expr::Int { value, width: Some(w), .. } if *value == p4_ir::max_unsigned(*w));
            if all_ones(right) {
                *expr = (**left).clone();
            } else if all_ones(left) {
                *expr = (**right).clone();
            }
        }
    }
}

impl Pass for WrongOrStrengthReduction {
    fn name(&self) -> &str {
        "StrengthReduction"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        // The defective rewrite fires before the correct identities run, so
        // `x | ~0` collapses to `x` instead of `~0`.
        WrongOrRewriter.mutate_program(program);
        crate::passes::StrengthReduction.run(program)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ConstantFolding without wraparound.
// ---------------------------------------------------------------------------

struct NonWrappingConstantFolding;

struct NonWrappingFolder;

impl Mutator for NonWrappingFolder {
    fn mutate_expr(&mut self, expr: &mut Expr) {
        mutate_walk_expr(self, expr);
        if let Expr::Binary {
            op: BinOp::Add,
            left,
            right,
        } = expr
        {
            if let (
                Expr::Int {
                    value: a,
                    width: Some(w),
                    ..
                },
                Expr::Int {
                    value: b,
                    width: wb,
                    ..
                },
            ) = (&**left, &**right)
            {
                let width = *w;
                if wb.is_none() || *wb == Some(width) {
                    // The faulty fold clamps at the maximum instead of
                    // wrapping modulo 2^width.
                    let value = (a + b).min(p4_ir::max_unsigned(width));
                    *expr = Expr::Int {
                        value,
                        width: Some(width),
                        signed: false,
                    };
                }
            }
        }
    }
}

impl Pass for NonWrappingConstantFolding {
    fn name(&self) -> &str {
        "ConstantFolding"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        NonWrappingFolder.mutate_program(program);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 5d: slice assignment deleted because a later write to the same
// variable is assumed to overwrite it completely.
// ---------------------------------------------------------------------------

struct SliceDeletingDefUse;

impl SliceDeletingDefUse {
    fn prune_block(block: &mut Block) {
        let statements = std::mem::take(&mut block.statements);
        let mut kept = Vec::with_capacity(statements.len());
        for (index, stmt) in statements.iter().enumerate() {
            let dead = match stmt {
                Statement::Assign {
                    lhs: Expr::Slice { base, .. },
                    ..
                } => {
                    let root = base.lvalue_root();
                    statements[index + 1..].iter().any(|later| match later {
                        Statement::Assign { lhs, .. } => lhs.lvalue_root() == root,
                        Statement::Call(call) => {
                            call.args.iter().any(|arg| arg.lvalue_root() == root)
                        }
                        _ => false,
                    })
                }
                _ => false,
            };
            if !dead {
                kept.push(stmt.clone());
            }
        }
        block.statements = kept;
        for stmt in &mut block.statements {
            if let Statement::Block(inner) = stmt {
                Self::prune_block(inner);
            }
        }
    }
}

impl Pass for SliceDeletingDefUse {
    fn name(&self) -> &str {
        "SimplifyDefUse"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        // First do the correct simplification, then the unsound deletion.
        crate::passes::SimplifyDefUse.run(program)?;
        for decl in &mut program.declarations {
            if let Declaration::Control(control) = decl {
                for local in &mut control.locals {
                    if let Declaration::Action(action) = local {
                        Self::prune_block(&mut action.body);
                    }
                }
                Self::prune_block(&mut control.apply);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 5e-flavoured: copy propagation uses a stale header-field value.
// ---------------------------------------------------------------------------

struct StaleCopyProp;

impl Pass for StaleCopyProp {
    fn name(&self) -> &str {
        "LocalCopyPropagation"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        crate::passes::LocalCopyPropagation.run(program)?;
        for decl in &mut program.declarations {
            if let Declaration::Control(control) = decl {
                collapse_member_copies(&mut control.apply);
                for local in &mut control.locals {
                    if let Declaration::Action(action) = local {
                        collapse_member_copies(&mut action.body);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Rewrites `m1 = <lit>; ...; m2 = m1;` into `...; m2 = <lit>;` using the
/// *first* literal ever assigned to `m1` in the block, ignoring any
/// intervening re-assignment of `m1` — so the propagated value can be stale.
fn collapse_member_copies(block: &mut Block) {
    for index in 1..block.statements.len() {
        let Statement::Assign {
            lhs: use_lhs,
            rhs: use_rhs,
        } = &block.statements[index]
        else {
            continue;
        };
        if !matches!(use_rhs, Expr::Member { .. }) {
            continue;
        }
        let source = use_rhs.clone();
        let _ = use_lhs;
        let mut first_literal = None;
        for earlier in &block.statements[..index] {
            if let Statement::Assign {
                lhs,
                rhs: Expr::Int { .. },
            } = earlier
            {
                if *lhs == source && first_literal.is_none() {
                    first_literal = Some(rhs_of(earlier));
                }
            }
        }
        if let Some(literal) = first_literal {
            if let Statement::Assign { rhs, .. } = &mut block.statements[index] {
                *rhs = literal;
            }
        }
    }
    for stmt in &mut block.statements {
        match stmt {
            Statement::Block(inner) => collapse_member_copies(inner),
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Statement::Block(inner) = then_branch.as_mut() {
                    collapse_member_copies(inner);
                }
                if let Some(else_stmt) = else_branch {
                    if let Statement::Block(inner) = else_stmt.as_mut() {
                        collapse_member_copies(inner);
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// InlineFunctions crash on conditionals.
// ---------------------------------------------------------------------------

struct CrashingInlineFunctions;

impl Pass for CrashingInlineFunctions {
    fn name(&self) -> &str {
        "InlineFunctions"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        for decl in &program.declarations {
            if let Declaration::Function(function) = decl {
                for stmt in &function.body.statements {
                    assert!(
                        !matches!(stmt, Statement::If { .. }),
                        "InlineFunctions: unexpected conditional in function body of `{}`",
                        function.name
                    );
                }
            }
        }
        InlineFunctions::default().run(program)
    }
}

// ---------------------------------------------------------------------------
// Predication bugs.
// ---------------------------------------------------------------------------

struct SwappedPredication;

impl Pass for SwappedPredication {
    fn name(&self) -> &str {
        "Predication"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        crate::passes::Predication.run(program)?;
        // Swap every ternary produced in action bodies: c ? a : b  →  c ? b : a.
        struct Swapper;
        impl Mutator for Swapper {
            fn mutate_expr(&mut self, expr: &mut Expr) {
                mutate_walk_expr(self, expr);
                if let Expr::Ternary {
                    then_expr,
                    else_expr,
                    ..
                } = expr
                {
                    std::mem::swap(then_expr, else_expr);
                }
            }
        }
        for decl in &mut program.declarations {
            if let Declaration::Control(control) = decl {
                for local in &mut control.locals {
                    if let Declaration::Action(action) = local {
                        for stmt in &mut action.body.statements {
                            Swapper.mutate_statement(stmt);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

struct UnconditionalElsePredication;

impl Pass for UnconditionalElsePredication {
    fn name(&self) -> &str {
        "Predication"
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        crate::passes::Predication.run(program)?;
        // Degrade `x = c ? x : e` (the else-side predication) into `x = e`.
        struct Degrade;
        impl Mutator for Degrade {
            fn mutate_statement(&mut self, stmt: &mut Statement) {
                p4_ir::visit::mutate_walk_statement(self, stmt);
                if let Statement::Assign { lhs, rhs } = stmt {
                    if let Expr::Ternary {
                        then_expr,
                        else_expr,
                        ..
                    } = rhs
                    {
                        if **then_expr == *lhs {
                            *rhs = (**else_expr).clone();
                        }
                    }
                }
            }
        }
        for decl in &mut program.declarations {
            if let Declaration::Control(control) = decl {
                for local in &mut control.locals {
                    if let Declaration::Action(action) = local {
                        for stmt in &mut action.body.statements {
                            Degrade.mutate_statement(stmt);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn rhs_of(stmt: &Statement) -> Expr {
    match stmt {
        Statement::Assign { rhs, .. } => rhs.clone(),
        _ => unreachable!("rhs_of is only called on assignments"),
    }
}

/// Driver-level defects: corruption applied to the program **before the
/// first snapshot is taken** (see `Compiler::seed_input_corruption`).
///
/// These model the class of bugs per-pass translation validation provably
/// cannot see: the corrupted program becomes snapshot 0, every subsequent
/// pass transforms it faithfully, and the whole chain p₀ ≡ p₁ ≡ … validates
/// clean — the validator never compares against what the user actually
/// wrote.  The paper's §8 names semantics-preserving-transformation
/// (EMI-style) testing as the oracle for exactly this shape; `p4-mutate`'s
/// metamorphic checker detects it by comparing the compiled forms of a seed
/// and a source-equivalent mutant, which the corruption damages differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DriverBugClass {
    /// The driver's IR construction silently drops the final assignment of
    /// the primary (`ingress`) control before snapshotting — a lost write
    /// that is *identical in every per-pass snapshot*.
    SnapshotDropsFinalWrite,
}

impl DriverBugClass {
    /// All driver bug classes.
    pub fn all() -> Vec<DriverBugClass> {
        vec![DriverBugClass::SnapshotDropsFinalWrite]
    }

    /// Applies the corruption in place.  The result stays well-typed, so no
    /// downstream pass can notice anything was lost.
    pub fn corrupt(self, program: &mut Program) {
        match self {
            DriverBugClass::SnapshotDropsFinalWrite => {
                let Some(ingress) = program.package.binding("ingress").map(str::to_string) else {
                    return;
                };
                if let Some(control) = program.control_mut(&ingress) {
                    if matches!(
                        control.apply.statements.last(),
                        Some(Statement::Assign { .. })
                    ) {
                        control.apply.statements.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::Compiler;
    use crate::CompileError;
    use p4_ir::builder;
    use p4_ir::print_program;

    fn seeded_compiler(class: FrontEndBugClass) -> Compiler {
        let mut compiler = Compiler::reference();
        assert!(
            compiler.replace_pass(class.faulty_pass()),
            "pass {} not found",
            class.replaces()
        );
        compiler
    }

    #[test]
    fn every_class_replaces_an_existing_pass() {
        for class in FrontEndBugClass::all() {
            let mut compiler = Compiler::reference();
            assert!(
                compiler.replace_pass(class.faulty_pass()),
                "{class:?} must replace pass {}",
                class.replaces()
            );
        }
    }

    #[test]
    fn defuse_bug_drops_final_header_write() {
        let program = builder::trivial_program();
        let compiler = seeded_compiler(FrontEndBugClass::DefUseDropsParameterWrites);
        let result = compiler.compile(&program).unwrap();
        let text = print_program(&result.program);
        assert!(
            !text.contains("hdr.h.a = 8w1;"),
            "faulty def-use should drop the write:\n{text}"
        );
        // And the correct compiler keeps it.
        let good = Compiler::reference().compile(&program).unwrap();
        assert!(print_program(&good.program).contains("hdr.h.a = 8w1;"));
    }

    #[test]
    fn type_inference_bug_crashes_on_figure5b() {
        use p4_ir::{BinOp, Block, Expr, Statement};
        // hdr.h.a = (bit<8>)((1 << hdr.h.c) + 8w2);
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::binary(BinOp::Shl, Expr::int(1), Expr::dotted(&["hdr", "h", "c"])),
                    Expr::uint(2, 8),
                ),
            )]),
        );
        let compiler = seeded_compiler(FrontEndBugClass::TypeInferenceShiftCrash);
        match compiler.compile(&program) {
            Err(CompileError::Crash { pass, .. }) => assert_eq!(pass, "ConstantFolding"),
            other => panic!("expected a crash, got {other:?}"),
        }
        // The reference compiler accepts the same program.
        assert!(Compiler::reference().compile(&program).is_ok());
    }

    #[test]
    fn strength_reduction_bug_rejects_figure5c() {
        use p4_ir::{Block, Expr, Statement, Type};
        // bool tmp = 1 != 8w2[7:0];  (modelled with a sized slice base)
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::Declare {
                    name: "tmp".into(),
                    ty: Type::Bool,
                    init: Some(Expr::binary(
                        p4_ir::BinOp::Ne,
                        Expr::uint(1, 8),
                        Expr::slice(
                            Expr::cast(Type::bits(8), Expr::dotted(&["hdr", "h", "b"])),
                            7,
                            0,
                        ),
                    )),
                },
                Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::ternary(Expr::path("tmp"), Expr::uint(1, 8), Expr::uint(0, 8)),
                ),
            ]),
        );
        let compiler = seeded_compiler(FrontEndBugClass::StrengthReductionRejectsSlices);
        match compiler.compile(&program) {
            Err(CompileError::Rejected { pass, .. }) => assert_eq!(pass, "StrengthReduction"),
            other => panic!("expected a rejection, got {other:?}"),
        }
        assert!(Compiler::reference().compile(&program).is_ok());
    }

    #[test]
    fn exit_bug_reorders_copy_out() {
        use p4_ir::{ActionDecl, Block, Declaration, Direction, Expr, Param, Statement, Type};
        let action = ActionDecl {
            name: "a".into(),
            params: vec![Param::new(Direction::InOut, "val", Type::bits(16))],
            body: Block::new(vec![
                Statement::assign(Expr::path("val"), Expr::uint(3, 16)),
                Statement::Exit,
            ]),
        };
        let program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![Statement::call(
                vec!["a"],
                vec![Expr::dotted(&["hdr", "eth", "eth_type"])],
            )]),
        );
        let buggy = seeded_compiler(FrontEndBugClass::ExitSkipsCopyOut)
            .compile(&program)
            .unwrap();
        let good = Compiler::reference().compile(&program).unwrap();
        assert_ne!(print_program(&buggy.program), print_program(&good.program));
    }

    #[test]
    fn predication_bugs_change_action_bodies() {
        use p4_ir::{ActionDecl, BinOp, Block, Declaration, Expr, Statement};
        let action = ActionDecl {
            name: "act".into(),
            params: vec![],
            body: Block::new(vec![Statement::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(0, 8),
                ),
                Statement::Block(Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(1, 8),
                )])),
            )]),
        };
        let mk_program = || {
            builder::v1model_program(
                vec![
                    Declaration::Action(p4_ir::builder::no_action()),
                    Declaration::Action(action.clone()),
                    Declaration::Table(p4_ir::TableDecl {
                        name: "t".into(),
                        keys: vec![p4_ir::KeyElement {
                            expr: Expr::dotted(&["hdr", "h", "a"]),
                            match_kind: p4_ir::MatchKind::Exact,
                        }],
                        actions: vec![
                            p4_ir::ActionRef::new("act"),
                            p4_ir::ActionRef::new("NoAction"),
                        ],
                        default_action: p4_ir::ActionRef::new("NoAction"),
                    }),
                ],
                Block::new(vec![Statement::call(vec!["t", "apply"], vec![])]),
            )
        };
        let good = Compiler::reference().compile(&mk_program()).unwrap();
        let swapped = seeded_compiler(FrontEndBugClass::PredicationSwapsBranches)
            .compile(&mk_program())
            .unwrap();
        assert_ne!(
            print_program(&good.program),
            print_program(&swapped.program)
        );
    }
}
