//! Compiler error types.
//!
//! The driver distinguishes the outcomes Gauntlet cares about (paper §2.1):
//! a *crash* (abnormal termination inside a pass — assertion violations in
//! P4C), a *rejection* (a proper diagnostic such as a type error), and a
//! successful compilation whose output may still be semantically wrong
//! (which only translation validation or end-to-end testing can reveal).

use crate::pass::PassArea;
use std::fmt;

/// A compiler diagnostic produced by a pass that rejected the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub message: String,
}

impl Diagnostic {
    pub fn new(message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Errors a compilation run can end with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A pass panicked (assertion violation / segfault analogue): a crash bug
    /// candidate.
    Crash {
        pass: String,
        area: PassArea,
        message: String,
    },
    /// A pass (or the up-front type checker) rejected the program with a
    /// proper error message.  For well-formed generated programs this is
    /// either expected behaviour or an "incorrectly rejects valid program"
    /// bug, depending on the oracle.
    Rejected {
        pass: String,
        diagnostics: Vec<String>,
    },
}

impl CompileError {
    pub fn is_crash(&self) -> bool {
        matches!(self, CompileError::Crash { .. })
    }

    /// The pass the error is attributed to.
    pub fn pass(&self) -> &str {
        match self {
            CompileError::Crash { pass, .. } | CompileError::Rejected { pass, .. } => pass,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Crash {
                pass,
                area,
                message,
            } => {
                write!(f, "compiler crash in {area} pass `{pass}`: {message}")
            }
            CompileError::Rejected { pass, diagnostics } => {
                write!(
                    f,
                    "program rejected by `{pass}`: {}",
                    diagnostics.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_classification() {
        let crash = CompileError::Crash {
            pass: "SimplifyDefUse".into(),
            area: PassArea::FrontEnd,
            message: "assertion failed".into(),
        };
        assert!(crash.is_crash());
        assert_eq!(crash.pass(), "SimplifyDefUse");
        assert!(crash.to_string().contains("SimplifyDefUse"));

        let rejected = CompileError::Rejected {
            pass: "TypeChecking".into(),
            diagnostics: vec!["bad type".into()],
        };
        assert!(!rejected.is_crash());
        assert!(rejected.to_string().contains("bad type"));
    }
}
