//! The nanopass framework: pass trait, pass manager, and compiler driver.
//!
//! P4C is structured as a long sequence of small ("nano") passes that each
//! perform one analysis or transformation (paper §3, §7.3).  Gauntlet relies
//! on two properties of that architecture, which this module reproduces:
//!
//! 1. the compiler can emit the transformed program after every pass
//!    (`p4test`-style snapshots), which translation validation consumes; and
//! 2. passes signal internal errors through assertions, which surface as
//!    crash bugs with the offending pass attached.

use crate::error::{CompileError, Diagnostic};
use p4_ir::{print_program, Program};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which part of the compiler a pass belongs to.  Table 3 of the paper
/// groups detected bugs by exactly these areas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PassArea {
    FrontEnd,
    MidEnd,
    BackEnd,
}

impl std::fmt::Display for PassArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassArea::FrontEnd => write!(f, "front end"),
            PassArea::MidEnd => write!(f, "mid end"),
            PassArea::BackEnd => write!(f, "back end"),
        }
    }
}

/// A compiler pass.
pub trait Pass {
    /// Stable pass name used in diagnostics and bug reports.
    fn name(&self) -> &str;

    /// The compiler area the pass belongs to.
    fn area(&self) -> PassArea {
        PassArea::FrontEnd
    }

    /// Transforms the program in place.  Returning an error models a
    /// *rejected* program (a compiler diagnostic); panicking models an
    /// internal assertion violation, which the driver reports as a crash
    /// bug.
    fn run(&self, program: &mut Program) -> Result<(), Diagnostic>;
}

/// The program snapshot taken after a pass that changed the program.
#[derive(Debug, Clone)]
pub struct PassSnapshot {
    pub pass_name: String,
    pub area: PassArea,
    /// Index of the pass in the pipeline (0 = the input program).
    pub pass_index: usize,
    pub program: Program,
    /// The ToP4-printed form of `program`.
    pub printed: String,
}

/// The result of a successful compilation.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The input program plus one snapshot per pass that modified it.
    pub snapshots: Vec<PassSnapshot>,
    /// The fully transformed program.
    pub program: Program,
    /// Names of passes that ran but did not modify the program.
    pub unchanged_passes: Vec<String>,
    /// Which rewrite rules fired during this compile (see
    /// [`crate::coverage`]).
    pub coverage: crate::coverage::PassCoverage,
}

impl CompileResult {
    /// Consecutive snapshot pairs `(before, after)` for translation
    /// validation.
    pub fn pass_pairs(&self) -> impl Iterator<Item = (&PassSnapshot, &PassSnapshot)> {
        self.snapshots.windows(2).map(|w| (&w[0], &w[1]))
    }
}

/// Options controlling a compiler run.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Whether to capture a snapshot after every modifying pass
    /// (the `p4test --top4` behaviour Gauntlet depends on).
    pub emit_snapshots: bool,
    /// Run the reference type checker on the input before any pass.
    pub type_check_input: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            emit_snapshots: true,
            type_check_input: true,
        }
    }
}

/// A pipeline of passes plus the driver that runs them.
pub struct Compiler {
    passes: Vec<Box<dyn Pass>>,
    options: CompileOptions,
    /// Seeded driver defect: corrupts the program after input type checking
    /// but *before* the first snapshot, making it invisible to per-pass
    /// translation validation (see [`crate::buggy::DriverBugClass`]).
    input_corruption: Option<crate::buggy::DriverBugClass>,
}

impl Default for Compiler {
    /// An empty pipeline, same as [`Compiler::empty`].
    fn default() -> Compiler {
        Compiler::empty()
    }
}

impl Compiler {
    /// An empty compiler with no passes (useful for tests).
    pub fn empty() -> Compiler {
        Compiler {
            passes: Vec::new(),
            options: CompileOptions::default(),
            input_corruption: None,
        }
    }

    /// The reference pipeline: all front-end and mid-end passes in their
    /// default order.
    pub fn reference() -> Compiler {
        let mut compiler = Compiler::empty();
        for pass in crate::passes::default_pipeline() {
            compiler.passes.push(pass);
        }
        compiler
    }

    /// Creates a compiler from an explicit pass list.
    pub fn with_passes(passes: Vec<Box<dyn Pass>>) -> Compiler {
        Compiler {
            passes,
            ..Compiler::empty()
        }
    }

    /// Seeds a driver-level defect: the corruption runs after input type
    /// checking but before snapshot 0 is recorded, so every per-pass
    /// snapshot carries it identically and translation validation stays
    /// silent.  Only the metamorphic oracle (`p4-mutate`) can convict it.
    pub fn seed_input_corruption(&mut self, bug: crate::buggy::DriverBugClass) -> &mut Self {
        self.input_corruption = Some(bug);
        self
    }

    pub fn options_mut(&mut self) -> &mut CompileOptions {
        &mut self.options
    }

    /// Appends a pass to the pipeline.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Replaces the pass with the same name, returning whether a replacement
    /// happened.  Used by the bug-injection framework to swap a correct pass
    /// for a faulty variant.
    pub fn replace_pass(&mut self, pass: Box<dyn Pass>) -> bool {
        for slot in &mut self.passes {
            if slot.name() == pass.name() {
                *slot = pass;
                return true;
            }
        }
        false
    }

    /// Removes a pass by name (Different-Optimization-Levels style testing).
    pub fn remove_pass(&mut self, name: &str) -> bool {
        let before = self.passes.len();
        self.passes.retain(|p| p.name() != name);
        self.passes.len() != before
    }

    /// Pass names in pipeline order.
    pub fn pass_names(&self) -> Vec<String> {
        self.passes.iter().map(|p| p.name().to_string()).collect()
    }

    /// Runs the pipeline on `program`.
    ///
    /// A fresh [`crate::coverage`] sink is threaded through the pass
    /// pipeline: rules fired by the passes land in
    /// [`CompileResult::coverage`], and — because the scope merges outward
    /// on unwind — in any enclosing [`crate::coverage::with_sink`] even
    /// when a pass crashes.
    pub fn compile(&self, program: &Program) -> Result<CompileResult, CompileError> {
        // The span guard records through an unwinding pass crash, mirroring
        // the coverage scope's drop behaviour.
        let _telemetry = gauntlet_telemetry::Span::begin(gauntlet_telemetry::Stage::Compile);
        let scope = crate::coverage::Scope::begin();
        self.compile_inner(program).map(|mut result| {
            result.coverage = scope.finish();
            result
        })
    }

    fn compile_inner(&self, program: &Program) -> Result<CompileResult, CompileError> {
        if self.options.type_check_input {
            let errors = p4_check::check_program(program);
            if !errors.is_empty() {
                return Err(CompileError::Rejected {
                    pass: "TypeChecking".into(),
                    diagnostics: errors.iter().map(|e| e.to_string()).collect(),
                });
            }
        }

        let mut current = program.clone();
        if let Some(bug) = self.input_corruption {
            bug.corrupt(&mut current);
        }
        let mut snapshots = Vec::new();
        let mut unchanged = Vec::new();
        if self.options.emit_snapshots {
            snapshots.push(PassSnapshot {
                pass_name: "<input>".into(),
                area: PassArea::FrontEnd,
                pass_index: 0,
                program: current.clone(),
                printed: print_program(&current),
            });
        }
        let mut last_hash = program_hash(&current);

        for (index, pass) in self.passes.iter().enumerate() {
            gauntlet_telemetry::count_pass(pass.name());
            let mut working = current.clone();
            let outcome =
                catch_unwind(AssertUnwindSafe(|| pass.run(&mut working).map(|_| working)));
            match outcome {
                Err(panic) => {
                    return Err(CompileError::Crash {
                        pass: pass.name().to_string(),
                        area: pass.area(),
                        message: panic_message(panic),
                    });
                }
                Ok(Err(diagnostic)) => {
                    return Err(CompileError::Rejected {
                        pass: pass.name().to_string(),
                        diagnostics: vec![diagnostic.message],
                    });
                }
                Ok(Ok(transformed)) => {
                    // Close the coverage segment for this pass run: rules it
                    // fired become "earlier" rules for pair tracking.  A
                    // crashing pass never reaches this; the scope flushes
                    // its dangling segment on unwind instead.
                    crate::coverage::pass_boundary();
                    current = transformed;
                    let hash = program_hash(&current);
                    if hash != last_hash {
                        last_hash = hash;
                        if self.options.emit_snapshots {
                            snapshots.push(PassSnapshot {
                                pass_name: pass.name().to_string(),
                                area: pass.area(),
                                pass_index: index + 1,
                                program: current.clone(),
                                printed: print_program(&current),
                            });
                        }
                    } else {
                        unchanged.push(pass.name().to_string());
                    }
                }
            }
        }
        Ok(CompileResult {
            snapshots,
            program: current,
            unchanged_passes: unchanged,
            coverage: crate::coverage::PassCoverage::new(),
        })
    }
}

/// Structural hash of a program, used to detect whether a pass changed it
/// (the paper ignores emitted programs whose hash equals the predecessor's,
/// §5.2).
pub fn program_hash(program: &Program) -> u64 {
    let mut hasher = DefaultHasher::new();
    program.hash(&mut hasher);
    hasher.finish()
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = panic.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;

    struct NopPass;
    impl Pass for NopPass {
        fn name(&self) -> &str {
            "Nop"
        }
        fn run(&self, _program: &mut Program) -> Result<(), Diagnostic> {
            Ok(())
        }
    }

    struct RenameControlPass;
    impl Pass for RenameControlPass {
        fn name(&self) -> &str {
            "RenameControl"
        }
        fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
            if let Some(control) = program.control_mut("ingress_impl") {
                control.apply.statements.push(p4_ir::Statement::Empty);
            }
            Ok(())
        }
    }

    struct PanickingPass;
    impl Pass for PanickingPass {
        fn name(&self) -> &str {
            "Panicking"
        }
        fn run(&self, _program: &mut Program) -> Result<(), Diagnostic> {
            panic!("compiler bug: invariant violated");
        }
    }

    #[test]
    fn unchanged_passes_produce_no_snapshots() {
        let mut compiler = Compiler::empty();
        compiler.add_pass(Box::new(NopPass));
        let result = compiler.compile(&builder::trivial_program()).unwrap();
        assert_eq!(result.snapshots.len(), 1); // just the input
        assert_eq!(result.unchanged_passes, vec!["Nop"]);
    }

    #[test]
    fn modifying_passes_are_snapshotted() {
        let mut compiler = Compiler::empty();
        compiler.add_pass(Box::new(RenameControlPass));
        let result = compiler.compile(&builder::trivial_program()).unwrap();
        assert_eq!(result.snapshots.len(), 2);
        assert_eq!(result.snapshots[1].pass_name, "RenameControl");
        assert_eq!(result.pass_pairs().count(), 1);
    }

    #[test]
    fn panics_become_crash_errors() {
        let mut compiler = Compiler::empty();
        compiler.add_pass(Box::new(PanickingPass));
        match compiler.compile(&builder::trivial_program()) {
            Err(CompileError::Crash { pass, message, .. }) => {
                assert_eq!(pass, "Panicking");
                assert!(message.contains("invariant violated"));
            }
            other => panic!("expected a crash, got {other:?}"),
        }
    }

    #[test]
    fn ill_typed_input_is_rejected_before_any_pass() {
        let mut program = builder::trivial_program();
        // Break the program: assign an unknown variable.
        if let Some(control) = program.control_mut("ingress_impl") {
            control.apply.statements.push(p4_ir::Statement::assign(
                p4_ir::Expr::path("ghost"),
                p4_ir::Expr::uint(1, 8),
            ));
        }
        let compiler = Compiler::empty();
        assert!(matches!(
            compiler.compile(&program),
            Err(CompileError::Rejected { pass, .. }) if pass == "TypeChecking"
        ));
    }

    #[test]
    fn replace_and_remove_passes() {
        let mut compiler = Compiler::empty();
        compiler.add_pass(Box::new(NopPass));
        assert!(compiler.replace_pass(Box::new(NopPass)));
        assert!(compiler.remove_pass("Nop"));
        assert!(!compiler.remove_pass("Nop"));
        assert!(!compiler.replace_pass(Box::new(NopPass)));
    }

    /// The driver threads a coverage sink through the pipeline: a compile
    /// of a program with foldable constants reports the fired rule in
    /// `CompileResult::coverage`.
    #[test]
    fn compile_attaches_pass_rule_coverage() {
        use p4_ir::{BinOp, Expr};
        let mut program = builder::trivial_program();
        if let Some(control) = program.control_mut("ingress_impl") {
            control.apply.statements.push(p4_ir::Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(BinOp::Add, Expr::uint(1, 8), Expr::uint(2, 8)),
            ));
        }
        let result = Compiler::reference().compile(&program).unwrap();
        assert!(result.coverage.count("ConstantFolding/fold_arith") >= 1);
    }

    /// The driver marks a pass boundary after every pass run, so rules that
    /// fire in different passes of one compile surface as ordered
    /// interaction pairs in `CompileResult::coverage`.
    #[test]
    fn compile_attaches_cross_pass_pair_coverage() {
        use p4_ir::{BinOp, Expr};
        let mut program = builder::trivial_program();
        if let Some(control) = program.control_mut("ingress_impl") {
            control.apply.statements.push(p4_ir::Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(BinOp::Add, Expr::uint(1, 8), Expr::uint(2, 8)),
            ));
            // `x + 0` with a non-constant operand is out of ConstantFolding's
            // reach but StrengthReduction rewrites it, so the compile records
            // rules in two distinct passes.
            control.apply.statements.push(p4_ir::Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(0, 8),
                ),
            ));
        }
        let result = Compiler::reference().compile(&program).unwrap();
        let passes_hit: std::collections::BTreeSet<String> = result
            .coverage
            .fired_keys()
            .iter()
            .filter_map(|key| key.split_once('/').map(|(pass, _)| pass.to_string()))
            .collect();
        assert!(
            passes_hit.len() >= 2,
            "fixture must exercise at least two passes, hit {passes_hit:?}"
        );
        assert!(
            result.coverage.distinct_pairs() >= 1,
            "rules firing in distinct passes must produce interaction pairs"
        );
        // Every recorded pair is between two individually fired rules.
        for pair in result.coverage.fired_pair_keys() {
            let (first, second) = pair.split_once("->").unwrap();
            assert!(result.coverage.fired(first), "{pair} first member unfired");
            assert!(
                result.coverage.fired(second),
                "{pair} second member unfired"
            );
        }
    }

    /// Rules fired before a pass crashes are still observable through an
    /// enclosing `coverage::with_sink` (the driver's scope merges outward on
    /// unwind).
    #[test]
    fn crash_coverage_merges_into_the_enclosing_sink() {
        use p4_ir::{BinOp, Expr};
        let mut program = builder::trivial_program();
        if let Some(control) = program.control_mut("ingress_impl") {
            control.apply.statements.push(p4_ir::Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(BinOp::Add, Expr::uint(1, 8), Expr::uint(2, 8)),
            ));
        }
        let mut compiler = Compiler::reference();
        compiler.add_pass(Box::new(PanickingPass));
        let (result, coverage) = crate::coverage::with_sink(|| compiler.compile(&program));
        assert!(matches!(result, Err(CompileError::Crash { .. })));
        assert!(coverage.count("ConstantFolding/fold_arith") >= 1);
    }

    /// The seeded driver corruption runs before snapshot 0: the write is
    /// gone from *every* snapshot (so pass-pair validation has nothing to
    /// compare against), yet the compiled output genuinely lost it.
    #[test]
    fn input_corruption_poisons_snapshot_zero() {
        let program = builder::trivial_program();
        let mut compiler = Compiler::reference();
        compiler.seed_input_corruption(crate::buggy::DriverBugClass::SnapshotDropsFinalWrite);
        let corrupted = compiler.compile(&program).unwrap();
        let reference = Compiler::reference().compile(&program).unwrap();
        assert_ne!(
            corrupted.snapshots[0].printed, reference.snapshots[0].printed,
            "corruption must land before the first snapshot"
        );
        assert!(!corrupted.snapshots[0].printed.contains("hdr.h.a = 8w1;"));
        assert!(reference.program != corrupted.program);
    }

    #[test]
    fn program_hash_is_stable_and_sensitive() {
        let a = builder::trivial_program();
        let b = builder::trivial_program();
        assert_eq!(program_hash(&a), program_hash(&b));
        let mut c = builder::trivial_program();
        c.control_mut("ingress_impl")
            .unwrap()
            .apply
            .statements
            .push(p4_ir::Statement::Exit);
        assert_ne!(program_hash(&a), program_hash(&c));
    }
}
