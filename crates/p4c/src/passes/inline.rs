//! Inlining passes: `InlineFunctions` and `RemoveActionParameters`.
//!
//! Both passes eliminate calls by splicing the callee's body into the call
//! site while implementing the copy-in/copy-out calling convention
//! explicitly:
//!
//! * parameters with `in`/`inout` direction become fresh temporaries
//!   initialised from the argument expressions (left to right);
//! * `out` parameters become fresh, uninitialised temporaries;
//! * on normal completion *and* on `exit`, `inout`/`out` temporaries are
//!   copied back into the argument l-values.
//!
//! The `exit` case is exactly the paper's Figure 5f / specification-change
//! story: P4C's `RemoveActionParameters` pass moved an assignment after the
//! `exit`, assuming `exit` skips copy-out; the clarified specification (and
//! this implementation) performs copy-out first.  The faulty variant lives
//! in `crate::buggy`.

use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use crate::passes::util::{contains_return, NameGen, Substitution};
use p4_ir::{
    ActionDecl, Block, ControlDecl, Declaration, Direction, Expr, FunctionDecl, Param, Program,
    Statement, Type,
};
use std::collections::HashMap;

/// Behavioural knobs for the shared inliner, used by the bug-injection
/// framework to recreate the miscompilation classes from the paper.
#[derive(Debug, Clone, Copy)]
pub struct InlineBehaviour {
    /// Perform copy-out before an `exit` inside the inlined body (correct
    /// behaviour).  The Figure 5f bug sets this to `false`.
    pub copy_out_on_exit: bool,
    /// Copy arguments back for `inout`/`out` parameters (correct behaviour).
    /// Disabling models the "incorrect argument evaluation and side effect
    /// ordering" family of bugs.
    pub copy_out_on_return: bool,
    /// Evaluate arguments left to right (correct).  When `false`, arguments
    /// are evaluated right to left, which diverges whenever two arguments
    /// alias or an argument expression has side effects.
    pub left_to_right: bool,
}

impl Default for InlineBehaviour {
    fn default() -> Self {
        InlineBehaviour {
            copy_out_on_exit: true,
            copy_out_on_return: true,
            left_to_right: true,
        }
    }
}

/// `InlineFunctions`: replaces calls to top-level functions by their bodies.
#[derive(Debug, Default)]
pub struct InlineFunctions {
    pub behaviour: InlineBehaviour,
}

impl Pass for InlineFunctions {
    fn name(&self) -> &str {
        "InlineFunctions"
    }

    fn area(&self) -> PassArea {
        PassArea::FrontEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        let functions: HashMap<String, FunctionDecl> = program
            .declarations
            .iter()
            .filter_map(|d| match d {
                Declaration::Function(f) => Some((f.name.clone(), f.clone())),
                _ => None,
            })
            .collect();
        let mut inliner = Inliner::new(self.behaviour, "inl", "InlineFunctions");
        for decl in &mut program.declarations {
            match decl {
                Declaration::Control(control) => {
                    for local in &mut control.locals {
                        if let Declaration::Action(action) = local {
                            inliner.inline_functions_in_block(&mut action.body, &functions);
                        }
                    }
                    inliner.inline_functions_in_block(&mut control.apply, &functions);
                }
                Declaration::Action(action) => {
                    inliner.inline_functions_in_block(&mut action.body, &functions)
                }
                _ => {}
            }
        }
        // Functions are no longer referenced; drop them so back ends that do
        // not understand function calls never see one (the paper reports a
        // crash caused by `InlineFunctions` *not* fully inlining, §7.2).
        program
            .declarations
            .retain(|d| !matches!(d, Declaration::Function(_)));
        Ok(())
    }
}

/// `RemoveActionParameters`: inlines *direct* action invocations from apply
/// blocks, making the copy-in/copy-out explicit.  Actions bound to tables
/// keep their parameters (those are control-plane provided).
#[derive(Debug, Default)]
pub struct RemoveActionParameters {
    pub behaviour: InlineBehaviour,
}

impl Pass for RemoveActionParameters {
    fn name(&self) -> &str {
        "RemoveActionParameters"
    }

    fn area(&self) -> PassArea {
        PassArea::FrontEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        let top_level_actions: HashMap<String, ActionDecl> = program
            .declarations
            .iter()
            .filter_map(|d| match d {
                Declaration::Action(a) => Some((a.name.clone(), a.clone())),
                _ => None,
            })
            .collect();
        let mut inliner = Inliner::new(self.behaviour, "rap", "RemoveActionParameters");
        for decl in &mut program.declarations {
            if let Declaration::Control(control) = decl {
                let mut actions = top_level_actions.clone();
                for local in &control.locals {
                    if let Declaration::Action(a) = local {
                        actions.insert(a.name.clone(), a.clone());
                    }
                }
                // Only actions with parameters and direct (non-table) calls
                // are affected.
                inliner.inline_actions_in_block(&mut control.apply, &actions);
                prune_uncalled_parameterised_actions(control);
            }
        }
        Ok(())
    }
}

/// Removes local actions that take directed parameters and are no longer
/// referenced by any table or call (they were fully inlined).
fn prune_uncalled_parameterised_actions(control: &mut ControlDecl) {
    let mut referenced: Vec<String> = Vec::new();
    for local in &control.locals {
        if let Declaration::Table(table) = local {
            referenced.extend(table.actions.iter().map(|a| a.name.clone()));
            referenced.push(table.default_action.name.clone());
        }
    }
    let mut called: Vec<&str> = Vec::new();
    collect_called_names(&control.apply, &mut called);
    control.locals.retain(|local| match local {
        Declaration::Action(a) => {
            let has_directed_params = a.params.iter().any(|p| p.direction != Direction::None);
            let keep = !has_directed_params
                || referenced.contains(&a.name)
                || called.iter().any(|c| *c == a.name);
            if !keep {
                crate::coverage::record("RemoveActionParameters", "prune_action");
            }
            keep
        }
        _ => true,
    });
}

fn collect_called_names<'a>(block: &'a Block, out: &mut Vec<&'a str>) {
    for stmt in &block.statements {
        collect_called_in_statement(stmt, out);
    }
}

fn collect_called_in_statement<'a>(stmt: &'a Statement, out: &mut Vec<&'a str>) {
    match stmt {
        Statement::Call(call) if call.target.len() == 1 => out.push(&call.target[0]),
        Statement::Block(block) => collect_called_names(block, out),
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_called_in_statement(then_branch, out);
            if let Some(else_stmt) = else_branch {
                collect_called_in_statement(else_stmt, out);
            }
        }
        _ => {}
    }
}

/// The shared inlining engine.
struct Inliner {
    behaviour: InlineBehaviour,
    names: NameGen,
    /// Which pass drives this engine, for coverage attribution.
    pass: &'static str,
}

impl Inliner {
    fn new(behaviour: InlineBehaviour, prefix: &'static str, pass: &'static str) -> Inliner {
        Inliner {
            behaviour,
            names: NameGen::new(prefix),
            pass,
        }
    }

    // ---- function inlining ------------------------------------------------

    fn inline_functions_in_block(
        &mut self,
        block: &mut Block,
        functions: &HashMap<String, FunctionDecl>,
    ) {
        let mut rewritten = Vec::with_capacity(block.statements.len());
        for stmt in block.statements.drain(..) {
            self.inline_functions_in_statement(stmt, functions, &mut rewritten);
        }
        block.statements = rewritten;
    }

    fn inline_functions_in_statement(
        &mut self,
        stmt: Statement,
        functions: &HashMap<String, FunctionDecl>,
        out: &mut Vec<Statement>,
    ) {
        match stmt {
            Statement::Declare {
                name,
                ty,
                init: Some(Expr::Call(call)),
            } if functions.contains_key(&call.target.join(".")) => {
                let function = &functions[&call.target.join(".")];
                let result = self.expand_callable(
                    &function.params,
                    &function.body,
                    Some(&function.return_type),
                    &call.args,
                    out,
                );
                out.push(Statement::Declare {
                    name,
                    ty,
                    init: result.map(Expr::Path),
                });
            }
            Statement::Assign {
                lhs,
                rhs: Expr::Call(call),
            } if functions.contains_key(&call.target.join(".")) => {
                let function = &functions[&call.target.join(".")];
                let result = self.expand_callable(
                    &function.params,
                    &function.body,
                    Some(&function.return_type),
                    &call.args,
                    out,
                );
                if let Some(result) = result {
                    out.push(Statement::Assign {
                        lhs,
                        rhs: Expr::Path(result),
                    });
                }
            }
            Statement::Call(call) if functions.contains_key(&call.target.join(".")) => {
                let function = &functions[&call.target.join(".")];
                self.expand_callable(&function.params, &function.body, None, &call.args, out);
            }
            Statement::Block(mut block) => {
                self.inline_functions_in_block(&mut block, functions);
                out.push(Statement::Block(block));
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut then_stmts = Vec::new();
                self.inline_functions_in_statement(*then_branch, functions, &mut then_stmts);
                let else_branch = else_branch.map(|e| {
                    let mut else_stmts = Vec::new();
                    self.inline_functions_in_statement(*e, functions, &mut else_stmts);
                    Box::new(Statement::Block(Block::new(else_stmts)))
                });
                out.push(Statement::If {
                    cond,
                    then_branch: Box::new(Statement::Block(Block::new(then_stmts))),
                    else_branch,
                });
            }
            other => out.push(other),
        }
    }

    // ---- action inlining ----------------------------------------------------

    fn inline_actions_in_block(
        &mut self,
        block: &mut Block,
        actions: &HashMap<String, ActionDecl>,
    ) {
        let mut rewritten = Vec::with_capacity(block.statements.len());
        for stmt in block.statements.drain(..) {
            self.inline_actions_in_statement(stmt, actions, &mut rewritten);
        }
        block.statements = rewritten;
    }

    fn inline_actions_in_statement(
        &mut self,
        stmt: Statement,
        actions: &HashMap<String, ActionDecl>,
        out: &mut Vec<Statement>,
    ) {
        match stmt {
            Statement::Call(call)
                if call.target.len() == 1
                    && actions.contains_key(&call.target[0])
                    && !actions[&call.target[0]].params.is_empty() =>
            {
                let action = &actions[&call.target[0]];
                self.expand_callable(&action.params, &action.body, None, &call.args, out);
            }
            Statement::Block(mut block) => {
                self.inline_actions_in_block(&mut block, actions);
                out.push(Statement::Block(block));
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut then_stmts = Vec::new();
                self.inline_actions_in_statement(*then_branch, actions, &mut then_stmts);
                let else_branch = else_branch.map(|e| {
                    let mut else_stmts = Vec::new();
                    self.inline_actions_in_statement(*e, actions, &mut else_stmts);
                    Box::new(Statement::Block(Block::new(else_stmts)))
                });
                out.push(Statement::If {
                    cond,
                    then_branch: Box::new(Statement::Block(Block::new(then_stmts))),
                    else_branch,
                });
            }
            other => out.push(other),
        }
    }

    // ---- the core expansion --------------------------------------------------

    /// Expands one call: emits copy-in declarations, the transformed body,
    /// and copy-out assignments into `out`.  Returns the name of the
    /// temporary holding the return value (for non-void callables).
    fn expand_callable(
        &mut self,
        params: &[Param],
        body: &Block,
        return_type: Option<&Type>,
        args: &[Expr],
        out: &mut Vec<Statement>,
    ) -> Option<String> {
        assert_eq!(
            params.len(),
            args.len(),
            "inliner invoked on a call with mismatched arity (type checking should have rejected it)"
        );
        crate::coverage::record(self.pass, "inline_call");

        // 1. Copy-in: fresh temporaries for every parameter.
        let mut substitution_map: HashMap<String, Expr> = HashMap::new();
        let mut copy_out: Vec<Statement> = Vec::new();
        let order: Vec<usize> = if self.behaviour.left_to_right {
            (0..params.len()).collect()
        } else {
            (0..params.len()).rev().collect()
        };
        for index in order {
            let param = &params[index];
            let arg = &args[index];
            let tmp = self.names.fresh(&param.name);
            match param.direction {
                Direction::In | Direction::InOut | Direction::None => {
                    out.push(Statement::Declare {
                        name: tmp.clone(),
                        ty: param.ty.clone(),
                        init: Some(arg.clone()),
                    });
                }
                Direction::Out => {
                    out.push(Statement::Declare {
                        name: tmp.clone(),
                        ty: param.ty.clone(),
                        init: None,
                    });
                }
            }
            if param.direction.copies_out() {
                copy_out.push(Statement::Assign {
                    lhs: arg.clone(),
                    rhs: Expr::Path(tmp.clone()),
                });
            }
            substitution_map.insert(param.name.clone(), Expr::Path(tmp));
        }

        // 2. Rename body-local declarations to avoid capturing caller names.
        let mut body = body.clone();
        self.rename_locals(&mut body, &mut substitution_map);

        // 3. Substitute parameters (and renamed locals) throughout the body.
        let mut substitution = Substitution::new(substitution_map);
        substitution.apply_block(&mut body);

        // 4. Return-value plumbing.
        let result_var = match return_type {
            Some(ty) if *ty != Type::Void => {
                let result = self.names.fresh("retval");
                out.push(Statement::Declare {
                    name: result.clone(),
                    ty: ty.clone(),
                    init: None,
                });
                Some(result)
            }
            _ => None,
        };
        let needs_flag = body_needs_return_flag(&body);
        let flag_var = if needs_flag {
            crate::coverage::record(self.pass, "guarded_return");
            let flag = self.names.fresh("has_returned");
            out.push(Statement::Declare {
                name: flag.clone(),
                ty: Type::Bool,
                init: Some(Expr::Bool(false)),
            });
            Some(flag)
        } else {
            None
        };

        // 5. Transform the body: returns store the value / set the flag,
        //    exits perform copy-out first (when behaving correctly).
        let exit_copy_out = if self.behaviour.copy_out_on_exit {
            copy_out.clone()
        } else {
            Vec::new()
        };
        let transformed = self.transform_body(
            body,
            result_var.as_deref(),
            flag_var.as_deref(),
            &exit_copy_out,
        );
        out.extend(transformed.statements);

        // 6. Copy-out on normal completion.
        if self.behaviour.copy_out_on_return {
            if !copy_out.is_empty() {
                crate::coverage::record(self.pass, "copy_out");
            }
            out.extend(copy_out);
        }
        result_var
    }

    /// Renames every `Declare`/`Constant` defined inside the body to a fresh
    /// name, extending the substitution map.
    fn rename_locals(&mut self, block: &mut Block, map: &mut HashMap<String, Expr>) {
        for stmt in &mut block.statements {
            self.rename_locals_in_statement(stmt, map);
        }
    }

    fn rename_locals_in_statement(
        &mut self,
        stmt: &mut Statement,
        map: &mut HashMap<String, Expr>,
    ) {
        match stmt {
            Statement::Declare { name, .. } | Statement::Constant { name, .. } => {
                let fresh = self.names.fresh(name);
                map.insert(name.clone(), Expr::Path(fresh.clone()));
                *name = fresh;
            }
            Statement::Block(block) => self.rename_locals(block, map),
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                self.rename_locals_in_statement(then_branch, map);
                if let Some(else_stmt) = else_branch {
                    self.rename_locals_in_statement(else_stmt, map);
                }
            }
            _ => {}
        }
    }

    /// Rewrites returns and exits inside an inlined body.
    fn transform_body(
        &mut self,
        block: Block,
        result_var: Option<&str>,
        flag_var: Option<&str>,
        exit_copy_out: &[Statement],
    ) -> Block {
        let mut out = Vec::with_capacity(block.statements.len());
        let mut guarded = false;
        for stmt in block.statements {
            let transformed = self.transform_statement(stmt, result_var, flag_var, exit_copy_out);
            let sets_flag = flag_var.is_some() && contains_return(&transformed);
            if guarded {
                // A previous statement may have returned: guard the rest.
                let flag = flag_var.expect("guarded implies a flag exists");
                out.push(Statement::If {
                    cond: Expr::unary(p4_ir::UnOp::Not, Expr::path(flag)),
                    then_branch: Box::new(Statement::Block(Block::new(vec![
                        self.rewrite_returns(transformed, result_var, flag_var, exit_copy_out)
                    ]))),
                    else_branch: None,
                });
                continue;
            }
            let rewritten = self.rewrite_returns(transformed, result_var, flag_var, exit_copy_out);
            out.push(rewritten);
            if sets_flag {
                guarded = true;
            }
        }
        Block::new(out)
    }

    fn transform_statement(
        &mut self,
        stmt: Statement,
        _result_var: Option<&str>,
        _flag_var: Option<&str>,
        _exit_copy_out: &[Statement],
    ) -> Statement {
        stmt
    }

    /// Replaces `return`/`exit` statements inside `stmt`.
    fn rewrite_returns(
        &mut self,
        stmt: Statement,
        result_var: Option<&str>,
        flag_var: Option<&str>,
        exit_copy_out: &[Statement],
    ) -> Statement {
        match stmt {
            Statement::Return(value) => {
                let mut replacement = Vec::new();
                if let (Some(result), Some(value)) = (result_var, value) {
                    replacement.push(Statement::assign(Expr::path(result), value));
                }
                if let Some(flag) = flag_var {
                    replacement.push(Statement::assign(Expr::path(flag), Expr::Bool(true)));
                }
                Statement::Block(Block::new(replacement))
            }
            Statement::Exit => {
                if !exit_copy_out.is_empty() {
                    crate::coverage::record(self.pass, "exit_copy_out");
                }
                let mut replacement = exit_copy_out.to_vec();
                replacement.push(Statement::Exit);
                Statement::Block(Block::new(replacement))
            }
            Statement::Block(block) => {
                Statement::Block(self.transform_body(block, result_var, flag_var, exit_copy_out))
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => Statement::If {
                cond,
                then_branch: Box::new(self.rewrite_returns(
                    *then_branch,
                    result_var,
                    flag_var,
                    exit_copy_out,
                )),
                else_branch: else_branch.map(|e| {
                    Box::new(self.rewrite_returns(*e, result_var, flag_var, exit_copy_out))
                }),
            },
            other => other,
        }
    }
}

/// A body needs the `has_returned` guard flag when a `return` occurs
/// anywhere other than as the final top-level statement.
fn body_needs_return_flag(body: &Block) -> bool {
    let count = body.statements.len();
    for (index, stmt) in body.statements.iter().enumerate() {
        if contains_return(stmt) {
            let is_final_plain_return = index + 1 == count && matches!(stmt, Statement::Return(_));
            if !is_final_plain_return {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{print_program, BinOp};

    /// The paper's Figure 5a function: `bit<8> test(inout bit<8> x) { return x; }`.
    fn figure5a_function() -> FunctionDecl {
        FunctionDecl {
            name: "test".into(),
            return_type: Type::bits(8),
            params: vec![Param::new(Direction::InOut, "x", Type::bits(8))],
            body: Block::new(vec![Statement::Return(Some(Expr::path("x")))]),
        }
    }

    #[test]
    fn inlines_figure5a_and_preserves_inout_copy_out() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Declare {
                name: "r".into(),
                ty: Type::bits(8),
                init: Some(Expr::call(
                    vec!["test"],
                    vec![Expr::dotted(&["hdr", "h", "a"])],
                )),
            }]),
        );
        program
            .declarations
            .push(Declaration::Function(figure5a_function()));
        InlineFunctions::default().run(&mut program).unwrap();
        let text = print_program(&program);
        // The function is gone, the copy-in / copy-out pattern remains.
        assert!(!text.contains("bit<8> test("));
        assert!(text.contains("bit<8> inl_x_0 = hdr.h.a;"));
        assert!(text.contains("hdr.h.a = inl_x_0;"));
        assert!(text.contains("bit<8> r = inl_retval_1;"));
    }

    #[test]
    fn early_returns_are_guarded() {
        let function = FunctionDecl {
            name: "sel".into(),
            return_type: Type::bits(8),
            params: vec![Param::new(Direction::In, "x", Type::bits(8))],
            body: Block::new(vec![
                Statement::if_then(
                    Expr::binary(BinOp::Eq, Expr::path("x"), Expr::uint(0, 8)),
                    Statement::Block(Block::new(vec![Statement::Return(Some(Expr::uint(7, 8)))])),
                ),
                Statement::Return(Some(Expr::binary(
                    BinOp::Add,
                    Expr::path("x"),
                    Expr::uint(1, 8),
                ))),
            ]),
        };
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Declare {
                name: "r".into(),
                ty: Type::bits(8),
                init: Some(Expr::call(
                    vec!["sel"],
                    vec![Expr::dotted(&["hdr", "h", "a"])],
                )),
            }]),
        );
        program.declarations.push(Declaration::Function(function));
        InlineFunctions::default().run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("has_returned"));
        assert!(text.contains("if (!("));
    }

    #[test]
    fn action_inlining_copies_out_before_exit() {
        // Figure 5f: action a(inout bit<16> val) { val = 3; exit; }
        let action = ActionDecl {
            name: "a".into(),
            params: vec![Param::new(Direction::InOut, "val", Type::bits(16))],
            body: Block::new(vec![
                Statement::assign(Expr::path("val"), Expr::uint(3, 16)),
                Statement::Exit,
            ]),
        };
        let mut program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![Statement::call(
                vec!["a"],
                vec![Expr::dotted(&["hdr", "eth", "eth_type"])],
            )]),
        );
        RemoveActionParameters::default().run(&mut program).unwrap();
        let text = print_program(&program);
        // Copy-out of the inout argument must appear before the exit.
        let copy_out_pos = text
            .find("hdr.eth.eth_type = rap_val_0;")
            .expect("copy-out exists");
        let exit_pos = text.find("exit;").expect("exit preserved");
        assert!(
            copy_out_pos < exit_pos,
            "copy-out must precede exit:\n{text}"
        );
    }

    #[test]
    fn faulty_behaviour_skips_copy_out_on_exit() {
        let action = ActionDecl {
            name: "a".into(),
            params: vec![Param::new(Direction::InOut, "val", Type::bits(16))],
            body: Block::new(vec![
                Statement::assign(Expr::path("val"), Expr::uint(3, 16)),
                Statement::Exit,
            ]),
        };
        let mut program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![Statement::call(
                vec!["a"],
                vec![Expr::dotted(&["hdr", "eth", "eth_type"])],
            )]),
        );
        let pass = RemoveActionParameters {
            behaviour: InlineBehaviour {
                copy_out_on_exit: false,
                ..InlineBehaviour::default()
            },
        };
        pass.run(&mut program).unwrap();
        let text = print_program(&program);
        let copy_out_pos = text
            .find("hdr.eth.eth_type = rap_val_0;")
            .expect("copy-out exists");
        let exit_pos = text.find("exit;").expect("exit preserved");
        assert!(
            exit_pos < copy_out_pos,
            "the buggy variant copies out after exit:\n{text}"
        );
    }

    #[test]
    fn table_bound_actions_keep_their_parameters() {
        let (locals, apply) = builder::figure3_table_control();
        let mut program = builder::v1model_program(locals, apply);
        RemoveActionParameters::default().run(&mut program).unwrap();
        let control = program.control("ingress_impl").unwrap();
        assert!(control
            .locals
            .iter()
            .any(|d| matches!(d, Declaration::Action(a) if a.name == "assign")));
    }

    #[test]
    fn local_declarations_are_renamed_to_avoid_capture() {
        let function = FunctionDecl {
            name: "f".into(),
            return_type: Type::bits(8),
            params: vec![Param::new(Direction::In, "x", Type::bits(8))],
            body: Block::new(vec![
                Statement::Declare {
                    name: "tmp".into(),
                    ty: Type::bits(8),
                    init: Some(Expr::path("x")),
                },
                Statement::Return(Some(Expr::path("tmp"))),
            ]),
        };
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::Declare {
                    name: "tmp".into(),
                    ty: Type::bits(8),
                    init: Some(Expr::uint(9, 8)),
                },
                Statement::Declare {
                    name: "r".into(),
                    ty: Type::bits(8),
                    init: Some(Expr::call(vec!["f"], vec![Expr::path("tmp")])),
                },
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::path("r")),
            ]),
        );
        program.declarations.push(Declaration::Function(function));
        InlineFunctions::default().run(&mut program).unwrap();
        let text = print_program(&program);
        // The function's local `tmp` must have been renamed.
        assert!(text.contains("inl_tmp"));
        assert_eq!(p4_check::check_program(&program), Vec::new());
    }
}
