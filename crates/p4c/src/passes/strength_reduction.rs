//! Strength reduction: replaces expensive operations by cheaper equivalent
//! ones and removes algebraic identities.
//!
//! The paper's Figure 5c bug lives in exactly this pass: P4C's
//! `StrengthReduction` was missing a safety check and computed a negative
//! slice index.  The faulty variant in `crate::buggy` reproduces that shape;
//! this is the correct implementation.

use crate::coverage;
use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use p4_ir::visit::mutate_walk_expr;
use p4_ir::{BinOp, Expr, Mutator, Program, UnOp};

const PASS: &str = "StrengthReduction";

/// Records the fired rule and returns the replacement (every rewrite in
/// this pass funnels through here).
fn fired(rule: &'static str, replacement: Expr) -> Option<Expr> {
    coverage::record(PASS, rule);
    Some(replacement)
}

/// The strength-reduction pass.
#[derive(Debug, Default)]
pub struct StrengthReduction;

impl Pass for StrengthReduction {
    fn name(&self) -> &str {
        "StrengthReduction"
    }

    fn area(&self) -> PassArea {
        PassArea::FrontEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        Reducer.mutate_program(program);
        Ok(())
    }
}

struct Reducer;

fn int_const(expr: &Expr) -> Option<(u128, Option<u32>)> {
    match expr {
        Expr::Int { value, width, .. } => Some((*value, *width)),
        _ => None,
    }
}

fn is_zero(expr: &Expr) -> bool {
    matches!(int_const(expr), Some((0, _)))
}

fn is_one(expr: &Expr) -> bool {
    matches!(int_const(expr), Some((1, _)))
}

fn is_all_ones(expr: &Expr) -> bool {
    matches!(int_const(expr), Some((v, Some(w))) if v == p4_ir::max_unsigned(w))
}

/// Width of an expression when it is statically evident (literals, casts,
/// slices); `None` otherwise.  Strength reduction only needs widths to build
/// replacement literals of the right size.
fn evident_width(expr: &Expr) -> Option<u32> {
    match expr {
        Expr::Int { width, .. } => *width,
        Expr::Cast { ty, .. } => ty.width(),
        Expr::Slice { hi, lo, .. } => Some(hi - lo + 1),
        Expr::Binary { op, left, right } if !op.is_comparison() && !op.is_logical() => {
            evident_width(left).or(evident_width(right))
        }
        Expr::Unary { operand, .. } => evident_width(operand),
        _ => None,
    }
}

impl Reducer {
    fn reduce(&self, expr: &Expr) -> Option<Expr> {
        let Expr::Binary { op, left, right } = expr else {
            return match expr {
                // !!e → e and ~~e → e
                Expr::Unary { op: outer, operand } => match (&**operand, outer) {
                    (
                        Expr::Unary {
                            op: inner,
                            operand: inner_operand,
                        },
                        _,
                    ) if inner == outer && matches!(outer, UnOp::Not | UnOp::BitNot) => {
                        fired("double_negation", (**inner_operand).clone())
                    }
                    _ => None,
                },
                _ => None,
            };
        };
        let width = evident_width(expr);
        match op {
            // x + 0 = x, 0 + x = x, x - 0 = x, x ^ 0 = x, x | 0 = x
            BinOp::Add | BinOp::BitXor | BinOp::BitOr | BinOp::SatAdd if is_zero(left) => {
                fired("add_zero_identity", (**right).clone())
            }
            BinOp::Add
            | BinOp::Sub
            | BinOp::BitXor
            | BinOp::BitOr
            | BinOp::SatAdd
            | BinOp::SatSub
                if is_zero(right) =>
            {
                fired("add_zero_identity", (**left).clone())
            }
            // x & 0 = 0, 0 & x = 0, x * 0 = 0, 0 * x = 0 — only when the
            // result width is statically evident, so the replacement literal
            // keeps the expression's type.
            BinOp::BitAnd | BinOp::Mul if is_zero(right) && width.is_some() => {
                fired("mul_by_zero", Expr::uint(0, width.expect("checked above")))
            }
            BinOp::BitAnd | BinOp::Mul if is_zero(left) && width.is_some() => {
                fired("mul_by_zero", Expr::uint(0, width.expect("checked above")))
            }
            // x * 1 = x, 1 * x = x
            BinOp::Mul if is_one(right) => fired("mul_by_one", (**left).clone()),
            BinOp::Mul if is_one(left) => fired("mul_by_one", (**right).clone()),
            // x * 2^k = x << k (the classic strength reduction)
            BinOp::Mul => {
                if let Some((value, _)) = int_const(right) {
                    if value.is_power_of_two() {
                        let shift = value.trailing_zeros();
                        return fired(
                            "mul_pow2_to_shift",
                            Expr::binary(
                                BinOp::Shl,
                                (**left).clone(),
                                Expr::int(u128::from(shift)),
                            ),
                        );
                    }
                }
                None
            }
            // x & ~0 = x, x | ~0 = ~0
            BinOp::BitAnd if is_all_ones(right) => fired("mask_all_ones", (**left).clone()),
            BinOp::BitAnd if is_all_ones(left) => fired("mask_all_ones", (**right).clone()),
            BinOp::BitOr if is_all_ones(right) => fired("mask_all_ones", (**right).clone()),
            BinOp::BitOr if is_all_ones(left) => fired("mask_all_ones", (**left).clone()),
            // x << 0 = x, x >> 0 = x
            BinOp::Shl | BinOp::Shr if is_zero(right) => fired("shift_by_zero", (**left).clone()),
            // Shifts by a constant amount ≥ width produce zero.  This is the
            // place where the missing safety check in P4C produced Figure 5c;
            // the width must be known before rewriting.
            BinOp::Shl | BinOp::Shr => {
                let (amount, _) = int_const(right)?;
                let w = width?;
                if amount >= u128::from(w) {
                    fired("oversized_shift_to_zero", Expr::uint(0, w))
                } else {
                    None
                }
            }
            // Boolean identities.
            BinOp::And => match (&**left, &**right) {
                (Expr::Bool(true), other) | (other, Expr::Bool(true)) => {
                    fired("bool_identity", other.clone())
                }
                (Expr::Bool(false), _) | (_, Expr::Bool(false)) => {
                    fired("bool_identity", Expr::Bool(false))
                }
                _ => None,
            },
            BinOp::Or => match (&**left, &**right) {
                (Expr::Bool(false), other) | (other, Expr::Bool(false)) => {
                    fired("bool_identity", other.clone())
                }
                (Expr::Bool(true), _) | (_, Expr::Bool(true)) => {
                    fired("bool_identity", Expr::Bool(true))
                }
                _ => None,
            },
            _ => None,
        }
    }
}

impl Mutator for Reducer {
    fn mutate_expr(&mut self, expr: &mut Expr) {
        mutate_walk_expr(self, expr);
        if let Some(reduced) = self.reduce(expr) {
            *expr = reduced;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{print_program, Block, Statement};

    fn reduce_ingress(rhs: Expr) -> String {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                rhs,
            )]),
        );
        StrengthReduction.run(&mut program).unwrap();
        print_program(&program)
    }

    #[test]
    fn removes_additive_identity() {
        let text = reduce_ingress(Expr::binary(
            BinOp::Add,
            Expr::dotted(&["hdr", "h", "b"]),
            Expr::uint(0, 8),
        ));
        assert!(text.contains("hdr.h.a = hdr.h.b;"));
    }

    #[test]
    fn multiplication_by_power_of_two_becomes_shift() {
        let text = reduce_ingress(Expr::binary(
            BinOp::Mul,
            Expr::dotted(&["hdr", "h", "b"]),
            Expr::uint(4, 8),
        ));
        assert!(text.contains("(hdr.h.b << 2)"));
    }

    #[test]
    fn multiplication_by_zero_and_one() {
        let by_zero = reduce_ingress(Expr::binary(
            BinOp::Mul,
            Expr::dotted(&["hdr", "h", "b"]),
            Expr::uint(0, 8),
        ));
        assert!(by_zero.contains("hdr.h.a = 8w0;"));
        let by_one = reduce_ingress(Expr::binary(
            BinOp::Mul,
            Expr::dotted(&["hdr", "h", "b"]),
            Expr::uint(1, 8),
        ));
        assert!(by_one.contains("hdr.h.a = hdr.h.b;"));
    }

    #[test]
    fn oversized_constant_shift_becomes_zero() {
        let text = reduce_ingress(Expr::binary(
            BinOp::Shl,
            Expr::dotted(&["hdr", "h", "b"]),
            Expr::uint(9, 8),
        ));
        // hdr.h.b is bit<8>, but strength reduction cannot see that width
        // from the expression alone, so it must leave the shift in place
        // rather than guess (the missing-check bug would rewrite it).
        assert!(text.contains("<< 8w9") || text.contains("hdr.h.a = 8w0;"));
    }

    #[test]
    fn oversized_shift_with_evident_width_is_zeroed() {
        let text = reduce_ingress(Expr::binary(
            BinOp::Shl,
            Expr::cast(p4_ir::Type::bits(8), Expr::dotted(&["hdr", "h", "b"])),
            Expr::uint(9, 8),
        ));
        assert!(text.contains("hdr.h.a = 8w0;"));
    }

    #[test]
    fn boolean_identities() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_then(
                Expr::binary(
                    BinOp::And,
                    Expr::Bool(true),
                    Expr::binary(
                        BinOp::Eq,
                        Expr::dotted(&["hdr", "h", "a"]),
                        Expr::uint(1, 8),
                    ),
                ),
                Statement::Block(Block::new(vec![Statement::Exit])),
            )]),
        );
        StrengthReduction.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("if ((hdr.h.a == 8w1)) {"));
    }

    #[test]
    fn double_negation_is_removed() {
        let text = reduce_ingress(Expr::unary(
            UnOp::BitNot,
            Expr::unary(UnOp::BitNot, Expr::dotted(&["hdr", "h", "b"])),
        ));
        assert!(text.contains("hdr.h.a = hdr.h.b;"));
    }
}
