//! `FlattenBlocks`: splices nested blocks that declare nothing into their
//! parent and drops empty statements.  Purely cosmetic for semantics, but it
//! keeps the emitted intermediate programs small and is the kind of
//! late-stage cleanup pass where invalid-transformation bugs hide (a spliced
//! block that *did* declare something changes scoping).

use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use p4_ir::{Block, Declaration, Program, Statement};

/// The block-flattening pass.
#[derive(Debug, Default)]
pub struct FlattenBlocks;

impl Pass for FlattenBlocks {
    fn name(&self) -> &str {
        "FlattenBlocks"
    }

    fn area(&self) -> PassArea {
        PassArea::MidEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        for decl in &mut program.declarations {
            match decl {
                Declaration::Control(control) => {
                    for local in &mut control.locals {
                        if let Declaration::Action(action) = local {
                            flatten_block(&mut action.body);
                        }
                    }
                    flatten_block(&mut control.apply);
                }
                Declaration::Action(action) => flatten_block(&mut action.body),
                Declaration::Function(function) => flatten_block(&mut function.body),
                Declaration::Parser(parser) => {
                    for state in &mut parser.states {
                        let mut block = Block::new(std::mem::take(&mut state.statements));
                        flatten_block(&mut block);
                        state.statements = block.statements;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// True if splicing the block into its parent cannot change name resolution:
/// it declares nothing at its own top level.
fn safe_to_splice(block: &Block) -> bool {
    !block
        .statements
        .iter()
        .any(|s| matches!(s, Statement::Declare { .. } | Statement::Constant { .. }))
}

fn flatten_block(block: &mut Block) {
    let mut rewritten = Vec::with_capacity(block.statements.len());
    for stmt in block.statements.drain(..) {
        flatten_statement(stmt, &mut rewritten);
    }
    block.statements = rewritten;
}

fn flatten_statement(stmt: Statement, out: &mut Vec<Statement>) {
    match stmt {
        Statement::Empty => {
            crate::coverage::record("FlattenBlocks", "drop_empty_statement");
        }
        Statement::Block(mut inner) => {
            flatten_block(&mut inner);
            if safe_to_splice(&inner) {
                crate::coverage::record("FlattenBlocks", "splice_block");
                out.extend(inner.statements);
            } else {
                out.push(Statement::Block(inner));
            }
        }
        Statement::If {
            cond,
            mut then_branch,
            mut else_branch,
        } => {
            if let Statement::Block(inner) = then_branch.as_mut() {
                flatten_block(inner);
            }
            if let Some(else_stmt) = else_branch.as_mut() {
                if let Statement::Block(inner) = else_stmt.as_mut() {
                    flatten_block(inner);
                    // `else {}` is dropped entirely.
                    if inner.statements.is_empty() {
                        crate::coverage::record("FlattenBlocks", "drop_empty_else");
                        else_branch = None;
                    }
                }
            }
            out.push(Statement::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{print_program, Expr, Type};

    #[test]
    fn splices_declaration_free_blocks() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Block(Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Empty,
                Statement::Block(Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(2, 8),
                )])),
            ]))]),
        );
        FlattenBlocks.run(&mut program).unwrap();
        let control = program.control("ingress_impl").unwrap();
        assert_eq!(control.apply.statements.len(), 2);
        assert!(control
            .apply
            .statements
            .iter()
            .all(|s| matches!(s, Statement::Assign { .. })));
    }

    #[test]
    fn keeps_blocks_with_declarations() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Block(Block::new(vec![
                Statement::Declare {
                    name: "x".into(),
                    ty: Type::bits(8),
                    init: Some(Expr::uint(1, 8)),
                },
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::path("x")),
            ]))]),
        );
        FlattenBlocks.run(&mut program).unwrap();
        let control = program.control("ingress_impl").unwrap();
        assert_eq!(control.apply.statements.len(), 1);
        assert!(matches!(control.apply.statements[0], Statement::Block(_)));
    }

    #[test]
    fn drops_empty_else_branches_and_empty_statements() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::Empty,
                Statement::if_else(
                    Expr::Bool(true),
                    Statement::Block(Block::new(vec![Statement::assign(
                        Expr::dotted(&["hdr", "h", "a"]),
                        Expr::uint(1, 8),
                    )])),
                    Statement::Block(Block::empty()),
                ),
            ]),
        );
        FlattenBlocks.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(!text.contains("else"));
        let control = program.control("ingress_impl").unwrap();
        assert_eq!(control.apply.statements.len(), 1);
    }
}
