//! `SimplifyDefUse`: removes definitions that are never used.
//!
//! The correct pass must treat `inout`/`out` control parameters as live-out:
//! the paper's Figure 5a bug was exactly this pass clearing variable
//! definitions in the caller scope because of a `return` statement, even
//! though `inout` parameters continue to exist (§7.2, "Snowball effects").
//! The conservative rule implemented here only deletes assignments to, and
//! declarations of, *local* variables that are never read anywhere in the
//! enclosing control or callable.

use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use crate::passes::util::collect_reads;
use p4_ir::{Block, ControlDecl, Declaration, Expr, Program, Statement};
use std::collections::HashSet;

/// The dead-store / dead-declaration elimination pass.
#[derive(Debug, Default)]
pub struct SimplifyDefUse;

impl Pass for SimplifyDefUse {
    fn name(&self) -> &str {
        "SimplifyDefUse"
    }

    fn area(&self) -> PassArea {
        PassArea::FrontEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        for decl in &mut program.declarations {
            match decl {
                Declaration::Control(control) => simplify_control(control),
                Declaration::Action(action) => simplify_body(&mut action.body, &[]),
                Declaration::Function(function) => simplify_body(&mut function.body, &[]),
                _ => {}
            }
        }
        Ok(())
    }
}

fn simplify_control(control: &mut ControlDecl) {
    // Reads contributed by table keys keep the variables they mention alive.
    let mut extra_reads: Vec<String> = Vec::new();
    for local in &control.locals {
        if let Declaration::Table(table) = local {
            for key in &table.keys {
                let mut paths = Vec::new();
                key.expr.collect_paths(&mut paths);
                extra_reads.extend(paths.iter().map(|s| s.to_string()));
            }
            for action_ref in table.actions.iter().chain([&table.default_action]) {
                for arg in &action_ref.args {
                    let mut paths = Vec::new();
                    arg.collect_paths(&mut paths);
                    extra_reads.extend(paths.iter().map(|s| s.to_string()));
                }
            }
        }
    }
    for local in &mut control.locals {
        if let Declaration::Action(action) = local {
            simplify_body(&mut action.body, &extra_reads);
        }
    }
    simplify_body(&mut control.apply, &extra_reads);

    // Remove local variable declarations (in the control's declaration list)
    // that are never referenced anywhere.
    let mut referenced: HashSet<String> = extra_reads.iter().cloned().collect();
    for stmt in &control.apply.statements {
        let mut reads = Vec::new();
        collect_reads(stmt, &mut reads);
        referenced.extend(reads.iter().map(|s| s.to_string()));
        collect_writes(stmt, &mut referenced);
    }
    for local in &control.locals {
        if let Declaration::Action(action) = local {
            for stmt in &action.body.statements {
                let mut reads = Vec::new();
                collect_reads(stmt, &mut reads);
                referenced.extend(reads.iter().map(|s| s.to_string()));
                collect_writes(stmt, &mut referenced);
            }
        }
    }
    control.locals.retain(|local| match local {
        Declaration::Variable { name, .. } => {
            let keep = referenced.contains(name);
            if !keep {
                crate::coverage::record("SimplifyDefUse", "drop_control_var");
            }
            keep
        }
        _ => true,
    });
}

/// Collects the root names of assignment targets (so that a variable that is
/// only ever written is still recognised as "mentioned" when deciding
/// whether to drop its declaration — dropping the declaration but keeping a
/// write would produce an invalid program).
fn collect_writes(stmt: &Statement, out: &mut HashSet<String>) {
    match stmt {
        Statement::Assign { lhs, .. } => {
            if let Some(root) = lhs.lvalue_root() {
                out.insert(root.to_string());
            }
        }
        Statement::Block(block) => {
            for s in &block.statements {
                collect_writes(s, out);
            }
        }
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_writes(then_branch, out);
            if let Some(else_stmt) = else_branch {
                collect_writes(else_stmt, out);
            }
        }
        _ => {}
    }
}

/// Removes dead stores to block-local variables inside one callable body.
/// `extra_reads` lists names considered live for reasons outside the body
/// (table keys, action arguments bound by tables).
fn simplify_body(body: &mut Block, extra_reads: &[String]) {
    // Names declared locally in this body (at any depth).  Only these may
    // ever be considered dead; parameters and control-level names are
    // always preserved.
    let mut local_names = HashSet::new();
    collect_local_declarations(body, &mut local_names);

    // Every name read anywhere in the body.
    let mut reads: Vec<&str> = Vec::new();
    for stmt in &body.statements {
        collect_reads(stmt, &mut reads);
    }
    let read_set: HashSet<String> = reads
        .iter()
        .map(|s| s.to_string())
        .chain(extra_reads.iter().cloned())
        .collect();

    remove_dead_stores(body, &local_names, &read_set);
}

fn collect_local_declarations(block: &Block, out: &mut HashSet<String>) {
    for stmt in &block.statements {
        collect_local_declarations_in_statement(stmt, out);
    }
}

fn collect_local_declarations_in_statement(stmt: &Statement, out: &mut HashSet<String>) {
    match stmt {
        Statement::Declare { name, .. } | Statement::Constant { name, .. } => {
            out.insert(name.clone());
        }
        Statement::Block(block) => collect_local_declarations(block, out),
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_local_declarations_in_statement(then_branch, out);
            if let Some(else_stmt) = else_branch {
                collect_local_declarations_in_statement(else_stmt, out);
            }
        }
        _ => {}
    }
}

fn remove_dead_stores(block: &mut Block, locals: &HashSet<String>, reads: &HashSet<String>) {
    block.statements.retain(|stmt| {
        if !is_dead(stmt, locals, reads) {
            return true;
        }
        match stmt {
            Statement::Assign { .. } => crate::coverage::record("SimplifyDefUse", "dead_store"),
            Statement::Declare { .. } | Statement::Constant { .. } => {
                crate::coverage::record("SimplifyDefUse", "dead_declare")
            }
            _ => {}
        }
        false
    });
    for stmt in &mut block.statements {
        match stmt {
            Statement::Block(inner) => remove_dead_stores(inner, locals, reads),
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Statement::Block(inner) = then_branch.as_mut() {
                    remove_dead_stores(inner, locals, reads);
                }
                if let Some(else_stmt) = else_branch {
                    if let Statement::Block(inner) = else_stmt.as_mut() {
                        remove_dead_stores(inner, locals, reads);
                    }
                }
            }
            _ => {}
        }
    }
}

/// A statement is dead when it only defines a local variable that is never
/// read and the defining expression has no side effects (no calls).
fn is_dead(stmt: &Statement, locals: &HashSet<String>, reads: &HashSet<String>) -> bool {
    match stmt {
        Statement::Assign { lhs, rhs } => match lhs.lvalue_root() {
            Some(root) => {
                locals.contains(root)
                    && !reads.contains(root)
                    && !rhs.has_call()
                    // Writing through a slice reads the old value implicitly,
                    // but if the variable is never read the whole store is
                    // still dead.
                    && matches!(lhs, Expr::Path(_) | Expr::Slice { .. } | Expr::Member { .. })
            }
            None => false,
        },
        Statement::Declare { name, init, .. } => {
            locals.contains(name)
                && !reads.contains(name)
                && !init.as_ref().is_some_and(Expr::has_call)
        }
        Statement::Constant { name, .. } => locals.contains(name) && !reads.contains(name),
        Statement::Empty => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{print_program, Type};

    #[test]
    fn removes_unread_locals_and_their_stores() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::Declare {
                    name: "dead".into(),
                    ty: Type::bits(8),
                    init: Some(Expr::uint(1, 8)),
                },
                Statement::assign(Expr::path("dead"), Expr::uint(2, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(3, 8)),
            ]),
        );
        SimplifyDefUse.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(!text.contains("dead"));
        assert!(text.contains("hdr.h.a = 8w3;"));
    }

    #[test]
    fn keeps_locals_that_feed_parameters_or_headers() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::Declare {
                    name: "live".into(),
                    ty: Type::bits(8),
                    init: Some(Expr::uint(1, 8)),
                },
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::path("live")),
            ]),
        );
        SimplifyDefUse.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("bit<8> live = 8w1;"));
    }

    #[test]
    fn never_removes_writes_to_inout_parameters() {
        // Figure 5a's lesson: hdr is an inout parameter; writes to it are
        // always live even when nothing in this control reads them.
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(1, 8),
            )]),
        );
        SimplifyDefUse.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("hdr.h.a = 8w1;"));
    }

    #[test]
    fn table_key_references_keep_variables_alive() {
        use p4_ir::{ActionRef, KeyElement, MatchKind, TableDecl};
        let table = TableDecl {
            name: "t".into(),
            keys: vec![KeyElement {
                expr: Expr::path("key_var"),
                match_kind: MatchKind::Exact,
            }],
            actions: vec![ActionRef::new("NoAction")],
            default_action: ActionRef::new("NoAction"),
        };
        let mut program = builder::v1model_program(
            vec![
                Declaration::Variable {
                    name: "key_var".into(),
                    ty: Type::bits(8),
                    init: Some(Expr::uint(0, 8)),
                },
                Declaration::Table(table),
            ],
            Block::new(vec![
                Statement::assign(Expr::path("key_var"), Expr::dotted(&["hdr", "h", "a"])),
                Statement::call(vec!["t", "apply"], vec![]),
            ]),
        );
        SimplifyDefUse.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("key_var = hdr.h.a;"));
        assert!(text.contains("bit<8> key_var"));
    }

    #[test]
    fn removes_unreferenced_control_level_variables() {
        let mut program = builder::v1model_program(
            vec![Declaration::Variable {
                name: "unused".into(),
                ty: Type::bits(8),
                init: None,
            }],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(1, 8),
            )]),
        );
        SimplifyDefUse.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(!text.contains("unused"));
    }

    #[test]
    fn declarations_with_side_effecting_initializers_survive() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Declare {
                name: "unused".into(),
                ty: Type::bits(8),
                init: Some(Expr::call(vec!["f"], vec![])),
            }]),
        );
        // Type checking would reject the unknown function; run the pass
        // directly on the IR to check the conservative behaviour.
        SimplifyDefUse.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("unused"));
    }
}
