//! `LocalCopyPropagation`: within straight-line statement sequences,
//! replaces reads of a variable by the value it was most recently assigned,
//! when that value is a simple path or literal and nothing in between could
//! have changed either side of the copy.

use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use crate::passes::util::Substitution;
use p4_ir::{Block, Declaration, Expr, Program, Statement};
use std::collections::HashMap;

/// The local copy-propagation pass.
#[derive(Debug, Default)]
pub struct LocalCopyPropagation;

impl Pass for LocalCopyPropagation {
    fn name(&self) -> &str {
        "LocalCopyPropagation"
    }

    fn area(&self) -> PassArea {
        PassArea::MidEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        for decl in &mut program.declarations {
            match decl {
                Declaration::Control(control) => {
                    for local in &mut control.locals {
                        if let Declaration::Action(action) = local {
                            propagate_block(&mut action.body);
                        }
                    }
                    propagate_block(&mut control.apply);
                }
                Declaration::Action(action) => propagate_block(&mut action.body),
                Declaration::Function(function) => propagate_block(&mut function.body),
                _ => {}
            }
        }
        Ok(())
    }
}

/// A value that is safe to propagate: a literal, a plain variable, or a pure
/// member chain (`hdr.h.a`).  Member chains are safe because the copy map is
/// invalidated whenever anything rooted at the same variable is written and
/// cleared across calls and branches.
fn propagatable(expr: &Expr) -> bool {
    match expr {
        Expr::Int { width: Some(_), .. } | Expr::Bool(_) => true,
        Expr::Path(_) | Expr::Member { .. } => expr.is_lvalue(),
        _ => false,
    }
}

fn propagate_block(block: &mut Block) {
    // copies: variable name → replacement expression, valid at the current
    // point in the straight-line sequence.
    let mut copies: HashMap<String, Expr> = HashMap::new();
    for stmt in &mut block.statements {
        match stmt {
            Statement::Assign { lhs, rhs } => {
                substitute(rhs, &copies);
                // Kill copies invalidated by this write, then record the new
                // copy if applicable.  Copies are only recorded for whole
                // plain variables; partial (slice/member) writes just
                // invalidate.
                if let Some(root) = lhs.lvalue_root().map(str::to_owned) {
                    invalidate(&mut copies, &root);
                    if let Expr::Path(name) = lhs {
                        if propagatable(rhs) && rhs.lvalue_root() != Some(name.as_str()) {
                            copies.insert(name.clone(), rhs.clone());
                        }
                    }
                }
            }
            Statement::Declare { name, init, .. } => {
                if let Some(init) = init {
                    substitute(init, &copies);
                    invalidate(&mut copies, name);
                    if propagatable(init) {
                        copies.insert(name.clone(), init.clone());
                    }
                } else {
                    invalidate(&mut copies, name);
                }
            }
            Statement::Constant { name, value, .. } => {
                substitute(value, &copies);
                invalidate(&mut copies, name);
                if propagatable(value) {
                    copies.insert(name.clone(), value.clone());
                }
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                substitute(cond, &copies);
                // Branches get their own (nested) propagation; the copy map
                // is conservatively cleared afterwards because either branch
                // may have written anything.
                if let Statement::Block(inner) = then_branch.as_mut() {
                    propagate_block(inner);
                }
                if let Some(else_stmt) = else_branch {
                    if let Statement::Block(inner) = else_stmt.as_mut() {
                        propagate_block(inner);
                    }
                }
                copies.clear();
            }
            Statement::Block(inner) => {
                propagate_block(inner);
                copies.clear();
            }
            Statement::Call(call) => {
                for arg in &mut call.args {
                    substitute(arg, &copies);
                }
                // A call may modify any of its by-reference arguments and,
                // for table applications, arbitrary state: drop all copies.
                copies.clear();
            }
            Statement::Return(Some(expr)) => substitute(expr, &copies),
            Statement::Exit | Statement::Return(None) | Statement::Empty => {}
        }
    }
}

fn substitute(expr: &mut Expr, copies: &HashMap<String, Expr>) {
    if copies.is_empty() {
        return;
    }
    let mut substitution = Substitution::new(copies.clone());
    substitution.apply_expr(expr);
    if substitution.replaced() > 0 {
        crate::coverage::record("LocalCopyPropagation", "propagate");
    }
}

/// Removes every copy that mentions `name` on either side.
fn invalidate(copies: &mut HashMap<String, Expr>, name: &str) {
    copies.retain(|key, value| {
        if key == name {
            return false;
        }
        let mut paths = Vec::new();
        value.collect_paths(&mut paths);
        !paths.contains(&name)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{print_program, BinOp, Type};

    fn run_on(statements: Vec<Statement>) -> String {
        let mut program = builder::v1model_program(vec![], Block::new(statements));
        LocalCopyPropagation.run(&mut program).unwrap();
        print_program(&program)
    }

    #[test]
    fn propagates_simple_copies() {
        let text = run_on(vec![
            Statement::Declare {
                name: "x".into(),
                ty: Type::bits(8),
                init: Some(Expr::dotted(&["hdr", "h", "a"])),
            },
            Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::path("x")),
        ]);
        assert!(text.contains("hdr.h.b = hdr.h.a;"));
    }

    #[test]
    fn does_not_propagate_past_redefinition_of_source() {
        let text = run_on(vec![
            Statement::Declare {
                name: "x".into(),
                ty: Type::bits(8),
                init: Some(Expr::dotted(&["hdr", "h", "a"])),
            },
            Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(0, 8)),
            Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::path("x")),
        ]);
        // hdr.h.a changed between the copy and the use: x must not be
        // replaced by hdr.h.a.
        assert!(text.contains("hdr.h.b = x;"));
    }

    #[test]
    fn does_not_propagate_across_calls() {
        let (locals, _) = builder::figure3_table_control();
        let mut program = builder::v1model_program(
            locals,
            Block::new(vec![
                Statement::Declare {
                    name: "x".into(),
                    ty: Type::bits(8),
                    init: Some(Expr::dotted(&["hdr", "h", "a"])),
                },
                Statement::call(vec!["t", "apply"], vec![]),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::path("x")),
            ]),
        );
        LocalCopyPropagation.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("hdr.h.b = x;"));
    }

    #[test]
    fn propagates_literals_into_expressions() {
        let text = run_on(vec![
            Statement::Declare {
                name: "k".into(),
                ty: Type::bits(8),
                init: Some(Expr::uint(3, 8)),
            },
            Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::path("k"),
                    Expr::dotted(&["hdr", "h", "b"]),
                ),
            ),
        ]);
        assert!(text.contains("hdr.h.a = (8w3 + hdr.h.b);"));
    }

    #[test]
    fn clears_copies_after_branches() {
        let text = run_on(vec![
            Statement::Declare {
                name: "x".into(),
                ty: Type::bits(8),
                init: Some(Expr::dotted(&["hdr", "h", "a"])),
            },
            Statement::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "c"]),
                    Expr::uint(0, 8),
                ),
                Statement::Block(Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(9, 8),
                )])),
            ),
            Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::path("x")),
        ]);
        assert!(text.contains("hdr.h.b = x;"));
    }
}
