//! Side-effect ordering: hoists calls out of compound expressions into
//! their own temporaries so that later passes (inlining in particular) only
//! ever see calls in statement position or as the sole initializer of a
//! declaration.
//!
//! P4-16's copy-in/copy-out calling convention makes argument evaluation and
//! side-effect ordering subtle; the paper reports that "a significant
//! portion of the semantic bugs we identified were caused by erroneous
//! passes that perform incorrect argument evaluation and side effect
//! ordering" (§5.2).  The correct ordering is strict left-to-right.

use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use crate::passes::util::NameGen;
use p4_ir::{Block, ControlDecl, Declaration, Expr, FunctionDecl, Program, Statement, Type};

/// The side-effect-ordering pass.
#[derive(Debug, Default)]
pub struct SideEffectOrdering;

impl Pass for SideEffectOrdering {
    fn name(&self) -> &str {
        "SideEffectOrdering"
    }

    fn area(&self) -> PassArea {
        PassArea::FrontEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        let functions: Vec<FunctionDecl> = program
            .declarations
            .iter()
            .filter_map(|d| match d {
                Declaration::Function(f) => Some(f.clone()),
                _ => None,
            })
            .collect();
        let mut hoister = Hoister {
            functions,
            names: NameGen::new("seo"),
        };
        for decl in &mut program.declarations {
            match decl {
                Declaration::Control(control) => hoister.rewrite_control(control),
                Declaration::Action(action) => hoister.rewrite_block(&mut action.body),
                Declaration::Function(function) => hoister.rewrite_block(&mut function.body),
                _ => {}
            }
        }
        Ok(())
    }
}

struct Hoister {
    functions: Vec<FunctionDecl>,
    names: NameGen,
}

impl Hoister {
    fn rewrite_control(&mut self, control: &mut ControlDecl) {
        for local in &mut control.locals {
            if let Declaration::Action(action) = local {
                self.rewrite_block(&mut action.body);
            }
        }
        self.rewrite_block(&mut control.apply);
    }

    fn rewrite_block(&mut self, block: &mut Block) {
        let mut rewritten = Vec::with_capacity(block.statements.len());
        for stmt in block.statements.drain(..) {
            self.rewrite_statement(stmt, &mut rewritten);
        }
        block.statements = rewritten;
    }

    fn rewrite_statement(&mut self, stmt: Statement, out: &mut Vec<Statement>) {
        match stmt {
            Statement::Assign { lhs, mut rhs } => {
                // A bare call on the right-hand side stays put (inlining
                // handles it); nested calls are hoisted.
                if !matches!(rhs, Expr::Call(_)) {
                    self.hoist_in_expr(&mut rhs, out);
                }
                out.push(Statement::Assign { lhs, rhs });
            }
            Statement::Call(mut call) => {
                for arg in &mut call.args {
                    self.hoist_in_expr(arg, out);
                }
                out.push(Statement::Call(call));
            }
            Statement::If {
                mut cond,
                then_branch,
                else_branch,
            } => {
                self.hoist_in_expr(&mut cond, out);
                let mut then_block = Vec::new();
                self.rewrite_statement(*then_branch, &mut then_block);
                let else_stmt = else_branch.map(|else_branch| {
                    let mut else_block = Vec::new();
                    self.rewrite_statement(*else_branch, &mut else_block);
                    Box::new(Statement::Block(Block::new(else_block)))
                });
                out.push(Statement::If {
                    cond,
                    then_branch: Box::new(Statement::Block(Block::new(then_block))),
                    else_branch: else_stmt,
                });
            }
            Statement::Block(mut block) => {
                self.rewrite_block(&mut block);
                out.push(Statement::Block(block));
            }
            Statement::Declare { name, ty, init } => {
                let init = init.map(|mut init| {
                    if !matches!(init, Expr::Call(_)) {
                        self.hoist_in_expr(&mut init, out);
                    }
                    init
                });
                out.push(Statement::Declare { name, ty, init });
            }
            Statement::Return(expr) => {
                let expr = expr.map(|mut e| {
                    self.hoist_in_expr(&mut e, out);
                    e
                });
                out.push(Statement::Return(expr));
            }
            other => out.push(other),
        }
    }

    /// Replaces every user-function call nested inside `expr` by a fresh
    /// temporary, emitting the hoisted declaration into `out` in
    /// left-to-right evaluation order.
    fn hoist_in_expr(&mut self, expr: &mut Expr, out: &mut Vec<Statement>) {
        match expr {
            Expr::Call(call) => {
                // Recurse into arguments first (their calls happen earlier).
                for arg in &mut call.args {
                    self.hoist_in_expr(arg, out);
                }
                let name = call.target.join(".");
                let Some(function) = self.functions.iter().find(|f| f.name == name) else {
                    // Built-in methods (`isValid`) are pure; leave them.
                    return;
                };
                let return_type = function.return_type.clone();
                if return_type == Type::Void {
                    return;
                }
                crate::coverage::record("SideEffectOrdering", "hoist_call");
                let tmp = self.names.fresh("tmp");
                let call_expr = expr.clone();
                out.push(Statement::Declare {
                    name: tmp.clone(),
                    ty: return_type,
                    init: Some(call_expr),
                });
                *expr = Expr::Path(tmp);
            }
            Expr::Member { base, .. } | Expr::Slice { base, .. } => self.hoist_in_expr(base, out),
            Expr::Unary { operand, .. } => self.hoist_in_expr(operand, out),
            Expr::Cast { expr: inner, .. } => self.hoist_in_expr(inner, out),
            Expr::Binary { left, right, .. } => {
                self.hoist_in_expr(left, out);
                self.hoist_in_expr(right, out);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.hoist_in_expr(cond, out);
                self.hoist_in_expr(then_expr, out);
                self.hoist_in_expr(else_expr, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{print_program, BinOp, Direction, Param};

    fn clamp_function() -> FunctionDecl {
        FunctionDecl {
            name: "clamp".into(),
            return_type: Type::bits(8),
            params: vec![Param::new(Direction::In, "x", Type::bits(8))],
            body: Block::new(vec![Statement::Return(Some(Expr::path("x")))]),
        }
    }

    #[test]
    fn hoists_nested_calls_into_temporaries() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::call(vec!["clamp"], vec![Expr::dotted(&["hdr", "h", "b"])]),
                    Expr::uint(1, 8),
                ),
            )]),
        );
        program
            .declarations
            .push(Declaration::Function(clamp_function()));
        SideEffectOrdering.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("bit<8> seo_tmp_0 = clamp(hdr.h.b);"));
        assert!(text.contains("hdr.h.a = (seo_tmp_0 + 8w1);"));
    }

    #[test]
    fn hoists_calls_in_if_conditions_before_the_branch() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::call(vec!["clamp"], vec![Expr::dotted(&["hdr", "h", "b"])]),
                    Expr::uint(0, 8),
                ),
                Statement::Block(Block::new(vec![Statement::Exit])),
            )]),
        );
        program
            .declarations
            .push(Declaration::Function(clamp_function()));
        SideEffectOrdering.run(&mut program).unwrap();
        let text = print_program(&program);
        let tmp_pos = text.find("seo_tmp_0 = clamp").unwrap();
        let if_pos = text.find("if ((seo_tmp_0 == 8w0))").unwrap();
        assert!(tmp_pos < if_pos);
    }

    #[test]
    fn leaves_pure_builtin_calls_in_place() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_then(
                Expr::call(vec!["hdr", "h", "isValid"], vec![]),
                Statement::Block(Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(1, 8),
                )])),
            )]),
        );
        SideEffectOrdering.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("if (hdr.h.isValid()) {"));
        assert!(!text.contains("seo_tmp"));
    }

    #[test]
    fn direct_call_initializers_are_untouched() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Declare {
                name: "v".into(),
                ty: Type::bits(8),
                init: Some(Expr::call(vec!["clamp"], vec![Expr::uint(3, 8)])),
            }]),
        );
        program
            .declarations
            .push(Declaration::Function(clamp_function()));
        SideEffectOrdering.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("bit<8> v = clamp(8w3);"));
        assert!(!text.contains("seo_tmp"));
    }
}
