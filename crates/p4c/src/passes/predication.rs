//! `Predication`: converts `if` statements inside action bodies into
//! straight-line predicated assignments, the standard preparation for
//! hardware targets whose actions cannot branch (the Tofino pipeline).
//!
//! `if (c) x = e;` becomes `x = c ? e : x;`.  The paper notes a recent
//! improvement to this very pass caused at least four new bugs (§7.2,
//! "Consequences of compiler changes"); the faulty variants in
//! `crate::buggy` model two of them (swapped branches and ignoring nested
//! conditions).

use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use p4_ir::{Block, Declaration, Expr, Program, Statement};

/// The predication pass.
#[derive(Debug, Default)]
pub struct Predication;

impl Pass for Predication {
    fn name(&self) -> &str {
        "Predication"
    }

    fn area(&self) -> PassArea {
        PassArea::MidEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        for decl in &mut program.declarations {
            match decl {
                Declaration::Control(control) => {
                    for local in &mut control.locals {
                        if let Declaration::Action(action) = local {
                            predicate_block(&mut action.body);
                        }
                    }
                }
                Declaration::Action(action) => predicate_block(&mut action.body),
                _ => {}
            }
        }
        Ok(())
    }
}

/// Rewrites every `if` whose branches consist solely of assignments into
/// predicated assignments.  `if` statements containing anything else (calls,
/// exits, declarations) are left untouched.
fn predicate_block(block: &mut Block) {
    let mut rewritten = Vec::with_capacity(block.statements.len());
    for stmt in block.statements.drain(..) {
        predicate_statement(stmt, &mut rewritten);
    }
    block.statements = rewritten;
}

fn predicate_statement(stmt: Statement, out: &mut Vec<Statement>) {
    match stmt {
        Statement::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let then_assigns = extract_assignments(&then_branch);
            let else_assigns = else_branch.as_deref().map(extract_assignments);
            match (then_assigns, else_assigns) {
                (Some(thens), None) if else_branch.is_none() => {
                    crate::coverage::record("Predication", "predicate_then");
                    for (lhs, rhs) in thens {
                        out.push(predicated(cond.clone(), lhs, rhs, true));
                    }
                }
                (Some(thens), Some(Some(elses))) => {
                    crate::coverage::record("Predication", "predicate_if_else");
                    for (lhs, rhs) in thens {
                        out.push(predicated(cond.clone(), lhs, rhs, true));
                    }
                    for (lhs, rhs) in elses {
                        out.push(predicated(cond.clone(), lhs, rhs, false));
                    }
                }
                _ => {
                    // Not a pure-assignment conditional; recurse into the
                    // branches instead.
                    let mut then_stmts = Vec::new();
                    predicate_statement(*then_branch, &mut then_stmts);
                    let else_branch = else_branch.map(|e| {
                        let mut else_stmts = Vec::new();
                        predicate_statement(*e, &mut else_stmts);
                        Box::new(Statement::Block(Block::new(else_stmts)))
                    });
                    out.push(Statement::If {
                        cond,
                        then_branch: Box::new(Statement::Block(Block::new(then_stmts))),
                        else_branch,
                    });
                }
            }
        }
        Statement::Block(mut inner) => {
            predicate_block(&mut inner);
            out.push(Statement::Block(inner));
        }
        other => out.push(other),
    }
}

/// `x = cond ? e : x` (or with the branches swapped for the else side).
fn predicated(cond: Expr, lhs: Expr, rhs: Expr, on_true: bool) -> Statement {
    let keep = lhs.clone();
    let (then_expr, else_expr) = if on_true { (rhs, keep) } else { (keep, rhs) };
    Statement::Assign {
        lhs,
        rhs: Expr::ternary(cond, then_expr, else_expr),
    }
}

/// Returns the list of `(lhs, rhs)` pairs if the statement consists solely
/// of assignments (possibly wrapped in blocks).
fn extract_assignments(stmt: &Statement) -> Option<Vec<(Expr, Expr)>> {
    match stmt {
        Statement::Assign { lhs, rhs } => Some(vec![(lhs.clone(), rhs.clone())]),
        Statement::Block(block) => {
            let mut assigns = Vec::new();
            for inner in &block.statements {
                assigns.extend(extract_assignments(inner)?);
            }
            Some(assigns)
        }
        Statement::Empty => Some(Vec::new()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{print_program, ActionDecl, BinOp};

    fn action_with_body(statements: Vec<Statement>) -> Vec<Declaration> {
        vec![Declaration::Action(ActionDecl {
            name: "act".into(),
            params: vec![],
            body: Block::new(statements),
        })]
    }

    #[test]
    fn predicates_simple_if_assignments() {
        let locals = action_with_body(vec![Statement::if_then(
            Expr::binary(
                BinOp::Eq,
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(0, 8),
            ),
            Statement::Block(Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "b"]),
                Expr::uint(1, 8),
            )])),
        )]);
        let mut program = builder::v1model_program(locals, Block::empty());
        Predication.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("hdr.h.b = ((hdr.h.a == 8w0) ? 8w1 : hdr.h.b);"));
        assert!(!text.contains("if ("));
    }

    #[test]
    fn predicates_if_else_pairs() {
        let locals = action_with_body(vec![Statement::if_else(
            Expr::binary(
                BinOp::Lt,
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(4, 8),
            ),
            Statement::Block(Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "b"]),
                Expr::uint(1, 8),
            )])),
            Statement::Block(Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "b"]),
                Expr::uint(2, 8),
            )])),
        )]);
        let mut program = builder::v1model_program(locals, Block::empty());
        Predication.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("? 8w1 : hdr.h.b"));
        assert!(text.contains("? hdr.h.b : 8w2"));
    }

    #[test]
    fn leaves_branches_with_calls_untouched() {
        let locals = action_with_body(vec![Statement::if_then(
            Expr::binary(
                BinOp::Eq,
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(0, 8),
            ),
            Statement::Block(Block::new(vec![Statement::call(
                vec!["hdr", "h", "setInvalid"],
                vec![],
            )])),
        )]);
        let mut program = builder::v1model_program(locals, Block::empty());
        Predication.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("if ((hdr.h.a == 8w0)) {"));
        assert!(text.contains("hdr.h.setInvalid();"));
    }

    #[test]
    fn does_not_touch_apply_blocks() {
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(0, 8),
                ),
                Statement::Block(Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(1, 8),
                )])),
            )]),
        );
        Predication.run(&mut program).unwrap();
        let text = print_program(&program);
        assert!(text.contains("if ((hdr.h.a == 8w0)) {"));
    }
}
