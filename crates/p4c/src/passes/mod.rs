//! The catalogue of front- and mid-end passes.
//!
//! The reference pipeline mirrors (a condensed version of) the P4C pass
//! order: desugaring and normalisation first (side-effect ordering,
//! inlining), then cleanup and optimisation (def-use simplification, copy
//! propagation, constant folding, strength reduction), then target
//! preparation (predication, block flattening).

pub mod constant_folding;
pub mod copy_propagation;
pub mod flatten;
pub mod inline;
pub mod predication;
pub mod side_effects;
pub mod simplify_defuse;
pub mod strength_reduction;
pub mod util;

pub use constant_folding::ConstantFolding;
pub use copy_propagation::LocalCopyPropagation;
pub use flatten::FlattenBlocks;
pub use inline::{InlineBehaviour, InlineFunctions, RemoveActionParameters};
pub use predication::Predication;
pub use side_effects::SideEffectOrdering;
pub use simplify_defuse::SimplifyDefUse;
pub use strength_reduction::StrengthReduction;

use crate::pass::Pass;

/// The default front-end + mid-end pipeline, in order.
pub fn default_pipeline() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(ConstantFolding),
        Box::new(StrengthReduction),
        Box::new(SideEffectOrdering),
        Box::new(InlineFunctions::default()),
        Box::new(RemoveActionParameters::default()),
        Box::new(SimplifyDefUse),
        Box::new(LocalCopyPropagation),
        Box::new(Predication),
        Box::new(FlattenBlocks),
    ]
}

/// Names of the passes in [`default_pipeline`], in order.
pub fn default_pass_names() -> Vec<&'static str> {
    vec![
        "ConstantFolding",
        "StrengthReduction",
        "SideEffectOrdering",
        "InlineFunctions",
        "RemoveActionParameters",
        "SimplifyDefUse",
        "LocalCopyPropagation",
        "Predication",
        "FlattenBlocks",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_matches_names() {
        let pipeline = default_pipeline();
        let names: Vec<&str> = default_pass_names();
        assert_eq!(pipeline.len(), names.len());
        for (pass, name) in pipeline.iter().zip(names) {
            assert_eq!(pass.name(), name);
        }
    }
}
