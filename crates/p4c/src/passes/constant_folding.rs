//! Constant folding: evaluates compile-time-constant sub-expressions and
//! prunes statically-decided branches.
//!
//! Widths follow P4-16 semantics: arithmetic on `bit<N>` wraps modulo 2^N,
//! shifts by amounts ≥ N produce 0, and unsized integer literals adopt the
//! width of the sized operand they are combined with.

use crate::coverage;
use crate::error::Diagnostic;
use crate::pass::{Pass, PassArea};
use p4_ir::visit::{mutate_walk_expr, mutate_walk_statement};
use p4_ir::{truncate, BinOp, Expr, Mutator, Program, Statement, Type, UnOp};

const PASS: &str = "ConstantFolding";

/// The constant-folding pass.
#[derive(Debug, Default)]
pub struct ConstantFolding;

impl Pass for ConstantFolding {
    fn name(&self) -> &str {
        "ConstantFolding"
    }

    fn area(&self) -> PassArea {
        PassArea::FrontEnd
    }

    fn run(&self, program: &mut Program) -> Result<(), Diagnostic> {
        Folder.mutate_program(program);
        Ok(())
    }
}

struct Folder;

/// A literal extracted from an expression, if it is a compile-time constant.
#[derive(Debug, Clone, Copy)]
enum Const {
    Bool(bool),
    Int { value: u128, width: Option<u32> },
}

fn as_const(expr: &Expr) -> Option<Const> {
    match expr {
        Expr::Bool(b) => Some(Const::Bool(*b)),
        Expr::Int { value, width, .. } => Some(Const::Int {
            value: *value,
            width: *width,
        }),
        _ => None,
    }
}

/// Records the fired rule and returns the replacement (every rewrite in
/// this pass funnels through here).
fn fired(rule: &'static str, replacement: Expr) -> Option<Expr> {
    coverage::record(PASS, rule);
    Some(replacement)
}

fn make_int(value: u128, width: Option<u32>) -> Expr {
    match width {
        Some(w) => Expr::uint(value, w),
        None => Expr::int(value),
    }
}

/// Unifies the widths of two literal operands: a sized literal imposes its
/// width on an unsized one; two sized literals must already agree (the type
/// checker enforces this), two unsized literals stay unsized.
fn unify_widths(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    a.or(b)
}

impl Folder {
    fn fold_binary(&self, op: BinOp, left: &Expr, right: &Expr) -> Option<Expr> {
        let (lc, rc) = (as_const(left)?, as_const(right)?);
        match (op, lc, rc) {
            (BinOp::And, Const::Bool(a), Const::Bool(b)) => fired("fold_bool", Expr::Bool(a && b)),
            (BinOp::Or, Const::Bool(a), Const::Bool(b)) => fired("fold_bool", Expr::Bool(a || b)),
            (BinOp::Eq, Const::Bool(a), Const::Bool(b)) => fired("fold_bool", Expr::Bool(a == b)),
            (BinOp::Ne, Const::Bool(a), Const::Bool(b)) => fired("fold_bool", Expr::Bool(a != b)),
            (
                op,
                Const::Int {
                    value: a,
                    width: wa,
                },
                Const::Int {
                    value: b,
                    width: wb,
                },
            ) => {
                let width = unify_widths(wa, wb);
                let wrap = |v: u128| match width {
                    Some(w) => truncate(v, w),
                    None => v,
                };
                let max = width.map(p4_ir::max_unsigned).unwrap_or(u128::MAX);
                match op {
                    BinOp::Add => fired("fold_arith", make_int(wrap(a.wrapping_add(b)), width)),
                    BinOp::Sub => fired("fold_arith", make_int(wrap(a.wrapping_sub(b)), width)),
                    BinOp::Mul => fired("fold_arith", make_int(wrap(a.wrapping_mul(b)), width)),
                    BinOp::SatAdd => {
                        fired("fold_arith", make_int(a.saturating_add(b).min(max), width))
                    }
                    BinOp::SatSub => fired("fold_arith", make_int(a.saturating_sub(b), width)),
                    BinOp::BitAnd => fired("fold_bitwise", make_int(a & b, width)),
                    BinOp::BitOr => fired("fold_bitwise", make_int(wrap(a | b), width)),
                    BinOp::BitXor => fired("fold_bitwise", make_int(wrap(a ^ b), width)),
                    BinOp::Shl => {
                        let shifted = if b >= 128 {
                            0
                        } else {
                            a.wrapping_shl(b as u32)
                        };
                        fired("fold_shift", make_int(wrap(shifted), width.or(wa)))
                    }
                    BinOp::Shr => {
                        let shifted = if b >= 128 {
                            0
                        } else {
                            a.wrapping_shr(b as u32)
                        };
                        fired("fold_shift", make_int(shifted, width.or(wa)))
                    }
                    BinOp::Concat => match (wa, wb) {
                        (Some(w1), Some(w2)) => fired(
                            "fold_concat",
                            Expr::uint((a << w2) | truncate(b, w2), w1 + w2),
                        ),
                        _ => None,
                    },
                    BinOp::Eq => fired("fold_compare", Expr::Bool(a == b)),
                    BinOp::Ne => fired("fold_compare", Expr::Bool(a != b)),
                    BinOp::Lt => fired("fold_compare", Expr::Bool(a < b)),
                    BinOp::Le => fired("fold_compare", Expr::Bool(a <= b)),
                    BinOp::Gt => fired("fold_compare", Expr::Bool(a > b)),
                    BinOp::Ge => fired("fold_compare", Expr::Bool(a >= b)),
                    BinOp::And | BinOp::Or => None,
                }
            }
            _ => None,
        }
    }

    fn fold_unary(&self, op: UnOp, operand: &Expr) -> Option<Expr> {
        match (op, as_const(operand)?) {
            (UnOp::Not, Const::Bool(b)) => fired("fold_unary", Expr::Bool(!b)),
            (
                UnOp::BitNot,
                Const::Int {
                    value,
                    width: Some(w),
                },
            ) => fired("fold_unary", Expr::uint(truncate(!value, w), w)),
            (
                UnOp::Neg,
                Const::Int {
                    value,
                    width: Some(w),
                },
            ) => fired(
                "fold_unary",
                Expr::uint(truncate(value.wrapping_neg(), w), w),
            ),
            _ => None,
        }
    }

    fn fold_cast(&self, ty: &Type, operand: &Expr) -> Option<Expr> {
        match (ty, as_const(operand)?) {
            (Type::Bits { width, .. }, Const::Int { value, .. }) => {
                fired("fold_cast", Expr::uint(truncate(value, *width), *width))
            }
            (Type::Bits { width, .. }, Const::Bool(b)) => {
                fired("fold_cast", Expr::uint(u128::from(b), *width))
            }
            (Type::Bool, Const::Int { value, .. }) => fired("fold_cast", Expr::Bool(value != 0)),
            (Type::Bool, Const::Bool(b)) => fired("fold_cast", Expr::Bool(b)),
            _ => None,
        }
    }

    fn fold_slice(&self, base: &Expr, hi: u32, lo: u32) -> Option<Expr> {
        match as_const(base)? {
            Const::Int { value, .. } if hi >= lo && hi < 128 => {
                let width = hi - lo + 1;
                fired(
                    "fold_slice",
                    Expr::uint(truncate(value >> lo, width), width),
                )
            }
            _ => None,
        }
    }
}

impl Mutator for Folder {
    fn mutate_expr(&mut self, expr: &mut Expr) {
        // Fold children first, then the node itself.
        mutate_walk_expr(self, expr);
        let folded = match expr {
            Expr::Binary { op, left, right } => self.fold_binary(*op, left, right),
            Expr::Unary { op, operand } => self.fold_unary(*op, operand),
            Expr::Cast { ty, expr: inner } => self.fold_cast(ty, inner),
            Expr::Slice { base, hi, lo } => self.fold_slice(base, *hi, *lo),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => match as_const(cond) {
                Some(Const::Bool(true)) => fired("fold_ternary", (**then_expr).clone()),
                Some(Const::Bool(false)) => fired("fold_ternary", (**else_expr).clone()),
                _ => None,
            },
            _ => None,
        };
        if let Some(new_expr) = folded {
            *expr = new_expr;
        }
    }

    fn mutate_statement(&mut self, stmt: &mut Statement) {
        mutate_walk_statement(self, stmt);
        // Prune statically-decided if statements.
        if let Statement::If {
            cond,
            then_branch,
            else_branch,
        } = stmt
        {
            match as_const(cond) {
                Some(Const::Bool(true)) => {
                    coverage::record(PASS, "prune_if");
                    *stmt = (**then_branch).clone();
                }
                Some(Const::Bool(false)) => {
                    coverage::record(PASS, "prune_if");
                    *stmt = match else_branch {
                        Some(else_stmt) => (**else_stmt).clone(),
                        None => Statement::Empty,
                    };
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{print_program, Block};

    fn fold_ingress(statements: Vec<Statement>) -> String {
        let mut program = builder::v1model_program(vec![], Block::new(statements));
        ConstantFolding.run(&mut program).unwrap();
        print_program(&program)
    }

    #[test]
    fn folds_arithmetic_with_wraparound() {
        let text = fold_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::binary(BinOp::Add, Expr::uint(250, 8), Expr::uint(10, 8)),
        )]);
        assert!(text.contains("hdr.h.a = 8w4;"));
    }

    #[test]
    fn folds_nested_expressions_and_shifts() {
        let text = fold_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::binary(
                BinOp::Shl,
                Expr::binary(BinOp::BitOr, Expr::uint(1, 8), Expr::uint(2, 8)),
                Expr::int(2),
            ),
        )]);
        assert!(text.contains("hdr.h.a = 8w12;"));
    }

    #[test]
    fn adapts_unsized_literals_to_sized_operands() {
        let text = fold_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::binary(BinOp::Add, Expr::int(1), Expr::uint(2, 8)),
        )]);
        assert!(text.contains("hdr.h.a = 8w3;"));
    }

    #[test]
    fn prunes_constant_branches() {
        let text = fold_ingress(vec![Statement::if_else(
            Expr::binary(BinOp::Lt, Expr::uint(1, 8), Expr::uint(2, 8)),
            Statement::Block(Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(1, 8),
            )])),
            Statement::Block(Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::uint(2, 8),
            )])),
        )]);
        assert!(text.contains("hdr.h.a = 8w1;"));
        assert!(!text.contains("8w2"));
    }

    #[test]
    fn folds_casts_slices_and_ternaries() {
        let text = fold_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::ternary(
                Expr::Bool(true),
                Expr::cast(Type::bits(8), Expr::uint(0x1ff, 16)),
                Expr::slice(Expr::uint(0xab, 8), 3, 0),
            ),
        )]);
        assert!(text.contains("hdr.h.a = 8w255;"));
    }

    #[test]
    fn leaves_symbolic_expressions_alone() {
        let text = fold_ingress(vec![Statement::assign(
            Expr::dotted(&["hdr", "h", "a"]),
            Expr::binary(
                BinOp::Add,
                Expr::dotted(&["hdr", "h", "b"]),
                Expr::uint(0, 8),
            ),
        )]);
        // Folding does not do strength reduction; x + 0 stays.
        assert!(text.contains("(hdr.h.b + 8w0)"));
    }
}
