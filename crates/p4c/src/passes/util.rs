//! Shared utilities for compiler passes: fresh-name generation, expression
//! substitution, and small structural queries.

use p4_ir::visit::{mutate_walk_expr, mutate_walk_statement};
use p4_ir::{Block, Declaration, Expr, FunctionDecl, Mutator, Program, Statement};
use std::collections::HashMap;

/// Hands out fresh variable names with a pass-specific prefix.
#[derive(Debug)]
pub struct NameGen {
    prefix: &'static str,
    counter: u32,
}

impl NameGen {
    pub fn new(prefix: &'static str) -> NameGen {
        NameGen { prefix, counter: 0 }
    }

    pub fn fresh(&mut self, hint: &str) -> String {
        let name = format!("{}_{}_{}", self.prefix, hint, self.counter);
        self.counter += 1;
        name
    }
}

/// Substitutes path expressions by name: every `Expr::Path(name)` with a
/// mapping is replaced by the mapped expression.  Used by inlining and copy
/// propagation.
pub struct Substitution {
    map: HashMap<String, Expr>,
    replaced: usize,
}

impl Substitution {
    pub fn new(map: HashMap<String, Expr>) -> Substitution {
        Substitution { map, replaced: 0 }
    }

    pub fn single(name: impl Into<String>, replacement: Expr) -> Substitution {
        let mut map = HashMap::new();
        map.insert(name.into(), replacement);
        Substitution { map, replaced: 0 }
    }

    /// Number of replacements performed so far (lets callers detect whether
    /// a substitution actually rewrote anything without cloning the tree).
    pub fn replaced(&self) -> usize {
        self.replaced
    }

    pub fn apply_expr(&mut self, expr: &mut Expr) {
        self.mutate_expr(expr);
    }

    pub fn apply_statement(&mut self, stmt: &mut Statement) {
        self.mutate_statement(stmt);
    }

    pub fn apply_block(&mut self, block: &mut Block) {
        for stmt in &mut block.statements {
            self.mutate_statement(stmt);
        }
    }
}

impl Mutator for Substitution {
    fn mutate_expr(&mut self, expr: &mut Expr) {
        if let Expr::Path(name) = expr {
            if let Some(replacement) = self.map.get(name) {
                *expr = replacement.clone();
                self.replaced += 1;
                return;
            }
        }
        // Substitute the *root* of call targets too (e.g. a call like
        // `param.setValid()` where `param` is being replaced by `hdr.h`).
        if let Expr::Call(call) = expr {
            self.rewrite_call_target(call);
        }
        mutate_walk_expr(self, expr);
    }

    fn mutate_statement(&mut self, stmt: &mut Statement) {
        if let Statement::Call(call) = stmt {
            self.rewrite_call_target(call);
        }
        mutate_walk_statement(self, stmt);
    }
}

impl Substitution {
    fn rewrite_call_target(&mut self, call: &mut p4_ir::CallExpr) {
        if call.target.len() < 2 {
            return;
        }
        let root = &call.target[0];
        if let Some(Expr::Path(new_root)) = self.map.get(root) {
            call.target[0] = new_root.clone();
            self.replaced += 1;
        } else if let Some(replacement) = self.map.get(root) {
            // Replacing a call receiver with a member chain, e.g.
            // `val.setValid()` where `val` ↦ `hdr.h`.
            if let Some(mut parts) = lvalue_parts(replacement) {
                parts.extend(call.target[1..].iter().cloned());
                call.target = parts;
                self.replaced += 1;
            }
        }
    }
}

/// Decomposes a pure member chain (`hdr.h.a`) into its components.
pub fn lvalue_parts(expr: &Expr) -> Option<Vec<String>> {
    match expr {
        Expr::Path(name) => Some(vec![name.clone()]),
        Expr::Member { base, member } => {
            let mut parts = lvalue_parts(base)?;
            parts.push(member.clone());
            Some(parts)
        }
        _ => None,
    }
}

/// Looks up a top-level function declaration by name.
pub fn find_function<'a>(program: &'a Program, name: &str) -> Option<&'a FunctionDecl> {
    program.declarations.iter().find_map(|d| match d {
        Declaration::Function(f) if f.name == name => Some(f),
        _ => None,
    })
}

/// True if the statement subtree contains a `return`.
pub fn contains_return(stmt: &Statement) -> bool {
    match stmt {
        Statement::Return(_) => true,
        Statement::Block(block) => block.statements.iter().any(contains_return),
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            contains_return(then_branch) || else_branch.as_ref().is_some_and(|s| contains_return(s))
        }
        _ => false,
    }
}

/// True if the statement subtree contains an `exit`.
pub fn contains_exit(stmt: &Statement) -> bool {
    match stmt {
        Statement::Exit => true,
        Statement::Block(block) => block.statements.iter().any(contains_exit),
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => contains_exit(then_branch) || else_branch.as_ref().is_some_and(|s| contains_exit(s)),
        _ => false,
    }
}

/// Collects every path root *read* by the statement (conservatively treats
/// all call arguments and call receivers as reads).
pub fn collect_reads<'a>(stmt: &'a Statement, reads: &mut Vec<&'a str>) {
    match stmt {
        Statement::Assign { lhs, rhs } => {
            rhs.collect_paths(reads);
            // Reads embedded in the l-value (slice indices are constant, but
            // member bases of the *read-modify-write* form still count when
            // the assignment writes only part of the variable).
            if let Expr::Slice { base, .. } = lhs {
                base.collect_paths(reads);
            }
        }
        Statement::Call(call) => {
            if let Some(root) = call.target.first() {
                reads.push(root);
            }
            for arg in &call.args {
                arg.collect_paths(reads);
            }
        }
        Statement::If {
            cond,
            then_branch,
            else_branch,
        } => {
            cond.collect_paths(reads);
            collect_reads(then_branch, reads);
            if let Some(else_stmt) = else_branch {
                collect_reads(else_stmt, reads);
            }
        }
        Statement::Block(block) => {
            for s in &block.statements {
                collect_reads(s, reads);
            }
        }
        Statement::Declare {
            init: Some(init), ..
        } => init.collect_paths(reads),
        Statement::Constant { value, .. } => value.collect_paths(reads),
        Statement::Return(Some(expr)) => expr.collect_paths(reads),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::{print_statement, BinOp};

    #[test]
    fn substitution_replaces_paths_and_call_receivers() {
        let mut stmt = Statement::Block(Block::new(vec![
            Statement::assign(
                Expr::path("x"),
                Expr::binary(BinOp::Add, Expr::path("val"), Expr::uint(1, 8)),
            ),
            Statement::call(vec!["val", "setValid"], vec![]),
        ]));
        let mut subst = Substitution::single("val", Expr::dotted(&["hdr", "h"]));
        subst.apply_statement(&mut stmt);
        let text = print_statement(&stmt);
        assert!(text.contains("(hdr.h + 8w1)"));
        assert!(text.contains("hdr.h.setValid()"));
    }

    #[test]
    fn name_gen_produces_unique_names() {
        let mut gen = NameGen::new("seo");
        let a = gen.fresh("tmp");
        let b = gen.fresh("tmp");
        assert_ne!(a, b);
        assert!(a.starts_with("seo_tmp_"));
    }

    #[test]
    fn detects_returns_and_exits() {
        let with_return = Statement::if_then(
            Expr::Bool(true),
            Statement::Block(Block::new(vec![Statement::Return(None)])),
        );
        assert!(contains_return(&with_return));
        assert!(!contains_exit(&with_return));
        assert!(contains_exit(&Statement::Exit));
    }

    #[test]
    fn collect_reads_sees_rhs_conditions_and_call_args() {
        let stmt = Statement::Block(Block::new(vec![
            Statement::assign(Expr::path("x"), Expr::path("y")),
            Statement::if_then(
                Expr::binary(BinOp::Eq, Expr::path("c"), Expr::uint(0, 8)),
                Statement::call(vec!["f"], vec![Expr::path("z")]),
            ),
        ]));
        let mut reads = Vec::new();
        collect_reads(&stmt, &mut reads);
        assert!(reads.contains(&"y"));
        assert!(reads.contains(&"c"));
        assert!(reads.contains(&"z"));
        assert!(!reads.contains(&"x"));
    }
}
