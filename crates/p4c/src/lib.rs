//! # p4c — a nanopass compiler for the P4-16 subset
//!
//! This crate is the reproduction's stand-in for the P4C front- and mid-end
//! infrastructure that Gauntlet tests.  It provides:
//!
//! * a [`pass::Pass`] trait and [`Compiler`] driver that runs a pipeline of
//!   passes, captures the program after every modifying pass (the `p4test`
//!   behaviour translation validation consumes), and converts pass panics
//!   into structured crash reports;
//! * the reference pass catalogue in [`passes`] (constant folding, strength
//!   reduction, side-effect ordering, function/action inlining with explicit
//!   copy-in/copy-out, def-use simplification, copy propagation,
//!   predication, block flattening);
//! * a seeded-bug catalogue in [`buggy`] with one faulty pass variant per
//!   miscompilation class described in the paper's §7.2 / Figure 5, used by
//!   the evaluation harness to measure Gauntlet's detection ability;
//! * a rewrite-rule [`coverage`] subsystem: every optimisation rule reports
//!   its firings through a lightweight sink threaded through the driver, so
//!   campaigns can close the generate→compile→validate loop and steer the
//!   program generator toward rules that have never fired.

pub mod buggy;
pub mod coverage;
pub mod error;
pub mod pass;
pub mod passes;

pub use buggy::{DriverBugClass, FrontEndBugClass};
pub use coverage::PassCoverage;
pub use error::{CompileError, Diagnostic};
pub use pass::{
    program_hash, CompileOptions, CompileResult, Compiler, Pass, PassArea, PassSnapshot,
};
