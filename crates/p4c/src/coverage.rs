//! Pass-rewrite coverage: which optimisation rules actually fired.
//!
//! The paper steers its random generator with per-node-kind probabilities so
//! programs stay "small and targeted" (§4.1), but offers no feedback signal
//! telling the campaign *which* compiler behaviour a batch of programs
//! exercised.  This module provides that signal: every rewrite rule in the
//! reference passes reports each firing through [`record`], and the compiler
//! driver threads a lightweight sink through the pipeline so each compile
//! yields a [`PassCoverage`] counter map (attached to
//! [`crate::CompileResult::coverage`]).
//!
//! Beyond single rules, the sink tracks **pass interactions**: the driver
//! calls [`pass_boundary`] after every pass run, and the sink records the
//! ordered pair "rule A fired in an earlier pass, rule B fired in a later
//! pass" for the same compile.  Most real miscompiles live in exactly these
//! interactions (one rewrite manufacturing the shape a later rewrite
//! mis-handles), so the campaign steers generation toward *uncovered pairs*
//! once the single-rule frontier saturates.  The pair universe is every
//! cross-pass ordered pair of registered rules, in registry order.
//!
//! The sink is a thread-local installed by [`Scope`] (the driver) or
//! [`with_sink`] (campaign engines that also want coverage from *crashing*
//! compiles — a pass fires rules before it panics, and those firings are
//! already in the sink when `catch_unwind` returns).  Recording is a no-op
//! when no sink is installed, so the passes pay one thread-local read per
//! fired rewrite and nothing else.  All sink state is keyed by interned
//! [`Symbol`] pairs — no string is allocated on the hot path; the string
//! form is materialised once, at report-render time.
//!
//! The full rule universe is enumerated statically in [`ALL_RULES`]; the
//! campaign layer uses it to report "rules fired / total" and to steer
//! generator weights toward rules (and pairs) that have never fired.

use p4_ir::{Interner, Symbol};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::OnceLock;

/// Every instrumented rewrite rule, grouped by pass.  The campaign layer
/// treats this as the coverage universe; [`record`] debug-asserts that each
/// firing names a registered rule so the two cannot drift apart.
pub const ALL_RULES: &[(&str, &[&str])] = &[
    (
        "ConstantFolding",
        &[
            "fold_arith",
            "fold_bitwise",
            "fold_shift",
            "fold_concat",
            "fold_compare",
            "fold_bool",
            "fold_unary",
            "fold_cast",
            "fold_slice",
            "fold_ternary",
            "prune_if",
        ],
    ),
    (
        "StrengthReduction",
        &[
            "add_zero_identity",
            "mul_by_zero",
            "mul_by_one",
            "mul_pow2_to_shift",
            "mask_all_ones",
            "shift_by_zero",
            "oversized_shift_to_zero",
            "bool_identity",
            "double_negation",
        ],
    ),
    ("SideEffectOrdering", &["hoist_call"]),
    (
        "InlineFunctions",
        &["inline_call", "guarded_return", "copy_out", "exit_copy_out"],
    ),
    (
        "RemoveActionParameters",
        &[
            "inline_call",
            "guarded_return",
            "copy_out",
            "exit_copy_out",
            "prune_action",
        ],
    ),
    (
        "SimplifyDefUse",
        &["dead_store", "dead_declare", "drop_control_var"],
    ),
    ("LocalCopyPropagation", &["propagate"]),
    ("Predication", &["predicate_then", "predicate_if_else"]),
    (
        "FlattenBlocks",
        &["splice_block", "drop_empty_statement", "drop_empty_else"],
    ),
];

/// Number of rules in the static registry (the denominator of
/// "rules fired / total").
pub fn total_rules() -> usize {
    ALL_RULES.iter().map(|(_, rules)| rules.len()).sum()
}

/// Number of ordered cross-pass rule pairs in the registry (the denominator
/// of "pairs fired / total"): every `(rule in pass i, rule in pass j)` with
/// `i < j` in [`ALL_RULES`] order.  Same-pass pairs are excluded — two rules
/// of one pass firing in one run is not an interaction between passes.
pub fn total_pairs() -> usize {
    let sizes: Vec<usize> = ALL_RULES.iter().map(|(_, rules)| rules.len()).collect();
    let mut pairs = 0;
    for i in 0..sizes.len() {
        for j in i + 1..sizes.len() {
            pairs += sizes[i] * sizes[j];
        }
    }
    pairs
}

/// The canonical flat key of a rule: `"pass/rule"`.
pub fn rule_key(pass: &str, rule: &str) -> String {
    format!("{pass}/{rule}")
}

/// The canonical flat key of an ordered rule pair:
/// `"passA/ruleA->passB/ruleB"` (A fired in an earlier pass run than B).
pub fn pair_key(first: &str, second: &str) -> String {
    format!("{first}->{second}")
}

/// All registered rule keys, sorted (BTreeMap order of [`ALL_RULES`] is
/// already deterministic, but callers get a plain sorted list).
pub fn all_rule_keys() -> Vec<String> {
    let mut keys: Vec<String> = ALL_RULES
        .iter()
        .flat_map(|(pass, rules)| rules.iter().map(|rule| rule_key(pass, rule)))
        .collect();
    keys.sort();
    keys
}

/// All registered cross-pass pair keys, sorted.
pub fn all_pair_keys() -> Vec<String> {
    let mut keys = Vec::with_capacity(total_pairs());
    for (i, (pass_a, rules_a)) in ALL_RULES.iter().enumerate() {
        for (pass_b, rules_b) in ALL_RULES.iter().skip(i + 1) {
            for rule_a in rules_a.iter() {
                for rule_b in rules_b.iter() {
                    keys.push(pair_key(
                        &rule_key(pass_a, rule_a),
                        &rule_key(pass_b, rule_b),
                    ));
                }
            }
        }
    }
    keys.sort();
    keys
}

/// An interned `(pass, rule)` identity.
type RuleId = (Symbol, Symbol);

/// The pre-interned rule registry behind every sink and coverage map.  The
/// rule universe is tiny and static, so the whole table is built once; every
/// later firing is two read-mostly interner lookups plus hash-map
/// increments on plain integers — no per-firing allocation.
struct Registry {
    interner: Interner,
    /// Registered `(pass, rule)` → its pre-formatted `"pass/rule"` key.
    key_strings: HashMap<RuleId, String>,
    /// Pass symbol → rank in [`ALL_RULES`] order, used to orient pairs.
    pass_rank: HashMap<Symbol, usize>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let interner = Interner::new();
        let mut key_strings = HashMap::new();
        let mut pass_rank = HashMap::new();
        for (rank, (pass, rules)) in ALL_RULES.iter().enumerate() {
            let (pass_sym, _) = interner.intern(pass);
            pass_rank.insert(pass_sym, rank);
            for rule in rules.iter() {
                let (rule_sym, _) = interner.intern(rule);
                key_strings.insert((pass_sym, rule_sym), rule_key(pass, rule));
            }
        }
        Registry {
            interner,
            key_strings,
            pass_rank,
        }
    })
}

impl Registry {
    fn intern(&self, pass: &str, rule: &str) -> RuleId {
        let (pass_sym, _) = self.interner.intern(pass);
        let (rule_sym, _) = self.interner.intern(rule);
        (pass_sym, rule_sym)
    }

    /// The `"pass/rule"` string of an id.  Registered rules hit the
    /// pre-formatted table; unregistered ones (tests) format on demand.
    fn key_string(&self, id: RuleId) -> String {
        match self.key_strings.get(&id) {
            Some(key) => key.clone(),
            None => rule_key(&self.interner.resolve(id.0), &self.interner.resolve(id.1)),
        }
    }

    /// Whether `(first, second)` is a registered cross-pass pair: both rules
    /// registered and `first`'s pass strictly precedes `second`'s in
    /// [`ALL_RULES`] order.
    fn is_cross_pair(&self, first: RuleId, second: RuleId) -> bool {
        if !self.key_strings.contains_key(&first) || !self.key_strings.contains_key(&second) {
            return false;
        }
        match (self.pass_rank.get(&first.0), self.pass_rank.get(&second.0)) {
            (Some(a), Some(b)) => a < b,
            _ => false,
        }
    }
}

/// The process-wide interner behind the sink's `(pass, rule)` keys (the
/// registry pre-interns every registered rule, so symbols are dense and
/// deterministic across runs).
#[allow(dead_code)]
fn coverage_interner() -> &'static Interner {
    &registry().interner
}

/// Fired-rewrite counters, keyed by interned `(pass, rule)` symbols: rule
/// firings plus cross-pass interaction pairs.  The public API speaks
/// `"pass/rule"` (and `"a->b"` pair) strings; resolution happens here, at
/// the map boundary, never per firing.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PassCoverage {
    counts: BTreeMap<RuleId, u64>,
    pairs: BTreeMap<(RuleId, RuleId), u64>,
}

impl PassCoverage {
    pub fn new() -> PassCoverage {
        PassCoverage::default()
    }

    /// Increments the counter for one rule firing.
    pub fn record(&mut self, pass: &str, rule: &str) {
        let id = registry().intern(pass, rule);
        *self.counts.entry(id).or_insert(0) += 1;
    }

    /// Adds every counter of `other` into `self` (commutative, so the
    /// campaign may merge per-seed maps in any order and still commit a
    /// deterministic accumulated map).  Pair counters merge the same way.
    pub fn merge(&mut self, other: &PassCoverage) {
        for (key, count) in &other.counts {
            *self.counts.entry(*key).or_insert(0) += count;
        }
        for (key, count) in &other.pairs {
            *self.pairs.entry(*key).or_insert(0) += count;
        }
    }

    /// Number of distinct rules that fired at least once.
    pub fn distinct_rules(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct cross-pass pairs observed at least once.
    pub fn distinct_pairs(&self) -> usize {
        self.pairs.len()
    }

    fn lookup(&self, key: &str) -> Option<&u64> {
        let (pass, rule) = key.split_once('/')?;
        self.counts.get(&registry().intern(pass, rule))
    }

    /// Firing count of one rule key (`"pass/rule"`).
    pub fn count(&self, key: &str) -> u64 {
        self.lookup(key).copied().unwrap_or(0)
    }

    /// Whether the given rule key has fired.
    pub fn fired(&self, key: &str) -> bool {
        self.lookup(key).is_some()
    }

    fn lookup_pair(&self, key: &str) -> Option<&u64> {
        let (first, second) = key.split_once("->")?;
        let (pass_a, rule_a) = first.split_once('/')?;
        let (pass_b, rule_b) = second.split_once('/')?;
        let reg = registry();
        self.pairs
            .get(&(reg.intern(pass_a, rule_a), reg.intern(pass_b, rule_b)))
    }

    /// Observation count of one pair key (`"passA/ruleA->passB/ruleB"`).
    pub fn pair_count(&self, key: &str) -> u64 {
        self.lookup_pair(key).copied().unwrap_or(0)
    }

    /// Whether the given pair key has been observed.
    pub fn pair_fired(&self, key: &str) -> bool {
        self.lookup_pair(key).is_some()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.pairs.is_empty()
    }

    /// Iterates `(rule key, firings)` in sorted key order.  Strings are
    /// resolved here, once per call — never on the recording path.
    pub fn iter(&self) -> impl Iterator<Item = (String, u64)> {
        let reg = registry();
        let mut entries: Vec<(String, u64)> = self
            .counts
            .iter()
            .map(|(id, count)| (reg.key_string(*id), *count))
            .collect();
        entries.sort();
        entries.into_iter()
    }

    /// The sorted fired-rule keys.
    pub fn fired_keys(&self) -> Vec<String> {
        let reg = registry();
        let mut keys: Vec<String> = self.counts.keys().map(|id| reg.key_string(*id)).collect();
        keys.sort();
        keys
    }

    /// Registered rules that have *not* fired, in sorted key order.
    pub fn unfired_keys(&self) -> Vec<String> {
        all_rule_keys()
            .into_iter()
            .filter(|key| !self.fired(key))
            .collect()
    }

    /// The sorted fired-pair keys (`"a->b"` form).
    pub fn fired_pair_keys(&self) -> Vec<String> {
        let reg = registry();
        let mut keys: Vec<String> = self
            .pairs
            .keys()
            .map(|(a, b)| pair_key(&reg.key_string(*a), &reg.key_string(*b)))
            .collect();
        keys.sort();
        keys
    }

    /// Registered cross-pass pairs not yet observed, *frontier first*: pairs
    /// whose two member rules have both individually fired come before pairs
    /// with an unfired member (each group sorted).  A pair on the frontier
    /// only needs the two rewrites to meet in one program, so steering at it
    /// pays off sooner than chasing a pair gated behind an unfired rule.
    pub fn unfired_pair_keys(&self) -> Vec<String> {
        let fired: BTreeSet<String> = self.fired_keys().into_iter().collect();
        let mut frontier = Vec::new();
        let mut deferred = Vec::new();
        for key in all_pair_keys() {
            if self.pair_fired(&key) {
                continue;
            }
            let reachable = key
                .split_once("->")
                .map(|(a, b)| fired.contains(a) && fired.contains(b))
                .unwrap_or(false);
            if reachable {
                frontier.push(key);
            } else {
                deferred.push(key);
            }
        }
        frontier.extend(deferred);
        frontier
    }
}

/// The in-flight sink: firing counters keyed by interned `(pass, rule)`
/// symbols.  The hot path ([`record`]) therefore increments a
/// `HashMap<(u32, u32), u64>` entry instead of formatting a `"pass/rule"`
/// string and walking a `BTreeMap<String, _>` per firing; the string form
/// ([`PassCoverage`]) is materialised once, when the scope pops.
///
/// `segment` and `earlier` implement pair tracking: `segment` holds the
/// rules fired since the last [`pass_boundary`], `earlier` the rules of all
/// completed pass runs of the current compile.  At each boundary the sink
/// crosses the two sets (filtered to registered cross-pass pairs) into
/// `pairs`, then promotes the segment.  Merging a child sink outward never
/// touches the parent's segment machinery — pairing is strictly
/// per-compile.
#[derive(Debug, Default)]
struct Sink {
    counts: HashMap<RuleId, u64>,
    pairs: HashMap<(RuleId, RuleId), u64>,
    segment: HashSet<RuleId>,
    earlier: HashSet<RuleId>,
}

impl Sink {
    fn record(&mut self, pass: &str, rule: &str) {
        let id = registry().intern(pass, rule);
        *self.counts.entry(id).or_insert(0) += 1;
        self.segment.insert(id);
    }

    /// Closes the current pass segment: every (earlier rule, segment rule)
    /// combination that forms a registered cross-pass pair is counted once
    /// per boundary, then the segment's rules join `earlier`.
    fn flush_segment(&mut self) {
        if self.segment.is_empty() {
            return;
        }
        let reg = registry();
        for &second in &self.segment {
            for &first in &self.earlier {
                if reg.is_cross_pair(first, second) {
                    *self.pairs.entry((first, second)).or_insert(0) += 1;
                }
            }
        }
        self.earlier.extend(self.segment.drain());
    }

    fn merge_from(&mut self, other: &Sink) {
        for (key, count) in &other.counts {
            *self.counts.entry(*key).or_insert(0) += count;
        }
        for (key, count) in &other.pairs {
            *self.pairs.entry(*key).or_insert(0) += count;
        }
    }

    /// Resolves the interned counters into the public form.  Called once
    /// per scope, not per firing.
    fn into_coverage(mut self) -> PassCoverage {
        self.flush_segment();
        PassCoverage {
            counts: self.counts.into_iter().collect(),
            pairs: self.pairs.into_iter().collect(),
        }
    }
}

thread_local! {
    /// The active sink stack.  A stack (rather than a single slot) lets the
    /// driver's per-compile scope nest inside a campaign's [`with_sink`]
    /// without either clobbering the other: on pop, the inner scope merges
    /// its counters into the enclosing sink.
    static SINKS: RefCell<Vec<Sink>> = const { RefCell::new(Vec::new()) };
}

/// Records one rule firing into the innermost active sink, if any.  Called
/// by the passes at every rewrite point.
pub fn record(pass: &str, rule: &str) {
    debug_assert!(
        ALL_RULES
            .iter()
            .any(|(p, rules)| *p == pass && rules.contains(&rule)),
        "unregistered coverage rule {pass}/{rule}; add it to coverage::ALL_RULES"
    );
    SINKS.with(|sinks| {
        if let Some(sink) = sinks.borrow_mut().last_mut() {
            sink.record(pass, rule);
        }
    });
    // Mirror every firing into the flight recorder's per-rule counters.
    // Registered rules hit the registry's pre-formatted key table, so even
    // the telemetry-on path allocates nothing per firing; telemetry-off
    // stays a single thread-local read.
    if gauntlet_telemetry::enabled() {
        let reg = registry();
        match reg.key_strings.get(&reg.intern(pass, rule)) {
            Some(key) => gauntlet_telemetry::count_rule(key),
            None => gauntlet_telemetry::count_rule(&rule_key(pass, rule)),
        }
    }
}

/// Marks a pass boundary in the innermost active sink: rules recorded since
/// the previous boundary become "earlier" rules, and every registered
/// cross-pass pair they complete is counted.  The compiler driver calls this
/// after each pass run; a crashing pass never reaches its boundary, but the
/// scope's pop flushes the dangling segment so crash compiles still
/// contribute their pairs.
pub fn pass_boundary() {
    SINKS.with(|sinks| {
        if let Some(sink) = sinks.borrow_mut().last_mut() {
            sink.flush_segment();
        }
    });
}

/// A per-compile coverage scope, installed by the compiler driver around the
/// pass pipeline.  Dropping the scope without [`Scope::finish`] (e.g. when a
/// pass panic unwinds through the driver) still pops the sink and merges it
/// outward, so enclosing [`with_sink`] callers observe the rules a crashing
/// pass fired before dying.
#[derive(Debug)]
pub struct Scope {
    finished: bool,
}

impl Scope {
    /// Pushes a fresh sink.
    pub fn begin() -> Scope {
        SINKS.with(|sinks| sinks.borrow_mut().push(Sink::default()));
        Scope { finished: false }
    }

    /// Pops the sink, merging its counters into the enclosing sink (if any),
    /// and returns them.
    pub fn finish(mut self) -> PassCoverage {
        self.finished = true;
        Scope::pop()
    }

    fn pop() -> PassCoverage {
        SINKS.with(|sinks| {
            let mut sinks = sinks.borrow_mut();
            let mut sink = sinks.pop().expect("coverage scope underflow");
            // Close the trailing segment first so a crashing pass's firings
            // pair with the earlier rules of the same compile before the
            // counters merge outward.
            sink.flush_segment();
            if let Some(parent) = sinks.last_mut() {
                parent.merge_from(&sink);
            }
            sink.into_coverage()
        })
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if !self.finished {
            let _ = Scope::pop();
        }
    }
}

/// Runs `f` with a fresh sink installed and returns its result together with
/// every rule fired while it ran — including firings from compiles that
/// ended in a crash (the driver's inner scope merges outward on unwind).
pub fn with_sink<R>(f: impl FnOnce() -> R) -> (R, PassCoverage) {
    let scope = Scope::begin();
    let result = f();
    (result, scope.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_without_a_sink_is_a_no_op() {
        record("ConstantFolding", "fold_arith");
        let (_, coverage) = with_sink(|| ());
        assert!(coverage.is_empty());
    }

    #[test]
    fn with_sink_collects_and_nested_scopes_merge_outward() {
        let ((), outer) = with_sink(|| {
            record("ConstantFolding", "fold_arith");
            let scope = Scope::begin();
            record("Predication", "predicate_then");
            let inner = scope.finish();
            assert_eq!(inner.distinct_rules(), 1);
            assert_eq!(inner.count("Predication/predicate_then"), 1);
        });
        assert_eq!(outer.distinct_rules(), 2);
        assert_eq!(outer.count("ConstantFolding/fold_arith"), 1);
        assert_eq!(outer.count("Predication/predicate_then"), 1);
    }

    #[test]
    fn scope_drop_on_unwind_still_merges_outward() {
        let (result, coverage) = with_sink(|| {
            std::panic::catch_unwind(|| {
                let _scope = Scope::begin();
                record("FlattenBlocks", "splice_block");
                panic!("pass bug");
            })
        });
        assert!(result.is_err());
        assert_eq!(coverage.count("FlattenBlocks/splice_block"), 1);
    }

    #[test]
    fn merge_sums_counters_commutatively() {
        let mut a = PassCoverage::new();
        a.record("ConstantFolding", "fold_arith");
        a.record("ConstantFolding", "fold_arith");
        let mut b = PassCoverage::new();
        b.record("ConstantFolding", "fold_arith");
        b.record("FlattenBlocks", "drop_empty_else");
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count("ConstantFolding/fold_arith"), 3);
        assert_eq!(ab.distinct_rules(), 2);
    }

    #[test]
    fn unfired_keys_complement_fired_keys() {
        let mut coverage = PassCoverage::new();
        coverage.record("Predication", "predicate_then");
        let unfired = coverage.unfired_keys();
        assert_eq!(unfired.len(), total_rules() - 1);
        assert!(!unfired.contains(&"Predication/predicate_then".to_string()));
    }

    #[test]
    fn pair_universe_is_every_cross_pass_combination() {
        let keys = all_pair_keys();
        assert_eq!(keys.len(), total_pairs());
        // 39 rules, sum of squared per-pass sizes 267: (39^2 - 267) / 2.
        assert_eq!(total_pairs(), 627);
        assert!(
            keys.contains(&"ConstantFolding/fold_arith->Predication/predicate_then".to_string())
        );
        // Pairs are oriented by registry order only.
        assert!(
            !keys.contains(&"Predication/predicate_then->ConstantFolding/fold_arith".to_string())
        );
        // Same-pass combinations are not pairs.
        assert!(
            !keys.contains(&"ConstantFolding/fold_arith->ConstantFolding/fold_bool".to_string())
        );
    }

    #[test]
    fn pass_boundaries_turn_firings_into_ordered_pairs() {
        let ((), coverage) = with_sink(|| {
            let scope = Scope::begin();
            record("ConstantFolding", "fold_arith");
            record("ConstantFolding", "fold_bool");
            pass_boundary();
            record("Predication", "predicate_then");
            pass_boundary();
            let inner = scope.finish();
            assert_eq!(inner.distinct_pairs(), 2);
            assert_eq!(
                inner.pair_count("ConstantFolding/fold_arith->Predication/predicate_then"),
                1
            );
            assert_eq!(
                inner.pair_count("ConstantFolding/fold_bool->Predication/predicate_then"),
                1
            );
            // Same-pass firings never pair.
            assert!(!inner.pair_fired("ConstantFolding/fold_arith->ConstantFolding/fold_bool"));
        });
        assert_eq!(coverage.distinct_pairs(), 2, "pairs merge outward");
    }

    #[test]
    fn pairs_against_registry_order_are_not_counted() {
        // Predication precedes ConstantFolding at runtime here, but the
        // registry orders ConstantFolding first, so no pair is recorded:
        // the pair universe is oriented by registry (pipeline) order.
        let ((), coverage) = with_sink(|| {
            let scope = Scope::begin();
            record("Predication", "predicate_then");
            pass_boundary();
            record("ConstantFolding", "fold_arith");
            pass_boundary();
            scope.finish();
        });
        assert_eq!(coverage.distinct_pairs(), 0);
        assert_eq!(coverage.distinct_rules(), 2);
    }

    #[test]
    fn crashing_pass_segment_still_pairs_on_unwind() {
        let (result, coverage) = with_sink(|| {
            std::panic::catch_unwind(|| {
                let _scope = Scope::begin();
                record("ConstantFolding", "fold_arith");
                pass_boundary();
                record("FlattenBlocks", "splice_block");
                panic!("pass bug after firing");
            })
        });
        assert!(result.is_err());
        assert_eq!(
            coverage.pair_count("ConstantFolding/fold_arith->FlattenBlocks/splice_block"),
            1,
            "the dangling segment flushes when the scope unwinds"
        );
    }

    #[test]
    fn pair_merge_is_commutative_and_unfired_pairs_are_frontier_first() {
        let mut a = PassCoverage::new();
        a.record("ConstantFolding", "fold_arith");
        a.record("Predication", "predicate_then");
        let mut b = PassCoverage::new();
        b.record("FlattenBlocks", "splice_block");
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        let unfired = ab.unfired_pair_keys();
        assert_eq!(unfired.len(), total_pairs(), "no pair observed yet");
        // Every frontier pair (both members fired) sorts before every
        // deferred pair (some member unfired).
        let frontier_len = unfired
            .iter()
            .take_while(|key| {
                key.split_once("->")
                    .map(|(x, y)| ab.fired(x) && ab.fired(y))
                    .unwrap_or(false)
            })
            .count();
        // fold_arith->predicate_then, fold_arith->splice_block,
        // predicate_then->splice_block.
        assert_eq!(frontier_len, 3);
        assert!(unfired[frontier_len..].iter().all(|key| {
            key.split_once("->")
                .map(|(x, y)| !ab.fired(x) || !ab.fired(y))
                .unwrap_or(false)
        }));
    }
}
