//! Pass-rewrite coverage: which optimisation rules actually fired.
//!
//! The paper steers its random generator with per-node-kind probabilities so
//! programs stay "small and targeted" (§4.1), but offers no feedback signal
//! telling the campaign *which* compiler behaviour a batch of programs
//! exercised.  This module provides that signal: every rewrite rule in the
//! reference passes reports each firing through [`record`], and the compiler
//! driver threads a lightweight sink through the pipeline so each compile
//! yields a [`PassCoverage`] counter map (attached to
//! [`crate::CompileResult::coverage`]).
//!
//! The sink is a thread-local installed by [`Scope`] (the driver) or
//! [`with_sink`] (campaign engines that also want coverage from *crashing*
//! compiles — a pass fires rules before it panics, and those firings are
//! already in the sink when `catch_unwind` returns).  Recording is a no-op
//! when no sink is installed, so the passes pay one thread-local read per
//! fired rewrite and nothing else.
//!
//! The full rule universe is enumerated statically in [`ALL_RULES`]; the
//! campaign layer uses it to report "rules fired / total" and to steer
//! generator weights toward rules that have never fired.

use p4_ir::{Interner, Symbol};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// Every instrumented rewrite rule, grouped by pass.  The campaign layer
/// treats this as the coverage universe; [`record`] debug-asserts that each
/// firing names a registered rule so the two cannot drift apart.
pub const ALL_RULES: &[(&str, &[&str])] = &[
    (
        "ConstantFolding",
        &[
            "fold_arith",
            "fold_bitwise",
            "fold_shift",
            "fold_concat",
            "fold_compare",
            "fold_bool",
            "fold_unary",
            "fold_cast",
            "fold_slice",
            "fold_ternary",
            "prune_if",
        ],
    ),
    (
        "StrengthReduction",
        &[
            "add_zero_identity",
            "mul_by_zero",
            "mul_by_one",
            "mul_pow2_to_shift",
            "mask_all_ones",
            "shift_by_zero",
            "oversized_shift_to_zero",
            "bool_identity",
            "double_negation",
        ],
    ),
    ("SideEffectOrdering", &["hoist_call"]),
    (
        "InlineFunctions",
        &["inline_call", "guarded_return", "copy_out", "exit_copy_out"],
    ),
    (
        "RemoveActionParameters",
        &[
            "inline_call",
            "guarded_return",
            "copy_out",
            "exit_copy_out",
            "prune_action",
        ],
    ),
    (
        "SimplifyDefUse",
        &["dead_store", "dead_declare", "drop_control_var"],
    ),
    ("LocalCopyPropagation", &["propagate"]),
    ("Predication", &["predicate_then", "predicate_if_else"]),
    (
        "FlattenBlocks",
        &["splice_block", "drop_empty_statement", "drop_empty_else"],
    ),
];

/// Number of rules in the static registry (the denominator of
/// "rules fired / total").
pub fn total_rules() -> usize {
    ALL_RULES.iter().map(|(_, rules)| rules.len()).sum()
}

/// The canonical flat key of a rule: `"pass/rule"`.
pub fn rule_key(pass: &str, rule: &str) -> String {
    format!("{pass}/{rule}")
}

/// All registered rule keys, sorted (BTreeMap order of [`ALL_RULES`] is
/// already deterministic, but callers get a plain sorted list).
pub fn all_rule_keys() -> Vec<String> {
    let mut keys: Vec<String> = ALL_RULES
        .iter()
        .flat_map(|(pass, rules)| rules.iter().map(|rule| rule_key(pass, rule)))
        .collect();
    keys.sort();
    keys
}

/// Fired-rewrite counters: `"pass/rule"` → number of firings.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PassCoverage {
    counts: BTreeMap<String, u64>,
}

impl PassCoverage {
    pub fn new() -> PassCoverage {
        PassCoverage::default()
    }

    /// Increments the counter for one rule firing.
    pub fn record(&mut self, pass: &str, rule: &str) {
        *self.counts.entry(rule_key(pass, rule)).or_insert(0) += 1;
    }

    /// Adds every counter of `other` into `self` (commutative, so the
    /// campaign may merge per-seed maps in any order and still commit a
    /// deterministic accumulated map).
    pub fn merge(&mut self, other: &PassCoverage) {
        for (key, count) in &other.counts {
            *self.counts.entry(key.clone()).or_insert(0) += count;
        }
    }

    /// Number of distinct rules that fired at least once.
    pub fn distinct_rules(&self) -> usize {
        self.counts.len()
    }

    /// Firing count of one rule key (`"pass/rule"`).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Whether the given rule key has fired.
    pub fn fired(&self, key: &str) -> bool {
        self.counts.contains_key(key)
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(rule key, firings)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The sorted fired-rule keys.
    pub fn fired_keys(&self) -> Vec<String> {
        self.counts.keys().cloned().collect()
    }

    /// Registered rules that have *not* fired, in sorted key order.
    pub fn unfired_keys(&self) -> Vec<String> {
        all_rule_keys()
            .into_iter()
            .filter(|key| !self.fired(key))
            .collect()
    }
}

/// The process-wide interner behind the sink's `(pass, rule)` keys.  The
/// rule universe is tiny and static, so the interner saturates after the
/// first few compiles and every later firing is two read-mostly lookups.
fn coverage_interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(Interner::new)
}

/// The in-flight sink: firing counters keyed by interned `(pass, rule)`
/// symbols.  The hot path ([`record`]) therefore increments a
/// `HashMap<(u32, u32), u64>` entry instead of formatting a `"pass/rule"`
/// string and walking a `BTreeMap<String, _>` per firing; the string form
/// ([`PassCoverage`]) is materialised once, when the scope pops.
#[derive(Debug, Default)]
struct Sink {
    counts: HashMap<(Symbol, Symbol), u64>,
}

impl Sink {
    fn record(&mut self, pass: &str, rule: &str) {
        let interner = coverage_interner();
        let (pass_sym, _) = interner.intern(pass);
        let (rule_sym, _) = interner.intern(rule);
        *self.counts.entry((pass_sym, rule_sym)).or_insert(0) += 1;
    }

    fn merge_from(&mut self, other: &Sink) {
        for (key, count) in &other.counts {
            *self.counts.entry(*key).or_insert(0) += count;
        }
    }

    /// Resolves the interned counters into the public, sorted, serialisable
    /// form.  Called once per scope, not per firing.
    fn into_coverage(self) -> PassCoverage {
        let interner = coverage_interner();
        let mut counts = BTreeMap::new();
        for ((pass, rule), count) in self.counts {
            counts.insert(
                rule_key(&interner.resolve(pass), &interner.resolve(rule)),
                count,
            );
        }
        PassCoverage { counts }
    }
}

thread_local! {
    /// The active sink stack.  A stack (rather than a single slot) lets the
    /// driver's per-compile scope nest inside a campaign's [`with_sink`]
    /// without either clobbering the other: on pop, the inner scope merges
    /// its counters into the enclosing sink.
    static SINKS: RefCell<Vec<Sink>> = const { RefCell::new(Vec::new()) };
}

/// Records one rule firing into the innermost active sink, if any.  Called
/// by the passes at every rewrite point.
pub fn record(pass: &str, rule: &str) {
    debug_assert!(
        ALL_RULES
            .iter()
            .any(|(p, rules)| *p == pass && rules.contains(&rule)),
        "unregistered coverage rule {pass}/{rule}; add it to coverage::ALL_RULES"
    );
    SINKS.with(|sinks| {
        if let Some(sink) = sinks.borrow_mut().last_mut() {
            sink.record(pass, rule);
        }
    });
    // Mirror every firing into the flight recorder's per-rule counters.
    // The key is only formatted once a recorder is actually installed, so
    // the telemetry-off path stays a single thread-local read.
    if gauntlet_telemetry::enabled() {
        gauntlet_telemetry::count_rule(&rule_key(pass, rule));
    }
}

/// A per-compile coverage scope, installed by the compiler driver around the
/// pass pipeline.  Dropping the scope without [`Scope::finish`] (e.g. when a
/// pass panic unwinds through the driver) still pops the sink and merges it
/// outward, so enclosing [`with_sink`] callers observe the rules a crashing
/// pass fired before dying.
#[derive(Debug)]
pub struct Scope {
    finished: bool,
}

impl Scope {
    /// Pushes a fresh sink.
    pub fn begin() -> Scope {
        SINKS.with(|sinks| sinks.borrow_mut().push(Sink::default()));
        Scope { finished: false }
    }

    /// Pops the sink, merging its counters into the enclosing sink (if any),
    /// and returns them.
    pub fn finish(mut self) -> PassCoverage {
        self.finished = true;
        Scope::pop()
    }

    fn pop() -> PassCoverage {
        SINKS.with(|sinks| {
            let mut sinks = sinks.borrow_mut();
            let sink = sinks.pop().expect("coverage scope underflow");
            if let Some(parent) = sinks.last_mut() {
                parent.merge_from(&sink);
            }
            sink.into_coverage()
        })
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if !self.finished {
            let _ = Scope::pop();
        }
    }
}

/// Runs `f` with a fresh sink installed and returns its result together with
/// every rule fired while it ran — including firings from compiles that
/// ended in a crash (the driver's inner scope merges outward on unwind).
pub fn with_sink<R>(f: impl FnOnce() -> R) -> (R, PassCoverage) {
    let scope = Scope::begin();
    let result = f();
    (result, scope.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_without_a_sink_is_a_no_op() {
        record("ConstantFolding", "fold_arith");
        let (_, coverage) = with_sink(|| ());
        assert!(coverage.is_empty());
    }

    #[test]
    fn with_sink_collects_and_nested_scopes_merge_outward() {
        let ((), outer) = with_sink(|| {
            record("ConstantFolding", "fold_arith");
            let scope = Scope::begin();
            record("Predication", "predicate_then");
            let inner = scope.finish();
            assert_eq!(inner.distinct_rules(), 1);
            assert_eq!(inner.count("Predication/predicate_then"), 1);
        });
        assert_eq!(outer.distinct_rules(), 2);
        assert_eq!(outer.count("ConstantFolding/fold_arith"), 1);
        assert_eq!(outer.count("Predication/predicate_then"), 1);
    }

    #[test]
    fn scope_drop_on_unwind_still_merges_outward() {
        let (result, coverage) = with_sink(|| {
            std::panic::catch_unwind(|| {
                let _scope = Scope::begin();
                record("FlattenBlocks", "splice_block");
                panic!("pass bug");
            })
        });
        assert!(result.is_err());
        assert_eq!(coverage.count("FlattenBlocks/splice_block"), 1);
    }

    #[test]
    fn merge_sums_counters_commutatively() {
        let mut a = PassCoverage::new();
        a.record("ConstantFolding", "fold_arith");
        a.record("ConstantFolding", "fold_arith");
        let mut b = PassCoverage::new();
        b.record("ConstantFolding", "fold_arith");
        b.record("FlattenBlocks", "drop_empty_else");
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count("ConstantFolding/fold_arith"), 3);
        assert_eq!(ab.distinct_rules(), 2);
    }

    #[test]
    fn unfired_keys_complement_fired_keys() {
        let mut coverage = PassCoverage::new();
        coverage.record("Predication", "predicate_then");
        let unfired = coverage.unfired_keys();
        assert_eq!(unfired.len(), total_rules() - 1);
        assert!(!unfired.contains(&"Predication/predicate_then".to_string()));
    }
}
