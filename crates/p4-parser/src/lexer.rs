//! Lexer for the P4-16 subset.
//!
//! Produces a token stream with source positions.  Comments (`//` and
//! `/* */`) and preprocessor-style `#include` lines are skipped, matching
//! what the ToP4 printer emits.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub column: u32,
}

impl Pos {
    pub fn start() -> Pos {
        Pos { line: 1, column: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    Identifier(String),
    /// An unsized integer literal, e.g. `42` or `0x1f`.
    Number(u128),
    /// A sized literal, e.g. `8w255` (unsigned) or `4s3` (signed).
    SizedNumber {
        width: u32,
        value: u128,
        signed: bool,
    },
    /// An `#include <...>` directive; the payload is the included name.
    Include(String),

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LAngle,
    RAngle,
    Semicolon,
    Colon,
    Comma,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Question,
    Shl,
    Shr,
    EqEq,
    NotEq,
    Le,
    Ge,
    AndAnd,
    OrOr,
    PlusPlus,
    SatPlus,
    SatMinus,

    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Identifier(s) => write!(f, "identifier `{s}`"),
            Token::Number(n) => write!(f, "number `{n}`"),
            Token::SizedNumber {
                width,
                value,
                signed,
            } => {
                write!(
                    f,
                    "literal `{width}{}{value}`",
                    if *signed { "s" } else { "w" }
                )
            }
            Token::Include(name) => write!(f, "#include <{name}>"),
            other => write!(f, "`{}`", token_text(other)),
        }
    }
}

fn token_text(token: &Token) -> &'static str {
    match token {
        Token::LParen => "(",
        Token::RParen => ")",
        Token::LBrace => "{",
        Token::RBrace => "}",
        Token::LBracket => "[",
        Token::RBracket => "]",
        Token::LAngle => "<",
        Token::RAngle => ">",
        Token::Semicolon => ";",
        Token::Colon => ":",
        Token::Comma => ",",
        Token::Dot => ".",
        Token::Assign => "=",
        Token::Plus => "+",
        Token::Minus => "-",
        Token::Star => "*",
        Token::Amp => "&",
        Token::Pipe => "|",
        Token::Caret => "^",
        Token::Tilde => "~",
        Token::Bang => "!",
        Token::Question => "?",
        Token::Shl => "<<",
        Token::Shr => ">>",
        Token::EqEq => "==",
        Token::NotEq => "!=",
        Token::Le => "<=",
        Token::Ge => ">=",
        Token::AndAnd => "&&",
        Token::OrOr => "||",
        Token::PlusPlus => "++",
        Token::SatPlus => "|+|",
        Token::SatMinus => "|-|",
        Token::Eof => "<eof>",
        _ => "<token>",
    }
}

/// A token together with the position where it starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub token: Token,
    pub pos: Pos,
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises `source`.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    index: usize,
    pos: Pos,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            chars: source.chars().collect(),
            index: 0,
            pos: Pos::start(),
            source,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.index).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.index + 1).copied()
    }

    fn peek3(&self) -> Option<char> {
        self.chars.get(self.index + 2).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.index += 1;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.column = 1;
        } else {
            self.pos.column += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            pos: self.pos,
        }
    }

    fn run(mut self) -> Result<Vec<Spanned>, LexError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos;
            let Some(c) = self.peek() else {
                tokens.push(Spanned {
                    token: Token::Eof,
                    pos,
                });
                return Ok(tokens);
            };
            let token = if c.is_ascii_alphabetic() || c == '_' {
                self.identifier()
            } else if c.is_ascii_digit() {
                self.number()?
            } else if c == '#' {
                self.include()?
            } else {
                self.punctuation()?
            };
            tokens.push(Spanned { token, pos });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn identifier(&mut self) -> Token {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Token::Identifier(name)
    }

    fn number(&mut self) -> Result<Token, LexError> {
        let mut digits = String::new();
        let radix = if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            16
        } else if self.peek() == Some('0') && matches!(self.peek2(), Some('b') | Some('B'))
            // `0b...` only when followed by a binary digit, so `0` parses fine.
            && matches!(self.peek3(), Some('0') | Some('1'))
        {
            self.bump();
            self.bump();
            2
        } else {
            10
        };
        while let Some(c) = self.peek() {
            if c.is_digit(radix) || c == '_' {
                if c != '_' {
                    digits.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(self.error("malformed number literal"));
        }
        let value = u128::from_str_radix(&digits, radix)
            .map_err(|_| self.error(format!("integer literal out of range: {digits}")))?;
        // Width prefix syntax: `8w255`, `4s3` (the leading number is the width).
        if radix == 10 && matches!(self.peek(), Some('w') | Some('s')) {
            let signed = self.peek() == Some('s');
            self.bump();
            let width = u32::try_from(value).map_err(|_| self.error("bit width too large"))?;
            let mut value_digits = String::new();
            let value_radix =
                if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
                    self.bump();
                    self.bump();
                    16
                } else {
                    10
                };
            while let Some(c) = self.peek() {
                if c.is_digit(value_radix) || c == '_' {
                    if c != '_' {
                        value_digits.push(c);
                    }
                    self.bump();
                } else {
                    break;
                }
            }
            if value_digits.is_empty() {
                return Err(self.error("sized literal missing a value"));
            }
            let literal = u128::from_str_radix(&value_digits, value_radix)
                .map_err(|_| self.error("sized literal out of range"))?;
            return Ok(Token::SizedNumber {
                width,
                value: literal,
                signed,
            });
        }
        Ok(Token::Number(value))
    }

    fn include(&mut self) -> Result<Token, LexError> {
        // `#include <name.p4>` — consume up to the closing `>`.
        let start = self.index;
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let line: String = self.chars[start..self.index].iter().collect();
        let name = line
            .trim_start_matches('#')
            .trim()
            .trim_start_matches("include")
            .trim()
            .trim_start_matches('<')
            .trim_end_matches('>')
            .trim_end_matches(".p4")
            .to_string();
        if name.is_empty() {
            return Err(self.error(format!(
                "malformed preprocessor line in {}",
                self.source.len()
            )));
        }
        Ok(Token::Include(name))
    }

    fn punctuation(&mut self) -> Result<Token, LexError> {
        let c = self.bump().expect("caller checked a character is present");
        let token = match c {
            '(' => Token::LParen,
            ')' => Token::RParen,
            '{' => Token::LBrace,
            '}' => Token::RBrace,
            '[' => Token::LBracket,
            ']' => Token::RBracket,
            ';' => Token::Semicolon,
            ':' => Token::Colon,
            ',' => Token::Comma,
            '.' => Token::Dot,
            '~' => Token::Tilde,
            '^' => Token::Caret,
            '*' => Token::Star,
            '?' => Token::Question,
            '+' => {
                if self.peek() == Some('+') {
                    self.bump();
                    Token::PlusPlus
                } else {
                    Token::Plus
                }
            }
            '-' => Token::Minus,
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Token::EqEq
                } else {
                    Token::Assign
                }
            }
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Token::NotEq
                } else {
                    Token::Bang
                }
            }
            '<' => match self.peek() {
                Some('<') => {
                    self.bump();
                    Token::Shl
                }
                Some('=') => {
                    self.bump();
                    Token::Le
                }
                _ => Token::LAngle,
            },
            '>' => match self.peek() {
                Some('>') => {
                    self.bump();
                    Token::Shr
                }
                Some('=') => {
                    self.bump();
                    Token::Ge
                }
                _ => Token::RAngle,
            },
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    Token::AndAnd
                } else {
                    Token::Amp
                }
            }
            '|' => match (self.peek(), self.peek2()) {
                (Some('|'), _) => {
                    self.bump();
                    Token::OrOr
                }
                (Some('+'), Some('|')) => {
                    self.bump();
                    self.bump();
                    Token::SatPlus
                }
                (Some('-'), Some('|')) => {
                    self.bump();
                    self.bump();
                    Token::SatMinus
                }
                _ => Token::Pipe,
            },
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        Ok(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(source: &str) -> Vec<Token> {
        lex(source).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_identifiers_and_punctuation() {
        assert_eq!(
            tokens("hdr.h.a = 1;"),
            vec![
                Token::Identifier("hdr".into()),
                Token::Dot,
                Token::Identifier("h".into()),
                Token::Dot,
                Token::Identifier("a".into()),
                Token::Assign,
                Token::Number(1),
                Token::Semicolon,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_sized_literals() {
        assert_eq!(
            tokens("8w255 4s3 16w0xbeef"),
            vec![
                Token::SizedNumber {
                    width: 8,
                    value: 255,
                    signed: false
                },
                Token::SizedNumber {
                    width: 4,
                    value: 3,
                    signed: true
                },
                Token::SizedNumber {
                    width: 16,
                    value: 0xbeef,
                    signed: false
                },
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_hex_and_binary() {
        assert_eq!(
            tokens("0x1F 0b101 0"),
            vec![
                Token::Number(0x1f),
                Token::Number(0b101),
                Token::Number(0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_includes() {
        let src = "// line comment\n#include <core.p4>\n/* block */ x";
        assert_eq!(
            tokens(src),
            vec![
                Token::Include("core".into()),
                Token::Identifier("x".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_multi_character_operators() {
        assert_eq!(
            tokens("a << b >> c |+| d |-| e ++ f && g || h != i == j <= k >= l"),
            vec![
                Token::Identifier("a".into()),
                Token::Shl,
                Token::Identifier("b".into()),
                Token::Shr,
                Token::Identifier("c".into()),
                Token::SatPlus,
                Token::Identifier("d".into()),
                Token::SatMinus,
                Token::Identifier("e".into()),
                Token::PlusPlus,
                Token::Identifier("f".into()),
                Token::AndAnd,
                Token::Identifier("g".into()),
                Token::OrOr,
                Token::Identifier("h".into()),
                Token::NotEq,
                Token::Identifier("i".into()),
                Token::EqEq,
                Token::Identifier("j".into()),
                Token::Le,
                Token::Identifier("k".into()),
                Token::Ge,
                Token::Identifier("l".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, column: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, column: 3 });
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("a $ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
