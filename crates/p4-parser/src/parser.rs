//! Recursive-descent parser producing `p4-ir` programs.
//!
//! The parser accepts the P4-16 subset that the ToP4 printer emits plus the
//! usual hand-written formatting, so that Gauntlet can re-parse the program
//! emitted after every compiler pass (paper §5.2: "We explicitly reparse
//! each emitted P4 file to also catch misbehavior in the parser and the ToP4
//! module").

use crate::lexer::{lex, Pos, Spanned, Token};
use p4_ir::{
    ActionDecl, ActionRef, Architecture, BinOp, Block, CallExpr, ConstantDecl, ControlDecl,
    Declaration, Direction, Expr, Field, FunctionDecl, HeaderDecl, KeyElement, MatchKind,
    PackageInstance, Param, ParserDecl, ParserState, Program, SelectCase, Statement, StructDecl,
    TableDecl, Transition, Type, TypedefDecl, UnOp,
};
use std::fmt;

/// A parse error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete program from source text.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source).map_err(|e| ParseError {
        message: e.message,
        pos: e.pos,
    })?;
    Parser::new(tokens).program()
}

/// Parses a single expression (used by tests and the STF harness).
pub fn parse_expression(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source).map_err(|e| ParseError {
        message: e.message,
        pos: e.pos,
    })?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expression()?;
    parser.expect(&Token::Eof)?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Spanned>,
    index: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Parser {
        Parser { tokens, index: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.index.min(self.tokens.len() - 1)].token
    }

    fn peek_at(&self, offset: usize) -> &Token {
        let i = (self.index + offset).min(self.tokens.len() - 1);
        &self.tokens[i].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.index.min(self.tokens.len() - 1)].pos
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.index.min(self.tokens.len() - 1)]
            .token
            .clone();
        if self.index < self.tokens.len() - 1 {
            self.index += 1;
        }
        token
    }

    fn error<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            pos: self.pos(),
        })
    }

    fn expect(&mut self, token: &Token) -> PResult<()> {
        if self.peek() == token {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected {token}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == token {
            self.bump();
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Token::Identifier(name) => {
                self.bump();
                Ok(name)
            }
            other => self.error(format!("expected an identifier, found {other}")),
        }
    }

    fn is_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Token::Identifier(name) if name == keyword)
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.is_keyword(keyword) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> PResult<()> {
        if self.eat_keyword(keyword) {
            Ok(())
        } else {
            self.error(format!("expected `{keyword}`, found {}", self.peek()))
        }
    }

    // ---- program structure ---------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut architecture = String::from("v1model");
        let mut declarations = Vec::new();
        let mut package = PackageInstance::default();
        loop {
            match self.peek().clone() {
                Token::Eof => break,
                Token::Include(name) => {
                    self.bump();
                    if name != "core" {
                        architecture = name;
                    }
                }
                Token::Identifier(word) => match word.as_str() {
                    "header" => declarations.push(Declaration::Header(self.header_decl()?)),
                    "struct" => declarations.push(Declaration::Struct(self.struct_decl()?)),
                    "typedef" => declarations.push(Declaration::Typedef(self.typedef_decl()?)),
                    "const" => declarations.push(self.constant_decl()?),
                    "action" => declarations.push(Declaration::Action(self.action_decl()?)),
                    "control" => declarations.push(Declaration::Control(self.control_decl()?)),
                    "parser" => declarations.push(Declaration::Parser(self.parser_decl()?)),
                    "table" => declarations.push(Declaration::Table(self.table_decl()?)),
                    "bit" | "int" | "bool" | "void" => {
                        declarations.push(self.function_or_variable()?)
                    }
                    _ => {
                        // Either a package instantiation `Pkg(a(), b()) main;`
                        // or a declaration with a user-defined type.
                        if matches!(self.peek_at(1), Token::LParen) {
                            package = self.package_instance(&architecture)?;
                        } else {
                            declarations.push(self.function_or_variable()?);
                        }
                    }
                },
                other => return self.error(format!("unexpected token {other} at top level")),
            }
        }
        Ok(Program {
            architecture,
            declarations,
            package,
        })
    }

    fn package_instance(&mut self, architecture: &str) -> PResult<PackageInstance> {
        let package = self.identifier()?;
        self.expect(&Token::LParen)?;
        let mut decls = Vec::new();
        while !self.eat(&Token::RParen) {
            let name = self.identifier()?;
            self.expect(&Token::LParen)?;
            self.expect(&Token::RParen)?;
            decls.push(name);
            if !self.eat(&Token::Comma) {
                self.expect(&Token::RParen)?;
                break;
            }
        }
        self.expect_keyword("main")?;
        self.expect(&Token::Semicolon)?;
        // Bind positionally to the architecture's slots.
        let bindings = match Architecture::by_name(architecture) {
            Some(arch) => arch
                .blocks
                .iter()
                .map(|b| b.slot.clone())
                .zip(decls.iter().cloned())
                .collect(),
            None => decls
                .iter()
                .enumerate()
                .map(|(i, d)| (format!("block{i}"), d.clone()))
                .collect(),
        };
        Ok(PackageInstance { package, bindings })
    }

    // ---- type and parameter parsing --------------------------------------

    fn parse_type(&mut self) -> PResult<Type> {
        let name = self.identifier()?;
        match name.as_str() {
            "bool" => Ok(Type::Bool),
            "void" => Ok(Type::Void),
            "packet_in" | "packet_out" => Ok(Type::Packet),
            "bit" | "int" => {
                self.expect(&Token::LAngle)?;
                let width = match self.bump() {
                    Token::Number(n) => u32::try_from(n).map_err(|_| ParseError {
                        message: "width too large".into(),
                        pos: self.pos(),
                    })?,
                    other => return self.error(format!("expected a bit width, found {other}")),
                };
                self.expect(&Token::RAngle)?;
                Ok(Type::Bits {
                    width,
                    signed: name == "int",
                })
            }
            _ => Ok(Type::Named(name)),
        }
    }

    fn parameter_list(&mut self) -> PResult<Vec<Param>> {
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        while !self.eat(&Token::RParen) {
            let direction = if self.eat_keyword("inout") {
                Direction::InOut
            } else if self.eat_keyword("out") {
                Direction::Out
            } else if self.is_keyword("in")
                && !matches!(self.peek_at(1), Token::Identifier(n) if n == "bit" || n == "int")
            {
                // `in` followed by a type; `in` itself can also be a type
                // name start, so check the next token is a type-ish token.
                self.bump();
                Direction::In
            } else if self.eat_keyword("in") {
                Direction::In
            } else {
                Direction::None
            };
            let ty = self.parse_type()?;
            let name = self.identifier()?;
            params.push(Param {
                direction,
                name,
                ty,
            });
            if !self.eat(&Token::Comma) {
                self.expect(&Token::RParen)?;
                break;
            }
        }
        Ok(params)
    }

    // ---- declarations ----------------------------------------------------

    fn header_decl(&mut self) -> PResult<HeaderDecl> {
        self.expect_keyword("header")?;
        let name = self.identifier()?;
        let fields = self.field_list()?;
        Ok(HeaderDecl { name, fields })
    }

    fn struct_decl(&mut self) -> PResult<StructDecl> {
        self.expect_keyword("struct")?;
        let name = self.identifier()?;
        let fields = self.field_list()?;
        Ok(StructDecl { name, fields })
    }

    fn field_list(&mut self) -> PResult<Vec<Field>> {
        self.expect(&Token::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Token::RBrace) {
            let ty = self.parse_type()?;
            let name = self.identifier()?;
            self.expect(&Token::Semicolon)?;
            fields.push(Field { name, ty });
        }
        Ok(fields)
    }

    fn typedef_decl(&mut self) -> PResult<TypedefDecl> {
        self.expect_keyword("typedef")?;
        let ty = self.parse_type()?;
        let name = self.identifier()?;
        self.expect(&Token::Semicolon)?;
        Ok(TypedefDecl { name, ty })
    }

    fn constant_decl(&mut self) -> PResult<Declaration> {
        self.expect_keyword("const")?;
        let ty = self.parse_type()?;
        let name = self.identifier()?;
        self.expect(&Token::Assign)?;
        let value = self.expression()?;
        self.expect(&Token::Semicolon)?;
        Ok(Declaration::Constant(ConstantDecl { name, ty, value }))
    }

    fn action_decl(&mut self) -> PResult<ActionDecl> {
        self.expect_keyword("action")?;
        let name = self.identifier()?;
        let params = self.parameter_list()?;
        let body = self.block()?;
        Ok(ActionDecl { name, params, body })
    }

    fn function_or_variable(&mut self) -> PResult<Declaration> {
        let ty = self.parse_type()?;
        let name = self.identifier()?;
        if matches!(self.peek(), Token::LParen) {
            let params = self.parameter_list()?;
            let body = self.block()?;
            Ok(Declaration::Function(FunctionDecl {
                name,
                return_type: ty,
                params,
                body,
            }))
        } else {
            let init = if self.eat(&Token::Assign) {
                Some(self.expression()?)
            } else {
                None
            };
            self.expect(&Token::Semicolon)?;
            Ok(Declaration::Variable { name, ty, init })
        }
    }

    fn control_decl(&mut self) -> PResult<ControlDecl> {
        self.expect_keyword("control")?;
        let name = self.identifier()?;
        let params = self.parameter_list()?;
        self.expect(&Token::LBrace)?;
        let mut locals = Vec::new();
        let mut apply = Block::empty();
        loop {
            if self.eat(&Token::RBrace) {
                break;
            }
            if self.is_keyword("apply") {
                self.bump();
                apply = self.block()?;
                continue;
            }
            locals.push(self.local_declaration()?);
        }
        Ok(ControlDecl {
            name,
            params,
            locals,
            apply,
        })
    }

    fn local_declaration(&mut self) -> PResult<Declaration> {
        match self.peek().clone() {
            Token::Identifier(word) => match word.as_str() {
                "action" => Ok(Declaration::Action(self.action_decl()?)),
                "table" => Ok(Declaration::Table(self.table_decl()?)),
                "const" => self.constant_decl(),
                _ => self.function_or_variable(),
            },
            other => self.error(format!("unexpected token {other} in declaration list")),
        }
    }

    fn parser_decl(&mut self) -> PResult<ParserDecl> {
        self.expect_keyword("parser")?;
        let name = self.identifier()?;
        let params = self.parameter_list()?;
        self.expect(&Token::LBrace)?;
        let mut locals = Vec::new();
        let mut states = Vec::new();
        loop {
            if self.eat(&Token::RBrace) {
                break;
            }
            if self.is_keyword("state") {
                states.push(self.parser_state()?);
            } else {
                locals.push(self.local_declaration()?);
            }
        }
        Ok(ParserDecl {
            name,
            params,
            locals,
            states,
        })
    }

    fn parser_state(&mut self) -> PResult<ParserState> {
        self.expect_keyword("state")?;
        let name = self.identifier()?;
        self.expect(&Token::LBrace)?;
        let mut statements = Vec::new();
        let mut transition = Transition::Direct("reject".into());
        loop {
            if self.eat(&Token::RBrace) {
                break;
            }
            if self.eat_keyword("transition") {
                transition = self.transition()?;
                continue;
            }
            statements.push(self.statement()?);
        }
        Ok(ParserState {
            name,
            statements,
            transition,
        })
    }

    fn transition(&mut self) -> PResult<Transition> {
        if self.eat_keyword("select") {
            self.expect(&Token::LParen)?;
            let selector = self.expression()?;
            self.expect(&Token::RParen)?;
            self.expect(&Token::LBrace)?;
            let mut cases = Vec::new();
            while !self.eat(&Token::RBrace) {
                let value = if self.eat_keyword("default") || self.eat_keyword("_") {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&Token::Colon)?;
                let next_state = self.identifier()?;
                self.expect(&Token::Semicolon)?;
                cases.push(SelectCase { value, next_state });
            }
            Ok(Transition::Select { selector, cases })
        } else {
            let next = self.identifier()?;
            self.expect(&Token::Semicolon)?;
            Ok(Transition::Direct(next))
        }
    }

    fn table_decl(&mut self) -> PResult<TableDecl> {
        self.expect_keyword("table")?;
        let name = self.identifier()?;
        self.expect(&Token::LBrace)?;
        let mut keys = Vec::new();
        let mut actions = Vec::new();
        let mut default_action = ActionRef::new("NoAction");
        while !self.eat(&Token::RBrace) {
            if self.eat_keyword("key") {
                self.expect(&Token::Assign)?;
                self.expect(&Token::LBrace)?;
                while !self.eat(&Token::RBrace) {
                    let expr = self.expression()?;
                    self.expect(&Token::Colon)?;
                    let kind = self.identifier()?;
                    let match_kind = match kind.as_str() {
                        "exact" => MatchKind::Exact,
                        "ternary" => MatchKind::Ternary,
                        "lpm" => MatchKind::Lpm,
                        other => return self.error(format!("unknown match kind `{other}`")),
                    };
                    self.expect(&Token::Semicolon)?;
                    keys.push(KeyElement { expr, match_kind });
                }
                self.eat(&Token::Semicolon);
            } else if self.eat_keyword("actions") {
                self.expect(&Token::Assign)?;
                self.expect(&Token::LBrace)?;
                while !self.eat(&Token::RBrace) {
                    actions.push(self.action_ref()?);
                    self.expect(&Token::Semicolon)?;
                }
                self.eat(&Token::Semicolon);
            } else if self.eat_keyword("default_action") {
                self.expect(&Token::Assign)?;
                default_action = self.action_ref()?;
                self.expect(&Token::Semicolon)?;
            } else {
                return self.error(format!("unknown table property {}", self.peek()));
            }
        }
        Ok(TableDecl {
            name,
            keys,
            actions,
            default_action,
        })
    }

    fn action_ref(&mut self) -> PResult<ActionRef> {
        let name = self.identifier()?;
        let mut args = Vec::new();
        if self.eat(&Token::LParen) {
            while !self.eat(&Token::RParen) {
                args.push(self.expression()?);
                if !self.eat(&Token::Comma) {
                    self.expect(&Token::RParen)?;
                    break;
                }
            }
        }
        Ok(ActionRef { name, args })
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        self.expect(&Token::LBrace)?;
        let mut statements = Vec::new();
        while !self.eat(&Token::RBrace) {
            statements.push(self.statement()?);
        }
        Ok(Block { statements })
    }

    fn statement(&mut self) -> PResult<Statement> {
        match self.peek().clone() {
            Token::LBrace => Ok(Statement::Block(self.block()?)),
            Token::Semicolon => {
                self.bump();
                Ok(Statement::Empty)
            }
            Token::Identifier(word) => match word.as_str() {
                "if" => self.if_statement(),
                "exit" => {
                    self.bump();
                    self.expect(&Token::Semicolon)?;
                    Ok(Statement::Exit)
                }
                "return" => {
                    self.bump();
                    if self.eat(&Token::Semicolon) {
                        Ok(Statement::Return(None))
                    } else {
                        let expr = self.expression()?;
                        self.expect(&Token::Semicolon)?;
                        Ok(Statement::Return(Some(expr)))
                    }
                }
                "const" => {
                    self.bump();
                    let ty = self.parse_type()?;
                    let name = self.identifier()?;
                    self.expect(&Token::Assign)?;
                    let value = self.expression()?;
                    self.expect(&Token::Semicolon)?;
                    Ok(Statement::Constant { name, ty, value })
                }
                "bit" | "int" | "bool" => self.declaration_statement(),
                _ => {
                    // Named-type declaration (`h_t tmp;`) vs assignment/call.
                    if matches!(self.peek_at(1), Token::Identifier(_)) {
                        self.declaration_statement()
                    } else {
                        self.assignment_or_call()
                    }
                }
            },
            other => self.error(format!("unexpected token {other} at start of a statement")),
        }
    }

    fn declaration_statement(&mut self) -> PResult<Statement> {
        let ty = self.parse_type()?;
        let name = self.identifier()?;
        let init = if self.eat(&Token::Assign) {
            Some(self.expression()?)
        } else {
            None
        };
        self.expect(&Token::Semicolon)?;
        Ok(Statement::Declare { name, ty, init })
    }

    fn if_statement(&mut self) -> PResult<Statement> {
        self.expect_keyword("if")?;
        self.expect(&Token::LParen)?;
        let cond = self.expression()?;
        self.expect(&Token::RParen)?;
        let then_branch = Box::new(self.statement()?);
        let else_branch = if self.eat_keyword("else") {
            Some(Box::new(self.statement()?))
        } else {
            None
        };
        Ok(Statement::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn assignment_or_call(&mut self) -> PResult<Statement> {
        let expr = self.expression()?;
        if self.eat(&Token::Assign) {
            let rhs = self.expression()?;
            self.expect(&Token::Semicolon)?;
            if !expr.is_lvalue() {
                return self.error("left-hand side of an assignment must be an l-value");
            }
            Ok(Statement::Assign { lhs: expr, rhs })
        } else {
            self.expect(&Token::Semicolon)?;
            match expr {
                Expr::Call(call) => Ok(Statement::Call(*call)),
                other => self.error(format!(
                    "expression statement must be a call, found {other:?}"
                )),
            }
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expression(&mut self) -> PResult<Expr> {
        self.ternary_expr()
    }

    fn ternary_expr(&mut self) -> PResult<Expr> {
        let cond = self.or_expr()?;
        if self.eat(&Token::Question) {
            let then_expr = self.expression()?;
            self.expect(&Token::Colon)?;
            let else_expr = self.expression()?;
            Ok(Expr::ternary(cond, then_expr, else_expr))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat(&Token::OrOr) {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut left = self.equality_expr()?;
        while self.eat(&Token::AndAnd) {
            let right = self.equality_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn equality_expr(&mut self) -> PResult<Expr> {
        let mut left = self.relational_expr()?;
        loop {
            let op = if self.eat(&Token::EqEq) {
                BinOp::Eq
            } else if self.eat(&Token::NotEq) {
                BinOp::Ne
            } else {
                break;
            };
            let right = self.relational_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn relational_expr(&mut self) -> PResult<Expr> {
        let mut left = self.bitor_expr()?;
        loop {
            let op = if self.eat(&Token::LAngle) {
                BinOp::Lt
            } else if self.eat(&Token::RAngle) {
                BinOp::Gt
            } else if self.eat(&Token::Le) {
                BinOp::Le
            } else if self.eat(&Token::Ge) {
                BinOp::Ge
            } else {
                break;
            };
            let right = self.bitor_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn bitor_expr(&mut self) -> PResult<Expr> {
        let mut left = self.bitxor_expr()?;
        while self.eat(&Token::Pipe) {
            let right = self.bitxor_expr()?;
            left = Expr::binary(BinOp::BitOr, left, right);
        }
        Ok(left)
    }

    fn bitxor_expr(&mut self) -> PResult<Expr> {
        let mut left = self.bitand_expr()?;
        while self.eat(&Token::Caret) {
            let right = self.bitand_expr()?;
            left = Expr::binary(BinOp::BitXor, left, right);
        }
        Ok(left)
    }

    fn bitand_expr(&mut self) -> PResult<Expr> {
        let mut left = self.shift_expr()?;
        while self.eat(&Token::Amp) {
            let right = self.shift_expr()?;
            left = Expr::binary(BinOp::BitAnd, left, right);
        }
        Ok(left)
    }

    fn shift_expr(&mut self) -> PResult<Expr> {
        let mut left = self.additive_expr()?;
        loop {
            let op = if self.eat(&Token::Shl) {
                BinOp::Shl
            } else if self.eat(&Token::Shr) {
                BinOp::Shr
            } else {
                break;
            };
            let right = self.additive_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn additive_expr(&mut self) -> PResult<Expr> {
        let mut left = self.multiplicative_expr()?;
        loop {
            let op = if self.eat(&Token::Plus) {
                BinOp::Add
            } else if self.eat(&Token::Minus) {
                BinOp::Sub
            } else if self.eat(&Token::SatPlus) {
                BinOp::SatAdd
            } else if self.eat(&Token::SatMinus) {
                BinOp::SatSub
            } else if self.eat(&Token::PlusPlus) {
                BinOp::Concat
            } else {
                break;
            };
            let right = self.multiplicative_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative_expr(&mut self) -> PResult<Expr> {
        let mut left = self.unary_expr()?;
        while self.eat(&Token::Star) {
            let right = self.unary_expr()?;
            left = Expr::binary(BinOp::Mul, left, right);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.eat(&Token::Bang) {
            return Ok(Expr::unary(UnOp::Not, self.unary_expr()?));
        }
        if self.eat(&Token::Tilde) {
            return Ok(Expr::unary(UnOp::BitNot, self.unary_expr()?));
        }
        if self.eat(&Token::Minus) {
            return Ok(Expr::unary(UnOp::Neg, self.unary_expr()?));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut expr = self.primary_expr()?;
        loop {
            if self.eat(&Token::Dot) {
                let member = self.identifier()?;
                expr = Expr::member(expr, member);
            } else if self.eat(&Token::LBracket) {
                let hi = self.const_u32()?;
                self.expect(&Token::Colon)?;
                let lo = self.const_u32()?;
                self.expect(&Token::RBracket)?;
                expr = Expr::Slice {
                    base: Box::new(expr),
                    hi,
                    lo,
                };
            } else if matches!(self.peek(), Token::LParen) {
                // Call: the callee must be a dotted path.
                let target = match path_components(&expr) {
                    Some(parts) => parts,
                    None => return self.error("call target must be a dotted name"),
                };
                self.bump();
                let mut args = Vec::new();
                while !self.eat(&Token::RParen) {
                    args.push(self.expression()?);
                    if !self.eat(&Token::Comma) {
                        self.expect(&Token::RParen)?;
                        break;
                    }
                }
                expr = Expr::Call(Box::new(CallExpr { target, args }));
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn const_u32(&mut self) -> PResult<u32> {
        match self.bump() {
            Token::Number(n) => u32::try_from(n).map_err(|_| ParseError {
                message: "index out of range".into(),
                pos: self.pos(),
            }),
            Token::SizedNumber { value, .. } => u32::try_from(value).map_err(|_| ParseError {
                message: "index out of range".into(),
                pos: self.pos(),
            }),
            other => self.error(format!("expected a constant index, found {other}")),
        }
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            Token::Number(value) => {
                self.bump();
                Ok(Expr::Int {
                    value,
                    width: None,
                    signed: false,
                })
            }
            Token::SizedNumber {
                width,
                value,
                signed,
            } => {
                self.bump();
                Ok(Expr::Int {
                    value,
                    width: Some(width),
                    signed,
                })
            }
            Token::Identifier(name) => match name.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Bool(false))
                }
                _ => {
                    self.bump();
                    Ok(Expr::Path(name))
                }
            },
            Token::LParen => {
                self.bump();
                // Either a cast `(type)(expr)` / `(type)expr` or a
                // parenthesised expression.
                if self.looks_like_cast() {
                    let ty = self.parse_type()?;
                    self.expect(&Token::RParen)?;
                    let operand = self.unary_expr()?;
                    Ok(Expr::cast(ty, operand))
                } else {
                    let expr = self.expression()?;
                    self.expect(&Token::RParen)?;
                    Ok(expr)
                }
            }
            other => self.error(format!("unexpected token {other} in an expression")),
        }
    }

    /// After consuming a `(`, decides whether the contents form a cast.
    fn looks_like_cast(&self) -> bool {
        match self.peek() {
            Token::Identifier(name) => match name.as_str() {
                "bit" | "int" => matches!(self.peek_at(1), Token::LAngle),
                "bool" => matches!(self.peek_at(1), Token::RParen),
                _ => {
                    // `(h_t)(...)`: a named type cast — identifier followed
                    // directly by `)` and then `(` or an identifier.
                    matches!(self.peek_at(1), Token::RParen)
                        && matches!(self.peek_at(2), Token::LParen | Token::Identifier(_))
                }
            },
            _ => false,
        }
    }
}

/// Extracts the dotted path components of a pure member-access chain.
fn path_components(expr: &Expr) -> Option<Vec<String>> {
    match expr {
        Expr::Path(name) => Some(vec![name.clone()]),
        Expr::Member { base, member } => {
            let mut parts = path_components(base)?;
            parts.push(member.clone());
            Some(parts)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::print_program;

    #[test]
    fn parses_expressions_with_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                BinOp::Add,
                Expr::int(1),
                Expr::binary(BinOp::Mul, Expr::int(2), Expr::int(3))
            )
        );
        let e = parse_expression("a == b && c != d").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn parses_sized_literals_slices_and_casts() {
        let e = parse_expression("(bit<4>)(h.a[7:4])").unwrap();
        assert_eq!(
            e,
            Expr::cast(Type::bits(4), Expr::slice(Expr::dotted(&["h", "a"]), 7, 4))
        );
        let e = parse_expression("8w255 |+| 8w1").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::SatAdd,
                ..
            }
        ));
    }

    #[test]
    fn parses_calls_with_dotted_targets() {
        let e = parse_expression("hdr.h.isValid()").unwrap();
        match e {
            Expr::Call(call) => {
                assert_eq!(call.target, vec!["hdr", "h", "isValid"]);
                assert!(call.args.is_empty());
            }
            other => panic!("expected a call, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_control() {
        let src = r#"
            struct headers_t { bit<8> a; }
            control ig(inout headers_t hdr) {
                action set_a() { hdr.a = 8w1; }
                table t {
                    key = { hdr.a : exact; }
                    actions = { set_a(); NoAction(); }
                    default_action = NoAction();
                }
                apply {
                    if (hdr.a == 8w0) {
                        t.apply();
                    } else {
                        hdr.a = hdr.a + 8w1;
                    }
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let control = program.control("ig").unwrap();
        assert_eq!(control.locals.len(), 2);
        assert_eq!(control.apply.statements.len(), 1);
        match &control.apply.statements[0] {
            Statement::If { else_branch, .. } => assert!(else_branch.is_some()),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_parser_with_select() {
        let src = r#"
            header eth_t { bit<16> etype; }
            struct headers_t { eth_t eth; }
            parser p(packet_in packet, out headers_t hdr) {
                state start {
                    packet.extract(hdr.eth);
                    transition select(hdr.eth.etype) {
                        16w2048: parse_more;
                        default: accept;
                    }
                }
                state parse_more {
                    transition accept;
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let parser = program.parser("p").unwrap();
        assert_eq!(parser.states.len(), 2);
        match &parser.states[0].transition {
            Transition::Select { cases, .. } => assert_eq!(cases.len(), 2),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_package_instantiation_with_architecture() {
        let src = r#"
            #include <core.p4>
            #include <v1model.p4>
            struct headers_t { bit<8> a; }
            struct metadata_t { bit<8> m; }
            parser p(packet_in packet, out headers_t hdr, inout metadata_t meta, inout standard_metadata_t standard_metadata) {
                state start { transition accept; }
            }
            control ig(inout headers_t hdr, inout metadata_t meta, inout standard_metadata_t standard_metadata) { apply { } }
            control eg(inout headers_t hdr, inout metadata_t meta, inout standard_metadata_t standard_metadata) { apply { } }
            control dep(packet_in packet, in headers_t hdr) { apply { } }
            V1Switch(p(), ig(), eg(), dep()) main;
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.architecture, "v1model");
        assert_eq!(program.package.package, "V1Switch");
        assert_eq!(program.package.binding("ingress"), Some("ig"));
        assert_eq!(program.package.binding("deparser"), Some("dep"));
    }

    #[test]
    fn roundtrips_builder_skeleton_through_print_and_parse() {
        let original = p4_ir::builder::trivial_program();
        let text = print_program(&original);
        let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(print_program(&reparsed), text);
    }

    #[test]
    fn roundtrips_figure3_program() {
        let (locals, apply) = p4_ir::builder::figure3_table_control();
        let original = p4_ir::builder::v1model_program(locals, apply);
        let text = print_program(&original);
        let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(print_program(&reparsed), text);
        assert_eq!(reparsed, original);
    }

    #[test]
    fn rejects_malformed_programs() {
        assert!(parse_program("header h {").is_err());
        assert!(parse_program("control c() { apply { 1 = 2; } }").is_err());
        assert!(parse_program("control c() { apply { x + 1; } }").is_err());
    }

    #[test]
    fn parses_exit_return_and_declarations() {
        let src = r#"
            control ig(inout bit<8> x) {
                apply {
                    bit<8> tmp = x + 8w1;
                    const bit<8> k = 8w7;
                    if (tmp == k) {
                        exit;
                    }
                    return;
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let control = program.control("ig").unwrap();
        assert_eq!(control.apply.statements.len(), 4);
    }
}
