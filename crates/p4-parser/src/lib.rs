//! # p4-parser — lexer and parser for the P4-16 subset
//!
//! Turns P4 source text into `p4-ir` programs.  Gauntlet uses this both for
//! input programs and to re-parse the program emitted by the ToP4 printer
//! after every compiler pass, which is how it catches "invalid
//! transformation" bugs (paper §7.2).

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Pos, Spanned, Token};
pub use parser::{parse_expression, parse_program, ParseError};
