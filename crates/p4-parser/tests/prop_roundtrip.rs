//! Property-based round-trip tests: printing an arbitrary (well-formed)
//! expression or statement and parsing it back must be the identity up to
//! re-printing.  This is the invariant Gauntlet relies on when it re-parses
//! the program emitted after every compiler pass.

use p4_ir::{print_expr, print_statement, BinOp, Block, Expr, Statement, Type, UnOp};
use p4_parser::parse_expression;
use proptest::prelude::*;

fn identifier() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("hdr".to_string()),
        Just("meta".to_string()),
        Just("val".to_string()),
        Just("tmp_0".to_string()),
        Just("x".to_string()),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u64..1 << 16, 1u32..32).prop_map(|(value, width)| Expr::uint(u128::from(value), width)),
        any::<bool>().prop_map(Expr::Bool),
        identifier().prop_map(Expr::Path),
        (identifier(), identifier()).prop_map(|(a, b)| Expr::member(Expr::path(a), b)),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        let binop = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::BitAnd),
            Just(BinOp::BitOr),
            Just(BinOp::BitXor),
            Just(BinOp::Shl),
            Just(BinOp::Shr),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Lt),
            Just(BinOp::SatAdd),
            Just(BinOp::Concat),
        ];
        prop_oneof![
            (binop, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::binary(op, a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| Expr::ternary(
                Expr::binary(BinOp::Eq, c, Expr::uint(0, 8)),
                a,
                b
            )),
            inner.clone().prop_map(|e| Expr::unary(UnOp::BitNot, e)),
            inner.clone().prop_map(|e| Expr::cast(Type::bits(16), e)),
            (inner.clone(), 0u32..8, 8u32..16).prop_map(|(e, lo, hi)| Expr::slice(
                Expr::cast(Type::bits(32), e),
                hi,
                lo
            )),
            inner.prop_map(|e| Expr::call(vec!["f"], vec![e])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// print → parse → print is the identity on expressions.
    #[test]
    fn expression_roundtrip_is_stable(expr in arb_expr()) {
        let printed = print_expr(&expr);
        let reparsed = parse_expression(&printed)
            .unwrap_or_else(|e| panic!("failed to re-parse `{printed}`: {e}"));
        prop_assert_eq!(print_expr(&reparsed), printed);
    }

    /// Statements built from round-trippable expressions also round trip
    /// (via a small synthetic control wrapper).
    #[test]
    fn statement_roundtrip_is_stable(lhs in identifier(), rhs in arb_expr(), cond in arb_expr()) {
        let statement = Statement::if_else(
            Expr::binary(BinOp::Eq, Expr::cast(Type::bits(8), cond), Expr::uint(1, 8)),
            Statement::Block(Block::new(vec![Statement::assign(Expr::path(lhs), rhs)])),
            Statement::Block(Block::new(vec![Statement::Exit])),
        );
        let printed = print_statement(&statement);
        // Wrap in a minimal control so the full program parser accepts it.
        let program_text = format!(
            "control c(inout bit<8> hdr, inout bit<8> meta, inout bit<8> val, inout bit<8> tmp_0, inout bit<8> x) {{ apply {{\n{printed}\n}} }}"
        );
        let program = p4_parser::parse_program(&program_text)
            .unwrap_or_else(|e| panic!("failed to parse wrapper: {e}\n{program_text}"));
        let control = program.control("c").expect("control exists");
        let reprinted = print_statement(&control.apply.statements[0]);
        // Re-printing after a second parse must be a fixed point.
        let reparsed_again = p4_parser::parse_program(&p4_ir::print_program(&program)).expect("fixed point");
        prop_assert_eq!(p4_ir::print_program(&reparsed_again), p4_ir::print_program(&program));
        prop_assert!(!reprinted.is_empty());
    }
}
