//! The unified back-end abstraction: one [`Target`] trait that every
//! simulated back end implements, so the validation/testgen pipeline drives
//! BMv2, Tofino, and the reference interpreter through the *same* call
//! sequence (paper §6: one pipeline, many compilers).
//!
//! A target is a compiler plus a test harness:
//!
//! * [`Target::compile`] turns a P4 program into an opaque [`Artifact`]
//!   (crashes and restriction rejections surface as [`TargetError`]);
//! * [`Target::run`] replays generated test cases on the artifact through
//!   the shared [`crate::harness::run_batch`] path;
//! * [`Target::capabilities`] advertises what the target supports
//!   (crash-only vs semantic testing, the undefined-read policy the
//!   test-generation oracle must adopt, the block tests are generated for).
//!
//! [`drive_target`] is the one shared "compile, generate tests, replay,
//! summarise" driver.  Both the detection pipeline (`gauntlet-core`) and the
//! reduction oracles (`p4-reduce`) call it, which pins their finding
//! messages — and therefore their de-duplication keys — together by
//! construction.

use crate::concrete::UndefinedPolicy;
use crate::harness::{run_batch, TestOutcome, TestReport};
use p4_ir::Program;
use p4_symbolic::{generate_tests, TestCase, TestGenOptions};
use std::fmt;

/// Errors from a target's compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetError {
    /// The target's compiler crashed (assertion violation in a back-end
    /// pass).  Always a bug.
    Crash { pass: String, message: String },
    /// The target's compiler rejected the program with a diagnostic.  For
    /// back ends this is a *restriction*, not a bug: the program is simply
    /// outside the supported subset.
    Rejected { message: String },
}

impl TargetError {
    pub fn is_crash(&self) -> bool {
        matches!(self, TargetError::Crash { .. })
    }
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::Crash { pass, message } => {
                write!(f, "target compiler crash in `{pass}`: {message}")
            }
            TargetError::Rejected { message } => write!(f, "target compiler error: {message}"),
        }
    }
}

impl std::error::Error for TargetError {}

/// Every in-tree back end compiles through the shared front/mid end, so
/// they share one conversion of its errors.  The `Rejected` message format
/// feeds de-duplication keys — changing it here changes every target's
/// keys in lock-step instead of letting them drift apart.
impl From<p4c::CompileError> for TargetError {
    fn from(error: p4c::CompileError) -> TargetError {
        match error {
            p4c::CompileError::Crash { pass, message, .. } => TargetError::Crash { pass, message },
            p4c::CompileError::Rejected { pass, diagnostics } => TargetError::Rejected {
                message: format!("{pass}: {}", diagnostics.join("; ")),
            },
        }
    }
}

/// What a target supports; consumed by [`drive_target`] and by the
/// differential driver in `gauntlet-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetCaps {
    /// Whether the target can execute tests at all.  `false` means the
    /// target is crash-only: compiling it is the entire check (useful for
    /// back ends whose simulator is unavailable).
    pub semantic_tests: bool,
    /// The policy the target applies to reads of undefined values.  Test
    /// generation must adopt the same policy when computing expected
    /// outputs, or every undefined read becomes a false alarm (§6.2).
    pub undefined_reads: UndefinedPolicy,
    /// The architecture slot end-to-end tests are generated for.
    pub test_block: &'static str,
}

impl Default for TargetCaps {
    fn default() -> Self {
        TargetCaps {
            semantic_tests: true,
            undefined_reads: UndefinedPolicy::Zero,
            test_block: "ingress",
        }
    }
}

/// A compiled program loaded into a target, able to execute one test case.
/// The representation is target-private; callers interact through packets
/// only (the paper's black-box access model).
pub trait LoadedArtifact {
    fn run_test(&self, test: &TestCase) -> TestOutcome;
}

/// An opaque compiled artifact returned by [`Target::compile`].
pub struct Artifact {
    inner: Box<dyn LoadedArtifact>,
}

impl Artifact {
    pub fn new(inner: impl LoadedArtifact + 'static) -> Artifact {
        Artifact {
            inner: Box::new(inner),
        }
    }

    /// Replays one test case on the loaded artifact.
    pub fn run_test(&self, test: &TestCase) -> TestOutcome {
        self.inner.run_test(test)
    }
}

impl fmt::Debug for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Artifact").finish_non_exhaustive()
    }
}

/// One back end the pipeline can drive: a compiler plus a test harness.
///
/// Implementations are registered in the [`crate::registry::TargetRegistry`]
/// so campaigns can select back ends by name; see the "Adding a new target"
/// section of the README for the contract and a worked example.
pub trait Target: fmt::Debug {
    /// Registry key and stable identifier, e.g. `"bmv2"`.
    fn name(&self) -> &'static str;

    /// The platform label used in bug reports and de-duplication keys.
    /// Must match the `Debug` form of `gauntlet-core`'s `Platform` variant
    /// for this target (`"Bmv2"`, `"Tofino"`, `"RefInterp"`, ...).
    fn platform_label(&self) -> &'static str;

    /// Short name of the target's test framework, used in finding messages
    /// (`"STF"` for BMv2, `"PTF"` for Tofino, `"REF"` for the reference
    /// interpreter).
    fn harness(&self) -> &'static str;

    /// What the target supports.  The default is a semantic target with the
    /// zero policy for undefined reads, tested through the `ingress` block.
    fn capabilities(&self) -> TargetCaps {
        TargetCaps::default()
    }

    /// Compiles a program for this target.  The intermediate representation
    /// is not exposed; only a loadable artifact comes back.
    fn compile(&self, program: &Program) -> Result<Artifact, TargetError>;

    /// Replays a batch of generated tests on a compiled artifact and
    /// aggregates the report.  The default goes through the shared
    /// [`run_batch`] path; targets should rarely need to override it.
    fn run(&self, artifact: &Artifact, tests: &[TestCase]) -> TestReport {
        run_batch(tests, |test| artifact.run_test(test))
    }
}

/// A platform-agnostic finding produced by [`drive_target`].  The caller
/// decides how to package it (a `BugReport` in `gauntlet-core`, a dedup-key
/// signature in `p4-reduce`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetFinding {
    /// The target's compiler crashed.
    Crash { pass: String, message: String },
    /// Generated tests exposed a behavioural divergence from the input
    /// program's semantics.
    Semantic { message: String },
}

/// The shared single-target check: compile `program` for `target`, generate
/// tests from the input program's symbolic semantics, replay them, and
/// summarise divergences.  Restriction rejections and untestable programs
/// yield no findings, exactly as the paper skips unsupported constructs
/// (§8).
pub fn drive_target(
    target: &dyn Target,
    program: &Program,
    max_tests: usize,
) -> Vec<TargetFinding> {
    let artifact = match target.compile(program) {
        Ok(artifact) => artifact,
        Err(TargetError::Crash { pass, message }) => {
            return vec![TargetFinding::Crash { pass, message }];
        }
        Err(TargetError::Rejected { .. }) => return Vec::new(),
    };
    let caps = target.capabilities();
    if !caps.semantic_tests {
        return Vec::new();
    }
    let tests = match generate_tests(program, &testgen_options(&caps, max_tests)) {
        Ok(tests) => tests,
        Err(_) => return Vec::new(),
    };
    let report = target.run(&artifact, &tests);
    if report.found_semantic_bug() {
        let first = &report.mismatches[0];
        // Failed *tests*, not per-field mismatches (one test can diverge
        // on several output fields).
        let failed = report.total - report.passed - report.skipped;
        vec![TargetFinding::Semantic {
            message: format!(
                "{} mismatch on `{}`: expected {:?}, observed {:?} ({} of {} tests failed)",
                target.harness(),
                first.field,
                first.expected,
                first.actual,
                failed,
                report.total
            ),
        }]
    } else {
        Vec::new()
    }
}

/// The test-generation options matching a target's capabilities.
pub fn testgen_options(caps: &TargetCaps, max_tests: usize) -> TestGenOptions {
    TestGenOptions {
        max_tests,
        block: caps.test_block.into(),
        undefined_reads_zero: caps.undefined_reads == UndefinedPolicy::Zero,
        ..TestGenOptions::default()
    }
}
