//! Back-end bug classes.
//!
//! Table 3 of the paper attributes 32 of the 78 bugs to compiler back ends
//! (4 in BMv2, 28 in the Tofino compiler).  These seeded defects model the
//! corresponding families: wrong lowering of language constructs in the
//! target's execution engine (semantic bugs, found by end-to-end testing)
//! and crashes in back-end-specific lowering passes (crash bugs).

use serde::{Deserialize, Serialize};

/// Which back end a bug class belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    Bmv2,
    Tofino,
}

impl Backend {
    /// The [`crate::registry::TargetRegistry`] name of this back end.
    pub fn target_name(self) -> &'static str {
        match self {
            Backend::Bmv2 => "bmv2",
            Backend::Tofino => "tofino",
        }
    }
}

/// The catalogue of seeded back-end defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackEndBugClass {
    /// BMv2: `exit` statements are ignored by the execution engine, so
    /// processing continues after an exit.
    Bmv2ExitIgnored,
    /// BMv2: an assignment to a bit slice overwrites the whole field
    /// (the Figure-5d family seen from the target side).
    Bmv2SliceWritesWholeField,
    /// Tofino: the back-end lowering pass crashes on slice l-values.
    TofinoSliceLoweringCrash,
    /// Tofino: saturating arithmetic is lowered to wrapping arithmetic.
    TofinoSaturationWraps,
    /// Tofino: `exit` is ignored in the ingress pipeline.
    TofinoExitIgnored,
    /// Tofino: header validity is ignored when reading `isValid()`
    /// (always reports `true`).
    TofinoValidityAlwaysTrue,
}

impl BackEndBugClass {
    pub fn all() -> Vec<BackEndBugClass> {
        use BackEndBugClass::*;
        vec![
            Bmv2ExitIgnored,
            Bmv2SliceWritesWholeField,
            TofinoSliceLoweringCrash,
            TofinoSaturationWraps,
            TofinoExitIgnored,
            TofinoValidityAlwaysTrue,
        ]
    }

    /// Parses the `Debug` name of a bug class, e.g. `"Bmv2ExitIgnored"`
    /// (used by registry spec strings such as `bmv2+Bmv2ExitIgnored`).
    pub fn parse(name: &str) -> Option<BackEndBugClass> {
        BackEndBugClass::all()
            .into_iter()
            .find(|bug| format!("{bug:?}") == name)
    }

    pub fn backend(self) -> Backend {
        match self {
            BackEndBugClass::Bmv2ExitIgnored | BackEndBugClass::Bmv2SliceWritesWholeField => {
                Backend::Bmv2
            }
            _ => Backend::Tofino,
        }
    }

    /// Whether the defect manifests as a crash during back-end compilation
    /// (true) or as a miscompilation visible only in packet behaviour.
    pub fn is_crash_class(self) -> bool {
        matches!(self, BackEndBugClass::TofinoSliceLoweringCrash)
    }
}

/// Behaviour switches consumed by the concrete execution engine.  The
/// correct target uses `ExecutionQuirks::default()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionQuirks {
    pub ignore_exit: bool,
    pub slice_writes_whole_field: bool,
    pub saturation_wraps: bool,
    pub validity_always_true: bool,
}

impl ExecutionQuirks {
    /// The quirks a seeded bug class induces at execution time.
    pub fn for_bug(bug: Option<BackEndBugClass>) -> ExecutionQuirks {
        let mut quirks = ExecutionQuirks::default();
        match bug {
            Some(BackEndBugClass::Bmv2ExitIgnored) | Some(BackEndBugClass::TofinoExitIgnored) => {
                quirks.ignore_exit = true;
            }
            Some(BackEndBugClass::Bmv2SliceWritesWholeField) => {
                quirks.slice_writes_whole_field = true;
            }
            Some(BackEndBugClass::TofinoSaturationWraps) => quirks.saturation_wraps = true,
            Some(BackEndBugClass::TofinoValidityAlwaysTrue) => quirks.validity_always_true = true,
            _ => {}
        }
        quirks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_both_backends() {
        let all = BackEndBugClass::all();
        assert!(all.iter().any(|b| b.backend() == Backend::Bmv2));
        assert!(all.iter().any(|b| b.backend() == Backend::Tofino));
        assert_eq!(all.iter().filter(|b| b.is_crash_class()).count(), 1);
    }

    #[test]
    fn bug_classes_round_trip_through_parse() {
        for bug in BackEndBugClass::all() {
            assert_eq!(BackEndBugClass::parse(&format!("{bug:?}")), Some(bug));
        }
        assert_eq!(BackEndBugClass::parse("NoSuchBug"), None);
    }

    #[test]
    fn quirks_map_bug_classes_to_switches() {
        assert!(ExecutionQuirks::for_bug(Some(BackEndBugClass::Bmv2ExitIgnored)).ignore_exit);
        assert!(
            ExecutionQuirks::for_bug(Some(BackEndBugClass::TofinoSaturationWraps)).saturation_wraps
        );
        assert_eq!(ExecutionQuirks::for_bug(None), ExecutionQuirks::default());
    }
}
