//! Shared test-harness types: the STF (BMv2) and PTF (Tofino) harnesses both
//! feed generated test cases to a target and compare observed against
//! expected outputs (paper §6.2).

use p4_symbolic::TestCase;
use smt::Value;
use std::collections::BTreeMap;

/// One observed/expected divergence.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    pub field: String,
    pub expected: Value,
    pub actual: Value,
    /// The path description of the test that failed.
    pub test_path: String,
}

/// Outcome of replaying one test case on a target.
#[derive(Debug, Clone, PartialEq)]
pub enum TestOutcome {
    Pass,
    Mismatch(Vec<Mismatch>),
    /// The target could not execute the test (environment problem, §8); the
    /// test is discarded rather than counted as a bug.
    Skipped(String),
}

impl TestOutcome {
    pub fn is_pass(&self) -> bool {
        matches!(self, TestOutcome::Pass)
    }
}

/// Aggregate report over a batch of tests.
#[derive(Debug, Clone, Default)]
pub struct TestReport {
    pub total: usize,
    pub passed: usize,
    pub skipped: usize,
    pub mismatches: Vec<Mismatch>,
}

impl TestReport {
    pub fn found_semantic_bug(&self) -> bool {
        !self.mismatches.is_empty()
    }
}

/// Compares a target's observed outputs against a test's expectations.
/// Only fields the expectation mentions are compared; `$valid` bits are
/// compared as booleans.
pub fn compare_outputs(test: &TestCase, observed: &BTreeMap<String, Value>) -> TestOutcome {
    let mut mismatches = Vec::new();
    for (field, expected) in &test.expected {
        let Some(actual) = observed.get(field) else {
            mismatches.push(Mismatch {
                field: field.clone(),
                expected: expected.clone(),
                actual: Value::Bool(false),
                test_path: test.path.clone(),
            });
            continue;
        };
        let equal = match (expected, actual) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (a, b) => a.as_bv().resize(128) == b.as_bv().resize(128),
        };
        if !equal {
            mismatches.push(Mismatch {
                field: field.clone(),
                expected: expected.clone(),
                actual: actual.clone(),
                test_path: test.path.clone(),
            });
        }
    }
    if mismatches.is_empty() {
        TestOutcome::Pass
    } else {
        TestOutcome::Mismatch(mismatches)
    }
}

/// Runs a batch of tests against a target callback and aggregates a report.
pub fn run_batch<F>(tests: &[TestCase], mut run_one: F) -> TestReport
where
    F: FnMut(&TestCase) -> TestOutcome,
{
    let mut report = TestReport {
        total: tests.len(),
        ..TestReport::default()
    };
    for test in tests {
        match run_one(test) {
            TestOutcome::Pass => report.passed += 1,
            TestOutcome::Skipped(_) => report.skipped += 1,
            TestOutcome::Mismatch(mismatches) => report.mismatches.extend(mismatches),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_case(expected: &[(&str, Value)]) -> TestCase {
        TestCase {
            inputs: BTreeMap::new(),
            table_config: BTreeMap::new(),
            expected: expected
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            path: "b0=T".into(),
        }
    }

    #[test]
    fn detects_differing_fields() {
        let test = test_case(&[("hdr.h.a", Value::bv(1, 8)), ("hdr.h.b", Value::bv(2, 8))]);
        let mut observed = BTreeMap::new();
        observed.insert("hdr.h.a".to_string(), Value::bv(1, 8));
        observed.insert("hdr.h.b".to_string(), Value::bv(3, 8));
        match compare_outputs(&test, &observed) {
            TestOutcome::Mismatch(mismatches) => {
                assert_eq!(mismatches.len(), 1);
                assert_eq!(mismatches[0].field, "hdr.h.b");
            }
            other => panic!("expected a mismatch, got {other:?}"),
        }
    }

    #[test]
    fn width_differences_do_not_cause_false_mismatches() {
        let test = test_case(&[("hdr.h.a", Value::bv(5, 8))]);
        let mut observed = BTreeMap::new();
        observed.insert("hdr.h.a".to_string(), Value::bv(5, 16));
        assert!(compare_outputs(&test, &observed).is_pass());
    }

    #[test]
    fn batch_reports_aggregate_counts() {
        let tests = vec![
            test_case(&[("x", Value::bv(1, 8))]),
            test_case(&[("x", Value::bv(2, 8))]),
        ];
        let report = run_batch(&tests, |test| {
            let mut observed = BTreeMap::new();
            observed.insert("x".to_string(), Value::bv(1, 8));
            compare_outputs(test, &observed)
        });
        assert_eq!(report.total, 2);
        assert_eq!(report.passed, 1);
        assert!(report.found_semantic_bug());
    }
}
