//! Concrete execution engine shared by the simulated targets.
//!
//! This is the "switch" side of end-to-end testing: it executes the
//! (compiled) program on concrete header/metadata values with a concrete
//! table configuration and returns the final values of all `inout`/`out`
//! parameters.  It is intentionally an independent implementation from the
//! symbolic interpreter — agreement between the two on generated tests is
//! exactly what Gauntlet's black-box technique checks.

use crate::bugs::ExecutionQuirks;
use p4_ir::{
    ActionDecl, ActionRef, Architecture, BinOp, Block, BlockKind, CallExpr, ControlDecl,
    Declaration, Direction, Expr, Param, Program, Statement, TableDecl, Type, TypeEnv, UnOp,
};
use smt::{BvValue, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Policy for values the program reads without having written them
/// (paper §6.2: BMv2 zero-initialises undefined values; other targets may
/// use arbitrary data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UndefinedPolicy {
    /// Undefined scalars read as zero.
    Zero,
    /// Undefined scalars read as a repeating byte pattern.
    Pattern(u8),
}

impl UndefinedPolicy {
    fn scalar(&self, width: u32) -> Value {
        match self {
            UndefinedPolicy::Zero => Value::bv(0, width),
            UndefinedPolicy::Pattern(byte) => {
                let mut value = 0u128;
                for _ in 0..16 {
                    value = (value << 8) | u128::from(*byte);
                }
                Value::Bv(BvValue::from_u128(value, width))
            }
        }
    }
}

/// Runtime table configuration, derived from the symbolic variables of a
/// generated test case (`<control>.<table>_key_<i>`, `<control>.<table>_action`,
/// `<control>.<table>.<action>.<param>`).
#[derive(Debug, Clone, Default)]
pub struct TableRuntime {
    /// Raw configuration values keyed by symbolic variable name.
    pub values: BTreeMap<String, Value>,
}

impl TableRuntime {
    pub fn new(values: BTreeMap<String, Value>) -> TableRuntime {
        TableRuntime { values }
    }

    fn key(&self, prefix: &str, index: usize) -> Option<&Value> {
        self.values.get(&format!("{prefix}_key_{index}"))
    }

    fn action_index(&self, prefix: &str) -> u128 {
        self.values
            .get(&format!("{prefix}_action"))
            .map(|v| v.as_bv().to_u128())
            .unwrap_or(0)
    }

    fn action_arg(&self, prefix: &str, action: &str, param: &str) -> Option<&Value> {
        self.values.get(&format!("{prefix}.{action}.{param}"))
    }
}

/// Errors while executing a program concretely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    pub message: String,
}

impl ExecError {
    fn new(message: impl Into<String>) -> ExecError {
        ExecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "target execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

/// A concrete value mirroring the IR's type structure.
#[derive(Debug, Clone, PartialEq)]
enum CVal {
    Scalar(Value),
    Struct(BTreeMap<String, CVal>),
    Header {
        valid: bool,
        fields: BTreeMap<String, CVal>,
    },
}

impl CVal {
    fn scalar(&self) -> Result<Value, ExecError> {
        match self {
            CVal::Scalar(value) => Ok(value.clone()),
            _ => Err(ExecError::new("expected a scalar value")),
        }
    }

    fn field_mut(&mut self, name: &str) -> Option<&mut CVal> {
        match self {
            CVal::Struct(fields) | CVal::Header { fields, .. } => fields.get_mut(name),
            CVal::Scalar(_) => None,
        }
    }

    fn field(&self, name: &str) -> Option<&CVal> {
        match self {
            CVal::Struct(fields) | CVal::Header { fields, .. } => fields.get(name),
            CVal::Scalar(_) => None,
        }
    }

    fn flatten(&self, prefix: &str, out: &mut BTreeMap<String, Value>) {
        match self {
            CVal::Scalar(value) => {
                out.insert(prefix.to_string(), value.clone());
            }
            CVal::Struct(fields) => {
                for (name, value) in fields {
                    value.flatten(&format!("{prefix}.{name}"), out);
                }
            }
            CVal::Header { valid, fields } => {
                out.insert(format!("{prefix}.$valid"), Value::Bool(*valid));
                for (name, value) in fields {
                    value.flatten(&format!("{prefix}.{name}"), out);
                }
            }
        }
    }
}

/// Control-flow outcome of a statement.
#[derive(Debug, Clone, PartialEq)]
enum Flow {
    Normal,
    Exited,
    Returned(Option<Value>),
}

/// Executes the control bound to `slot` on concrete inputs.  Returns the
/// flattened final values of every `inout`/`out` parameter.
pub fn execute_block(
    program: &Program,
    slot: &str,
    inputs: &BTreeMap<String, Value>,
    tables: &TableRuntime,
    quirks: ExecutionQuirks,
    policy: UndefinedPolicy,
) -> Result<BTreeMap<String, Value>, ExecError> {
    let architecture = Architecture::by_name(&program.architecture)
        .ok_or_else(|| ExecError::new("unknown architecture"))?;
    let spec = architecture
        .block(slot)
        .ok_or_else(|| ExecError::new(format!("no slot `{slot}`")))?;
    if spec.kind == BlockKind::Parser {
        return Err(ExecError::new(
            "execute_block only runs match-action controls",
        ));
    }
    let decl_name = program
        .package
        .binding(slot)
        .ok_or_else(|| ExecError::new(format!("slot `{slot}` unbound")))?;
    let control = program
        .control(decl_name)
        .ok_or_else(|| ExecError::new(format!("control `{decl_name}` missing")))?;
    let env = TypeEnv::from_program(program);
    let mut executor = Executor {
        program,
        env: &env,
        quirks,
        policy,
        tables,
        control_name: control.name.clone(),
        local_actions: BTreeMap::new(),
        local_tables: BTreeMap::new(),
        scopes: vec![BTreeMap::new()],
    };
    executor.bind_globals()?;
    executor.bind_params(&control.params, inputs);
    executor.register_locals(control)?;
    let flow = executor.exec_block(&control.apply)?;
    let _ = flow;
    let mut outputs = BTreeMap::new();
    for param in &control.params {
        if param.direction.copies_out() {
            if let Some(value) = executor.lookup(&param.name) {
                value.clone().flatten(&param.name, &mut outputs);
            }
        }
    }
    Ok(outputs)
}

struct Executor<'a> {
    program: &'a Program,
    env: &'a TypeEnv,
    quirks: ExecutionQuirks,
    policy: UndefinedPolicy,
    tables: &'a TableRuntime,
    control_name: String,
    local_actions: BTreeMap<String, ActionDecl>,
    local_tables: BTreeMap<String, TableDecl>,
    scopes: Vec<BTreeMap<String, CVal>>,
}

type EResult<T> = Result<T, ExecError>;

impl<'a> Executor<'a> {
    // ---- setup -----------------------------------------------------------

    fn bind_globals(&mut self) -> EResult<()> {
        for decl in &self.program.declarations {
            match decl {
                Declaration::Constant(constant) => {
                    let width = self.env.resolve(&constant.ty).width();
                    let value = self.eval(&constant.value, width)?;
                    self.scopes[0].insert(constant.name.clone(), CVal::Scalar(value));
                }
                Declaration::Variable { name, ty, init } => {
                    let value = match init {
                        Some(init) => CVal::Scalar(self.eval(init, self.env.resolve(ty).width())?),
                        None => self.default_of_type(ty),
                    };
                    self.scopes[0].insert(name.clone(), value);
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn register_locals(&mut self, control: &ControlDecl) -> EResult<()> {
        for local in &control.locals {
            match local {
                Declaration::Action(action) => {
                    self.local_actions
                        .insert(action.name.clone(), action.clone());
                }
                Declaration::Table(table) => {
                    self.local_tables.insert(table.name.clone(), table.clone());
                }
                Declaration::Variable { name, ty, init } => {
                    let value = match init {
                        Some(init) => CVal::Scalar(self.eval(init, self.env.resolve(ty).width())?),
                        None => self.default_of_type(ty),
                    };
                    self.declare(name.clone(), value);
                }
                Declaration::Constant(constant) => {
                    let width = self.env.resolve(&constant.ty).width();
                    let value = self.eval(&constant.value, width)?;
                    self.declare(constant.name.clone(), CVal::Scalar(value));
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn bind_params(&mut self, params: &[Param], inputs: &BTreeMap<String, Value>) {
        for param in params {
            let resolved = self.env.resolve(&param.ty);
            if resolved == Type::Packet {
                continue;
            }
            let default_valid = param.direction.copies_in();
            let value = self.build_from_inputs(&resolved, &param.name, inputs, default_valid);
            self.declare(param.name.clone(), value);
        }
    }

    fn build_from_inputs(
        &self,
        ty: &Type,
        prefix: &str,
        inputs: &BTreeMap<String, Value>,
        default_valid: bool,
    ) -> CVal {
        match self.env.resolve(ty) {
            Type::Bool => CVal::Scalar(inputs.get(prefix).cloned().unwrap_or(Value::Bool(false))),
            Type::Bits { width, .. } => CVal::Scalar(
                inputs
                    .get(prefix)
                    .map(|v| Value::Bv(v.as_bv().resize(width)))
                    .unwrap_or_else(|| self.policy.scalar(width)),
            ),
            Type::Header(name) => {
                let mut fields = BTreeMap::new();
                if let Some(agg) = self.env.aggregate(&name) {
                    for field in &agg.fields {
                        fields.insert(
                            field.name.clone(),
                            self.build_from_inputs(
                                &field.ty,
                                &format!("{prefix}.{}", field.name),
                                inputs,
                                default_valid,
                            ),
                        );
                    }
                }
                let valid = inputs
                    .get(&format!("{prefix}.$valid"))
                    .map(Value::as_bool)
                    .unwrap_or(default_valid);
                CVal::Header { valid, fields }
            }
            Type::Struct(name) => {
                let mut fields = BTreeMap::new();
                if let Some(agg) = self.env.aggregate(&name) {
                    for field in &agg.fields {
                        fields.insert(
                            field.name.clone(),
                            self.build_from_inputs(
                                &field.ty,
                                &format!("{prefix}.{}", field.name),
                                inputs,
                                default_valid,
                            ),
                        );
                    }
                }
                CVal::Struct(fields)
            }
            _ => CVal::Scalar(self.policy.scalar(1)),
        }
    }

    fn default_of_type(&self, ty: &Type) -> CVal {
        match self.env.resolve(ty) {
            Type::Bool => CVal::Scalar(Value::Bool(false)),
            Type::Bits { width, .. } => CVal::Scalar(self.policy.scalar(width)),
            Type::Header(name) => {
                let mut fields = BTreeMap::new();
                if let Some(agg) = self.env.aggregate(&name) {
                    for field in &agg.fields {
                        fields.insert(field.name.clone(), self.default_of_type(&field.ty));
                    }
                }
                CVal::Header {
                    valid: false,
                    fields,
                }
            }
            Type::Struct(name) => {
                let mut fields = BTreeMap::new();
                if let Some(agg) = self.env.aggregate(&name) {
                    for field in &agg.fields {
                        fields.insert(field.name.clone(), self.default_of_type(&field.ty));
                    }
                }
                CVal::Struct(fields)
            }
            _ => CVal::Scalar(self.policy.scalar(1)),
        }
    }

    // ---- scope helpers -----------------------------------------------------

    fn declare(&mut self, name: String, value: CVal) {
        self.scopes.last_mut().expect("scope").insert(name, value);
    }

    fn lookup(&self, name: &str) -> Option<&CVal> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn lookup_mut(&mut self, name: &str) -> Option<&mut CVal> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    // ---- statements ---------------------------------------------------------

    fn exec_block(&mut self, block: &Block) -> EResult<Flow> {
        self.scopes.push(BTreeMap::new());
        let flow = self.exec_statements(&block.statements);
        self.scopes.pop();
        flow
    }

    fn exec_statements(&mut self, statements: &[Statement]) -> EResult<Flow> {
        for stmt in statements {
            match self.exec_statement(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_statement(&mut self, stmt: &Statement) -> EResult<Flow> {
        match stmt {
            Statement::Empty => Ok(Flow::Normal),
            Statement::Exit => {
                if self.quirks.ignore_exit {
                    Ok(Flow::Normal)
                } else {
                    Ok(Flow::Exited)
                }
            }
            Statement::Return(value) => {
                let value = match value {
                    Some(expr) => Some(self.eval(expr, None)?),
                    None => None,
                };
                Ok(Flow::Returned(value))
            }
            Statement::Block(block) => self.exec_block(block),
            Statement::Declare { name, ty, init } => {
                let value = match init {
                    Some(init) => CVal::Scalar(self.eval(init, self.env.resolve(ty).width())?),
                    None => self.default_of_type(ty),
                };
                self.declare(name.clone(), value);
                Ok(Flow::Normal)
            }
            Statement::Constant { name, ty, value } => {
                let value = self.eval(value, self.env.resolve(ty).width())?;
                self.declare(name.clone(), CVal::Scalar(value));
                Ok(Flow::Normal)
            }
            Statement::Assign { lhs, rhs } => {
                let width = self.lvalue_width(lhs);
                let value = self.eval(rhs, width)?;
                self.assign(lhs, value)?;
                Ok(Flow::Normal)
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, None)?.as_bool() {
                    self.exec_statement(then_branch)
                } else if let Some(else_branch) = else_branch {
                    self.exec_statement(else_branch)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Statement::Call(call) => self.exec_call(call).map(|(flow, _)| flow),
        }
    }

    // ---- calls -----------------------------------------------------------------

    fn exec_call(&mut self, call: &CallExpr) -> EResult<(Flow, Option<Value>)> {
        match call.method() {
            "apply" => {
                let table_name = call.receiver();
                let table = self
                    .local_tables
                    .get(&table_name)
                    .cloned()
                    .ok_or_else(|| ExecError::new(format!("unknown table `{table_name}`")))?;
                self.apply_table(&table).map(|flow| (flow, None))
            }
            "setValid" | "setInvalid" => {
                let valid = call.method() == "setValid";
                let receiver = receiver_expr(call);
                let policy = self.policy;
                if let Some(CVal::Header { valid: v, fields }) = self.resolve_lvalue(&receiver)? {
                    *v = valid;
                    if valid {
                        // Fields become unspecified; use the target's
                        // undefined-value policy.
                        for field in fields.values_mut() {
                            if let CVal::Scalar(value) = field {
                                let width = value.as_bv().width();
                                *value = policy.scalar(width);
                            }
                        }
                    }
                }
                Ok((Flow::Normal, None))
            }
            "isValid" => {
                let receiver = receiver_expr(call);
                let value = self.eval_lvalue(&receiver)?;
                let valid = match value {
                    CVal::Header { valid, .. } => valid || self.quirks.validity_always_true,
                    _ => true,
                };
                Ok((Flow::Normal, Some(Value::Bool(valid))))
            }
            "emit" | "extract" | "mark_to_drop" => Ok((Flow::Normal, None)),
            _ => {
                let name = call.target.join(".");
                if let Some(function) = self.program.declarations.iter().find_map(|d| match d {
                    Declaration::Function(f) if f.name == name => Some(f.clone()),
                    _ => None,
                }) {
                    return self.call_callable(
                        &function.params,
                        &function.body,
                        &call.args,
                        &BTreeMap::new(),
                    );
                }
                if let Some(action) = self.find_action(&name).cloned() {
                    return self.call_callable(
                        &action.params,
                        &action.body,
                        &call.args,
                        &BTreeMap::new(),
                    );
                }
                // Unknown extern: leave state untouched, return zero.
                Ok((Flow::Normal, Some(self.policy.scalar(32))))
            }
        }
    }

    fn find_action(&self, name: &str) -> Option<&ActionDecl> {
        self.local_actions.get(name).or_else(|| {
            self.program.declarations.iter().find_map(|d| match d {
                Declaration::Action(a) if a.name == name => Some(a),
                _ => None,
            })
        })
    }

    fn call_callable(
        &mut self,
        params: &[Param],
        body: &Block,
        args: &[Expr],
        bound: &BTreeMap<String, Value>,
    ) -> EResult<(Flow, Option<Value>)> {
        let mut bindings: Vec<(Param, Option<Expr>, CVal)> = Vec::new();
        for (index, param) in params.iter().enumerate() {
            let width = self.env.resolve(&param.ty).width().unwrap_or(8);
            let value = if let Some(value) = bound.get(&param.name) {
                CVal::Scalar(Value::Bv(value.as_bv().resize(width)))
            } else if let Some(arg) = args.get(index) {
                if param.direction.copies_in() {
                    CVal::Scalar(self.eval(arg, Some(width))?)
                } else {
                    self.default_of_type(&param.ty)
                }
            } else {
                self.default_of_type(&param.ty)
            };
            let copy_back = if param.direction.copies_out() {
                args.get(index).cloned()
            } else {
                None
            };
            bindings.push((param.clone(), copy_back, value));
        }
        self.scopes.push(BTreeMap::new());
        for (param, _, value) in &bindings {
            self.declare(param.name.clone(), value.clone());
        }
        let flow = self.exec_statements(&body.statements)?;
        let mut final_values = Vec::new();
        for (param, copy_back, _) in &bindings {
            if copy_back.is_some() {
                final_values.push(
                    self.lookup(&param.name)
                        .cloned()
                        .ok_or_else(|| ExecError::new("parameter vanished"))?,
                );
            }
        }
        self.scopes.pop();
        // Copy-out happens on normal completion, on return, and on exit (the
        // clarified specification; Figure 5f).
        let mut index = 0;
        for (_, copy_back, _) in &bindings {
            if let Some(arg) = copy_back {
                let value = final_values[index].clone();
                index += 1;
                if let CVal::Scalar(scalar) = value {
                    self.assign(arg, scalar)?;
                }
            }
        }
        match flow {
            Flow::Exited => Ok((Flow::Exited, None)),
            Flow::Returned(value) => Ok((Flow::Normal, value)),
            Flow::Normal => Ok((Flow::Normal, None)),
        }
    }

    fn apply_table(&mut self, table: &TableDecl) -> EResult<Flow> {
        let prefix = format!("{}.{}", self.control_name, table.name);
        // Does the installed entry match the packet?
        let mut hit = !table.keys.is_empty();
        for (index, key) in table.keys.iter().enumerate() {
            let packet_value = self.eval(&key.expr, None)?.as_bv();
            let entry_value = match self.tables.key(&prefix, index) {
                Some(value) => value.as_bv().resize(packet_value.width()),
                None => {
                    hit = false;
                    break;
                }
            };
            if packet_value != entry_value {
                hit = false;
                break;
            }
        }
        let action_index = self.tables.action_index(&prefix);
        let chosen: &ActionRef =
            if hit && action_index >= 1 && (action_index as usize) <= table.actions.len() {
                &table.actions[(action_index - 1) as usize]
            } else {
                &table.default_action
            };
        let action = self
            .find_action(&chosen.name)
            .cloned()
            .or_else(|| {
                if chosen.name == "NoAction" {
                    Some(ActionDecl {
                        name: "NoAction".into(),
                        params: vec![],
                        body: Block::empty(),
                    })
                } else {
                    None
                }
            })
            .ok_or_else(|| ExecError::new(format!("unknown action `{}`", chosen.name)))?;
        // Control-plane arguments for directionless parameters.
        let mut bound = BTreeMap::new();
        for (index, param) in action.params.iter().enumerate() {
            if let Some(arg) = chosen.args.get(index) {
                let width = self.env.resolve(&param.ty).width();
                bound.insert(param.name.clone(), self.eval(arg, width)?);
            } else if param.direction == Direction::None {
                if let Some(value) = self.tables.action_arg(&prefix, &action.name, &param.name) {
                    bound.insert(param.name.clone(), value.clone());
                }
            }
        }
        let (flow, _) = self.call_callable(&action.params, &action.body, &[], &bound)?;
        Ok(flow)
    }

    // ---- l-values -----------------------------------------------------------------

    fn eval_lvalue(&mut self, expr: &Expr) -> EResult<CVal> {
        match expr {
            Expr::Path(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| ExecError::new(format!("unknown name `{name}`"))),
            Expr::Member { base, member } => {
                let base = self.eval_lvalue(base)?;
                base.field(member)
                    .cloned()
                    .ok_or_else(|| ExecError::new(format!("no field `{member}`")))
            }
            other => Err(ExecError::new(format!(
                "not an l-value: {}",
                p4_ir::print_expr(other)
            ))),
        }
    }

    fn resolve_lvalue(&mut self, expr: &Expr) -> EResult<Option<&mut CVal>> {
        let mut segments = Vec::new();
        let mut current = expr;
        loop {
            match current {
                Expr::Path(name) => {
                    segments.reverse();
                    let mut target = match self.lookup_mut(name) {
                        Some(target) => target,
                        None => return Ok(None),
                    };
                    for segment in segments {
                        target = match target.field_mut(segment) {
                            Some(next) => next,
                            None => return Ok(None),
                        };
                    }
                    return Ok(Some(target));
                }
                Expr::Member { base, member } => {
                    segments.push(member.as_str());
                    current = base;
                }
                _ => return Ok(None),
            }
        }
    }

    fn lvalue_width(&mut self, expr: &Expr) -> Option<u32> {
        match expr {
            Expr::Slice { hi, lo, .. } => Some(hi - lo + 1),
            _ => match self.eval_lvalue(expr) {
                Ok(CVal::Scalar(value)) => Some(value.as_bv().width()),
                _ => None,
            },
        }
    }

    fn assign(&mut self, lvalue: &Expr, value: Value) -> EResult<()> {
        match lvalue {
            Expr::Slice { base, hi, lo } => {
                let old = self.eval_lvalue(base)?.scalar()?.as_bv();
                let width = old.width();
                if *hi >= width {
                    return Err(ExecError::new("slice assignment out of range"));
                }
                let new_value = if self.quirks.slice_writes_whole_field {
                    // Seeded back-end defect: the whole field is overwritten.
                    value.as_bv().resize(width)
                } else {
                    splice(&old, &value.as_bv(), *hi, *lo)
                };
                self.assign(base, Value::Bv(new_value))
            }
            _ => {
                let expected_width = self.lvalue_width(lvalue);
                let target = self
                    .resolve_lvalue(lvalue)?
                    .ok_or_else(|| ExecError::new("assignment to unknown l-value"))?;
                let value = match (expected_width, &value) {
                    (Some(width), Value::Bv(bv)) => Value::Bv(bv.resize(width)),
                    _ => value,
                };
                *target = CVal::Scalar(value);
                Ok(())
            }
        }
    }

    // ---- expressions -----------------------------------------------------------------

    fn eval(&mut self, expr: &Expr, width_hint: Option<u32>) -> EResult<Value> {
        match expr {
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Int { value, width, .. } => {
                let width = width.or(width_hint).unwrap_or(32);
                Ok(Value::bv(*value, width))
            }
            Expr::Path(name) => {
                let value = self
                    .lookup(name)
                    .ok_or_else(|| ExecError::new(format!("unknown name `{name}`")))?;
                value.scalar()
            }
            Expr::Member { .. } => self.eval_lvalue(expr)?.scalar(),
            Expr::Slice { base, hi, lo } => {
                let base = self.eval(base, None)?.as_bv();
                if *hi >= base.width() {
                    return Err(ExecError::new("slice out of range"));
                }
                Ok(Value::Bv(base.extract(*hi, *lo)))
            }
            Expr::Unary { op, operand } => {
                let value = self.eval(operand, width_hint)?;
                Ok(match op {
                    UnOp::Not => Value::Bool(!value.as_bool()),
                    UnOp::BitNot => Value::Bv(value.as_bv().bitnot()),
                    UnOp::Neg => Value::Bv(value.as_bv().neg()),
                })
            }
            Expr::Binary { op, left, right } => self.eval_binary(*op, left, right, width_hint),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                if self.eval(cond, None)?.as_bool() {
                    self.eval(then_expr, width_hint)
                } else {
                    self.eval(else_expr, width_hint)
                }
            }
            Expr::Cast { ty, expr } => {
                let resolved = self.env.resolve(ty);
                let value = self.eval(expr, resolved.width())?;
                Ok(match resolved {
                    Type::Bool => Value::Bool(value.as_bool()),
                    Type::Bits { width, .. } => Value::Bv(value.as_bv().resize(width)),
                    _ => value,
                })
            }
            Expr::Call(call) => {
                let (_, value) = self.exec_call(call)?;
                value.ok_or_else(|| ExecError::new("void call used as a value"))
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        left: &Expr,
        right: &Expr,
        width_hint: Option<u32>,
    ) -> EResult<Value> {
        use BinOp::*;
        if matches!(op, And | Or) {
            let l = self.eval(left, None)?.as_bool();
            // Short-circuit exactly like a real target would.
            return Ok(Value::Bool(match op {
                And => l && self.eval(right, None)?.as_bool(),
                _ => l || self.eval(right, None)?.as_bool(),
            }));
        }
        let (l, r) = if matches!(left, Expr::Int { width: None, .. }) {
            let r = self.eval(right, width_hint)?.as_bv();
            let l = self.eval(left, Some(r.width()))?.as_bv();
            (l, r)
        } else {
            let l = self.eval(left, width_hint)?.as_bv();
            let r = self.eval(right, Some(l.width()))?.as_bv();
            (l, r)
        };
        let (l, r) = if l.width() == r.width() || matches!(op, Shl | Shr | Concat) {
            (l, r)
        } else {
            let width = l.width().max(r.width());
            (l.resize(width), r.resize(width))
        };
        Ok(match op {
            Add => Value::Bv(l.add(&r)),
            Sub => Value::Bv(l.sub(&r)),
            Mul => Value::Bv(l.mul(&r)),
            SatAdd => Value::Bv(if self.quirks.saturation_wraps {
                l.add(&r)
            } else {
                l.sat_add(&r)
            }),
            SatSub => Value::Bv(if self.quirks.saturation_wraps {
                l.sub(&r)
            } else {
                l.sat_sub(&r)
            }),
            BitAnd => Value::Bv(l.bitand(&r)),
            BitOr => Value::Bv(l.bitor(&r)),
            BitXor => Value::Bv(l.bitxor(&r)),
            Shl => Value::Bv(l.shl(r.to_u128().min(1024) as u32)),
            Shr => Value::Bv(l.lshr(r.to_u128().min(1024) as u32)),
            Concat => Value::Bv(l.concat(&r)),
            Eq => Value::Bool(l == r),
            Ne => Value::Bool(l != r),
            Lt => Value::Bool(l.ult(&r)),
            Le => Value::Bool(!r.ult(&l)),
            Gt => Value::Bool(r.ult(&l)),
            Ge => Value::Bool(!l.ult(&r)),
            And | Or => unreachable!("handled above"),
        })
    }
}

fn splice(old: &BvValue, value: &BvValue, hi: u32, lo: u32) -> BvValue {
    let mut bits: Vec<bool> = (0..old.width()).map(|i| old.bit(i)).collect();
    for (offset, index) in (lo..=hi).enumerate() {
        bits[index as usize] = value.bit(offset as u32);
    }
    BvValue::from_bits(bits)
}

fn receiver_expr(call: &CallExpr) -> Expr {
    let parts: Vec<&str> = call.target[..call.target.len() - 1]
        .iter()
        .map(String::as_str)
        .collect();
    Expr::dotted(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;

    fn run(program: &Program, inputs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        let inputs: BTreeMap<String, Value> = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        execute_block(
            program,
            "ingress",
            &inputs,
            &TableRuntime::default(),
            ExecutionQuirks::default(),
            UndefinedPolicy::Zero,
        )
        .expect("execution succeeds")
    }

    #[test]
    fn executes_trivial_assignment() {
        let outputs = run(&builder::trivial_program(), &[("hdr.h.b", Value::bv(9, 8))]);
        assert_eq!(outputs.get("hdr.h.a"), Some(&Value::bv(1, 8)));
        assert_eq!(outputs.get("hdr.h.b"), Some(&Value::bv(9, 8)));
    }

    #[test]
    fn exit_stops_processing_unless_quirked() {
        use p4_ir::{Block, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        );
        let outputs = run(&program, &[]);
        assert_eq!(outputs.get("hdr.h.a"), Some(&Value::bv(1, 8)));

        let quirky = execute_block(
            &program,
            "ingress",
            &BTreeMap::new(),
            &TableRuntime::default(),
            ExecutionQuirks {
                ignore_exit: true,
                ..ExecutionQuirks::default()
            },
            UndefinedPolicy::Zero,
        )
        .unwrap();
        assert_eq!(quirky.get("hdr.h.a"), Some(&Value::bv(2, 8)));
    }

    #[test]
    fn table_hit_and_miss_follow_the_installed_entry() {
        let (locals, apply) = builder::figure3_table_control();
        let program = builder::v1model_program(locals, apply);
        // Install an entry matching hdr.h.a == 5 that runs `assign` (index 1).
        let mut config = BTreeMap::new();
        config.insert("ingress_impl.t_key_0".to_string(), Value::bv(5, 8));
        config.insert("ingress_impl.t_action".to_string(), Value::bv(1, 8));
        let tables = TableRuntime::new(config);
        let mut inputs = BTreeMap::new();
        inputs.insert("hdr.h.a".to_string(), Value::bv(5, 8));
        let outputs = execute_block(
            &program,
            "ingress",
            &inputs,
            &tables,
            ExecutionQuirks::default(),
            UndefinedPolicy::Zero,
        )
        .unwrap();
        assert_eq!(outputs.get("hdr.h.a"), Some(&Value::bv(1, 8)));

        // A non-matching packet misses and keeps its value.
        inputs.insert("hdr.h.a".to_string(), Value::bv(7, 8));
        let outputs = execute_block(
            &program,
            "ingress",
            &inputs,
            &tables,
            ExecutionQuirks::default(),
            UndefinedPolicy::Zero,
        )
        .unwrap();
        assert_eq!(outputs.get("hdr.h.a"), Some(&Value::bv(7, 8)));
    }

    #[test]
    fn slice_assignment_and_quirk() {
        use p4_ir::{Block, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 3, 0),
                rhs: Expr::uint(0xf, 4),
            }]),
        );
        let outputs = run(&program, &[("hdr.h.a", Value::bv(0xa0, 8))]);
        assert_eq!(outputs.get("hdr.h.a"), Some(&Value::bv(0xaf, 8)));

        let mut inputs = BTreeMap::new();
        inputs.insert("hdr.h.a".to_string(), Value::bv(0xa0, 8));
        let quirky = execute_block(
            &program,
            "ingress",
            &inputs,
            &TableRuntime::default(),
            ExecutionQuirks {
                slice_writes_whole_field: true,
                ..ExecutionQuirks::default()
            },
            UndefinedPolicy::Zero,
        )
        .unwrap();
        assert_eq!(quirky.get("hdr.h.a"), Some(&Value::bv(0x0f, 8)));
    }

    #[test]
    fn function_and_action_calls_copy_in_and_out() {
        use p4_ir::{ActionDecl, Block, Declaration, Direction, Param, Statement};
        let action = ActionDecl {
            name: "bump".into(),
            params: vec![Param::new(Direction::InOut, "val", Type::bits(8))],
            body: Block::new(vec![Statement::assign(
                Expr::path("val"),
                Expr::binary(BinOp::Add, Expr::path("val"), Expr::uint(1, 8)),
            )]),
        };
        let program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![Statement::call(
                vec!["bump"],
                vec![Expr::dotted(&["hdr", "h", "a"])],
            )]),
        );
        let outputs = run(&program, &[("hdr.h.a", Value::bv(41, 8))]);
        assert_eq!(outputs.get("hdr.h.a"), Some(&Value::bv(42, 8)));
    }

    #[test]
    fn undefined_policy_controls_uninitialised_reads() {
        use p4_ir::{Block, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::Declare {
                    name: "x".into(),
                    ty: Type::bits(8),
                    init: None,
                },
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::path("x")),
            ]),
        );
        let zero = run(&program, &[]);
        assert_eq!(zero.get("hdr.h.a"), Some(&Value::bv(0, 8)));
        let patterned = execute_block(
            &program,
            "ingress",
            &BTreeMap::new(),
            &TableRuntime::default(),
            ExecutionQuirks::default(),
            UndefinedPolicy::Pattern(0xab),
        )
        .unwrap();
        assert_eq!(patterned.get("hdr.h.a"), Some(&Value::bv(0xab, 8)));
    }
}
