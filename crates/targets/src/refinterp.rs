//! The reference-interpreter target: "the model is the oracle" (paper §6).
//!
//! BMv2 and Tofino are simulated with an independent *concrete* execution
//! engine; this third back end instead wraps `p4_symbolic`'s interpreter.
//! Compilation runs the shared front/mid end and then symbolically
//! interprets the lowered program; replaying a test evaluates the lowered
//! program's output formulas under the test's concrete inputs.  On a
//! correct compiler this target agrees with the test-generation model by
//! construction (translation validation guarantees the lowered program is
//! equivalent to the input program), which makes it the ideal consensus
//! anchor for N-way differential testing — and, when seeded with a defect,
//! it exercises the scenario where *every* execution engine agrees and the
//! model itself is the odd one out.
//!
//! Seeded defects cannot be injected into the interpreter's evaluation loop
//! (it is shared with translation validation), so they are modelled as
//! back-end *lowering* bugs: a small rewrite of the already-compiled
//! program that mimics the corresponding execution quirk (`exit` dropped,
//! saturating arithmetic lowered to wrapping, `isValid()` folded to true).
//! `Bmv2SliceWritesWholeField` has no program-level equivalent without type
//! information and is not supported on this target.

use crate::bugs::{BackEndBugClass, ExecutionQuirks};
use crate::harness::{compare_outputs, TestOutcome};
use crate::target::{Artifact, LoadedArtifact, Target, TargetError};
use p4_ir::{BinOp, Block, Declaration, Expr, Program, Statement};
use p4_symbolic::{interpret_program, TestCase};
use p4c::Compiler;
use smt::{eval_with_default, Assignment, TermManager, TermRef};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The reference-interpreter back end.
#[derive(Debug, Default)]
pub struct RefInterpTarget {
    bug: Option<BackEndBugClass>,
}

impl RefInterpTarget {
    /// A correct reference-interpreter back end.
    pub fn new() -> RefInterpTarget {
        RefInterpTarget::default()
    }

    /// A reference interpreter seeded with a (lowering-style) defect.
    ///
    /// # Panics
    ///
    /// On [`BackEndBugClass::Bmv2SliceWritesWholeField`], which has no
    /// program-level rewrite (see the module docs): seeding it here would
    /// silently run a *correct* target while reporting it as defective.
    pub fn with_bug(bug: BackEndBugClass) -> RefInterpTarget {
        assert!(
            bug != BackEndBugClass::Bmv2SliceWritesWholeField,
            "{bug:?} cannot be modelled as a lowering rewrite on ref-interp"
        );
        RefInterpTarget { bug: Some(bug) }
    }
}

impl Target for RefInterpTarget {
    fn name(&self) -> &'static str {
        "ref-interp"
    }

    fn platform_label(&self) -> &'static str {
        "RefInterp"
    }

    fn harness(&self) -> &'static str {
        "REF"
    }

    fn compile(&self, program: &Program) -> Result<Artifact, TargetError> {
        let result = Compiler::reference().compile(program)?;
        let lowered = match self.bug {
            Some(bug) => apply_lowering_bug(&result.program, bug),
            None => result.program,
        };
        let tm = Arc::new(TermManager::new());
        let semantics = interpret_program(&tm, &lowered).map_err(|error| {
            // An interpreter limitation, not a compiler bug: the program is
            // outside this target's supported subset (paper §8).
            TargetError::Rejected {
                message: format!("reference interpreter: {error}"),
            }
        })?;
        let block = semantics
            .block("ingress")
            .ok_or_else(|| TargetError::Rejected {
                message: "reference interpreter: program has no `ingress` block".into(),
            })?;
        Ok(Artifact::new(RefInterpImage {
            outputs: block.outputs.clone(),
            _tm: tm,
        }))
    }
}

/// The "loaded" form of the reference interpreter: the lowered program's
/// per-output formulas, evaluated per test case.
pub struct RefInterpImage {
    outputs: Vec<(String, TermRef)>,
    /// Keeps the term manager (and thus the hash-consed term graph) alive.
    _tm: Arc<TermManager>,
}

impl LoadedArtifact for RefInterpImage {
    fn run_test(&self, test: &TestCase) -> TestOutcome {
        let mut assignment = Assignment::new();
        for (name, value) in &test.inputs {
            assignment.insert(name.clone(), value.clone());
        }
        for (name, value) in &test.table_config {
            assignment.insert(name.clone(), value.clone());
        }
        // Variables absent from the test (undefined reads, extern results)
        // default to zero — the same policy the concrete targets apply.
        let mut observed = BTreeMap::new();
        for (name, term) in &self.outputs {
            observed.insert(name.clone(), eval_with_default(term, &assignment));
        }
        compare_outputs(test, &observed)
    }
}

/// Rewrites an already-lowered program to mimic a back-end execution quirk
/// (the seeded-bug injection hook for this target).
fn apply_lowering_bug(program: &Program, bug: BackEndBugClass) -> Program {
    let quirks = ExecutionQuirks::for_bug(Some(bug));
    let mut rewritten = program.clone();
    for declaration in &mut rewritten.declarations {
        rewrite_declaration(declaration, &quirks);
    }
    rewritten
}

fn rewrite_declaration(declaration: &mut Declaration, quirks: &ExecutionQuirks) {
    match declaration {
        Declaration::Action(action) => rewrite_block(&mut action.body, quirks),
        Declaration::Function(function) => rewrite_block(&mut function.body, quirks),
        Declaration::Control(control) => {
            for local in &mut control.locals {
                rewrite_declaration(local, quirks);
            }
            rewrite_block(&mut control.apply, quirks);
        }
        Declaration::Parser(parser) => {
            for local in &mut parser.locals {
                rewrite_declaration(local, quirks);
            }
            for state in &mut parser.states {
                let statements = std::mem::take(&mut state.statements);
                state.statements = statements
                    .into_iter()
                    .filter_map(|stmt| rewrite_statement(stmt, quirks))
                    .collect();
            }
        }
        Declaration::Table(table) => {
            for key in &mut table.keys {
                rewrite_expr(&mut key.expr, quirks);
            }
        }
        Declaration::Variable { init, .. } => {
            if let Some(init) = init {
                rewrite_expr(init, quirks);
            }
        }
        Declaration::Constant(_)
        | Declaration::Header(_)
        | Declaration::Struct(_)
        | Declaration::Typedef(_) => {}
    }
}

fn rewrite_block(block: &mut Block, quirks: &ExecutionQuirks) {
    let statements = std::mem::take(&mut block.statements);
    block.statements = statements
        .into_iter()
        .filter_map(|stmt| rewrite_statement(stmt, quirks))
        .collect();
}

/// Rewrites one statement; `None` drops it (the `exit`-ignored quirk).
fn rewrite_statement(statement: Statement, quirks: &ExecutionQuirks) -> Option<Statement> {
    match statement {
        Statement::Exit if quirks.ignore_exit => None,
        Statement::Exit => Some(Statement::Exit),
        Statement::Assign { mut lhs, mut rhs } => {
            rewrite_expr(&mut lhs, quirks);
            rewrite_expr(&mut rhs, quirks);
            Some(Statement::Assign { lhs, rhs })
        }
        Statement::Call(mut call) => {
            for arg in &mut call.args {
                rewrite_expr(arg, quirks);
            }
            Some(Statement::Call(call))
        }
        Statement::If {
            mut cond,
            then_branch,
            else_branch,
        } => {
            rewrite_expr(&mut cond, quirks);
            let then_branch = rewrite_statement(*then_branch, quirks).unwrap_or(Statement::Empty);
            let else_branch = else_branch
                .map(|branch| rewrite_statement(*branch, quirks).unwrap_or(Statement::Empty));
            Some(Statement::If {
                cond,
                then_branch: Box::new(then_branch),
                else_branch: else_branch.map(Box::new),
            })
        }
        Statement::Block(mut block) => {
            rewrite_block(&mut block, quirks);
            Some(Statement::Block(block))
        }
        Statement::Declare { name, ty, mut init } => {
            if let Some(init) = init.as_mut() {
                rewrite_expr(init, quirks);
            }
            Some(Statement::Declare { name, ty, init })
        }
        Statement::Constant {
            name,
            ty,
            mut value,
        } => {
            rewrite_expr(&mut value, quirks);
            Some(Statement::Constant { name, ty, value })
        }
        Statement::Return(mut expr) => {
            if let Some(expr) = expr.as_mut() {
                rewrite_expr(expr, quirks);
            }
            Some(Statement::Return(expr))
        }
        Statement::Empty => Some(Statement::Empty),
    }
}

fn rewrite_expr(expr: &mut Expr, quirks: &ExecutionQuirks) {
    match expr {
        Expr::Binary { op, left, right } => {
            if quirks.saturation_wraps {
                match op {
                    BinOp::SatAdd => *op = BinOp::Add,
                    BinOp::SatSub => *op = BinOp::Sub,
                    _ => {}
                }
            }
            rewrite_expr(left, quirks);
            rewrite_expr(right, quirks);
        }
        Expr::Call(call) => {
            if quirks.validity_always_true && call.target.last().is_some_and(|m| m == "isValid") {
                *expr = Expr::Bool(true);
                return;
            }
            for arg in &mut call.args {
                rewrite_expr(arg, quirks);
            }
        }
        Expr::Member { base, .. } => rewrite_expr(base, quirks),
        Expr::Slice { base, .. } => rewrite_expr(base, quirks),
        Expr::Unary { operand, .. } => rewrite_expr(operand, quirks),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            rewrite_expr(cond, quirks);
            rewrite_expr(then_expr, quirks);
            rewrite_expr(else_expr, quirks);
        }
        Expr::Cast { expr: inner, .. } => rewrite_expr(inner, quirks),
        Expr::Bool(_) | Expr::Int { .. } | Expr::Path(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{drive_target, TargetFinding};
    use p4_ir::builder;

    fn exit_program() -> Program {
        builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        )
    }

    #[test]
    fn faithful_interpreter_agrees_with_the_model() {
        let (locals, apply) = builder::figure3_table_control();
        let program = builder::v1model_program(locals, apply);
        let findings = drive_target(&RefInterpTarget::new(), &program, 8);
        assert!(findings.is_empty(), "false alarm: {findings:#?}");
        assert!(drive_target(&RefInterpTarget::new(), &exit_program(), 8).is_empty());
    }

    #[test]
    fn seeded_exit_bug_diverges_from_the_model() {
        let target = RefInterpTarget::with_bug(BackEndBugClass::Bmv2ExitIgnored);
        let findings = drive_target(&target, &exit_program(), 8);
        assert!(
            matches!(findings.first(), Some(TargetFinding::Semantic { .. })),
            "expected a semantic divergence, got {findings:#?}"
        );
    }

    #[test]
    fn seeded_saturation_bug_diverges_on_tna() {
        let program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::SatAdd,
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(255, 8),
                ),
            )]),
        );
        assert!(drive_target(&RefInterpTarget::new(), &program, 8).is_empty());
        let buggy = RefInterpTarget::with_bug(BackEndBugClass::TofinoSaturationWraps);
        assert!(!drive_target(&buggy, &program, 8).is_empty());
    }

    /// The slice quirk has no lowering-rewrite equivalent; seeding it must
    /// fail fast instead of silently running a correct target.
    #[test]
    #[should_panic(expected = "cannot be modelled as a lowering rewrite")]
    fn unsupported_slice_seed_is_rejected() {
        let _ = RefInterpTarget::with_bug(BackEndBugClass::Bmv2SliceWritesWholeField);
    }

    #[test]
    fn seeded_validity_bug_diverges_from_the_model() {
        let program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::call(vec!["hdr", "h", "isValid"], vec![]),
                Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["meta", "flag"]), Expr::uint(2, 8)),
            )]),
        );
        assert!(drive_target(&RefInterpTarget::new(), &program, 8).is_empty());
        let buggy = RefInterpTarget::with_bug(BackEndBugClass::TofinoValidityAlwaysTrue);
        assert!(!drive_target(&buggy, &program, 8).is_empty());
    }
}
