//! The simulated "Tofino" back end: a closed-source, proprietary compiler
//! stand-in (paper §6).
//!
//! The real Tofino compiler consumes P4C's front/mid end output and lowers
//! it through undocumented proprietary passes; Gauntlet therefore cannot use
//! translation validation and falls back to test-case generation against the
//! Tofino software simulator (PTF).  This module reproduces that *access
//! model*: compilation runs the shared front/mid end plus back-end-specific
//! restriction checks (and, when seeded, back-end bugs), and the resulting
//! [`TofinoBinary`] exposes only a packet-level test interface — callers
//! never see the transformed program.

use crate::bugs::{BackEndBugClass, ExecutionQuirks};
use crate::concrete::{execute_block, TableRuntime, UndefinedPolicy};
use crate::harness::{compare_outputs, TestOutcome};
use crate::target::{Artifact, LoadedArtifact, Target, TargetError};
use p4_ir::{Architecture, Expr, Program, Statement, Visitor};
use p4_symbolic::TestCase;
use p4c::Compiler;

/// The closed-source compiler.
#[derive(Debug, Default)]
pub struct TofinoBackend {
    bug: Option<BackEndBugClass>,
}

impl TofinoBackend {
    pub fn new() -> TofinoBackend {
        TofinoBackend::default()
    }

    /// A back end seeded with one of the Tofino bug classes.
    pub fn with_bug(bug: BackEndBugClass) -> TofinoBackend {
        TofinoBackend { bug: Some(bug) }
    }

    /// Compiles a program for the Tofino pipeline.  The intermediate
    /// representation is *not* exposed; only a loadable binary comes back.
    pub fn compile_binary(&self, program: &Program) -> Result<TofinoBinary, TargetError> {
        // Shared front/mid end (the real back end links against P4C).
        let result = Compiler::reference().compile(program)?;
        let lowered = result.program;

        // Back-end restriction checks.
        let restrictions = Architecture::by_name(&lowered.architecture)
            .map(|a| a.restrictions)
            .unwrap_or_default();
        let mut scan = BackendScan::default();
        scan.visit_program(&lowered);
        if scan.has_multiplication && !restrictions.allows_multiplication {
            return Err(TargetError::Rejected {
                message: "multiplication is not supported by the match-action pipeline".into(),
            });
        }
        if let Some(width) = scan
            .widest_operand
            .filter(|w| *w > restrictions.max_operand_width)
        {
            return Err(TargetError::Rejected {
                message: format!("operand width {width} exceeds the pipeline's ALU width"),
            });
        }
        // Seeded back-end crash: the slice-lowering pass blows an assertion.
        if self.bug == Some(BackEndBugClass::TofinoSliceLoweringCrash) && scan.has_slice_assignment
        {
            return Err(TargetError::Crash {
                pass: "TofinoSliceLowering".into(),
                message: "assertion failed: unexpected slice l-value after lowering".into(),
            });
        }
        Ok(TofinoBinary {
            program: lowered,
            quirks: ExecutionQuirks::for_bug(self.bug),
        })
    }
}

impl Target for TofinoBackend {
    fn name(&self) -> &'static str {
        "tofino"
    }

    fn platform_label(&self) -> &'static str {
        "Tofino"
    }

    fn harness(&self) -> &'static str {
        "PTF"
    }

    fn compile(&self, program: &Program) -> Result<Artifact, TargetError> {
        self.compile_binary(program).map(Artifact::new)
    }
}

/// A compiled Tofino image loaded into the software simulator.  The
/// transformed program is private: callers interact through packets only.
#[derive(Debug, Clone)]
pub struct TofinoBinary {
    program: Program,
    quirks: ExecutionQuirks,
}

impl LoadedArtifact for TofinoBinary {
    /// Replays one PTF test case on the simulator.
    fn run_test(&self, test: &TestCase) -> TestOutcome {
        let tables = TableRuntime::new(test.table_config.clone());
        match execute_block(
            &self.program,
            "ingress",
            &test.inputs,
            &tables,
            self.quirks,
            UndefinedPolicy::Zero,
        ) {
            Ok(observed) => compare_outputs(test, &observed),
            Err(error) => TestOutcome::Skipped(error.to_string()),
        }
    }
}

/// Structural facts the back end checks before accepting a program.
#[derive(Debug, Default)]
struct BackendScan {
    has_multiplication: bool,
    has_slice_assignment: bool,
    widest_operand: Option<u32>,
}

impl Visitor for BackendScan {
    fn visit_statement(&mut self, stmt: &Statement) {
        if let Statement::Assign {
            lhs: Expr::Slice { .. },
            ..
        } = stmt
        {
            self.has_slice_assignment = true;
        }
        p4_ir::visit::walk_statement(self, stmt);
    }

    fn visit_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Binary { op, .. } if *op == p4_ir::BinOp::Mul => self.has_multiplication = true,
            Expr::Int {
                width: Some(width), ..
            } => {
                self.widest_operand = Some(self.widest_operand.unwrap_or(0).max(*width));
            }
            Expr::Cast { ty, .. } => {
                if let Some(width) = ty.width() {
                    self.widest_operand = Some(self.widest_operand.unwrap_or(0).max(width));
                }
            }
            _ => {}
        }
        p4_ir::visit::walk_expr(self, expr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::testgen_options;
    use p4_ir::builder;
    use p4_symbolic::generate_tests;

    fn tna_test_program() -> Program {
        use p4_ir::{BinOp, Block, Statement};
        builder::tna_program(
            vec![],
            Block::new(vec![
                Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::binary(
                        BinOp::SatAdd,
                        Expr::dotted(&["hdr", "h", "b"]),
                        Expr::uint(255, 8),
                    ),
                ),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "c"]), Expr::uint(9, 8)),
            ]),
        )
    }

    fn tna_tests(backend: &TofinoBackend, program: &Program) -> Vec<TestCase> {
        generate_tests(program, &testgen_options(&backend.capabilities(), 16)).unwrap()
    }

    #[test]
    fn correct_backend_passes_generated_tests() {
        let program = tna_test_program();
        let backend = TofinoBackend::new();
        let tests = tna_tests(&backend, &program);
        let binary = backend.compile(&program).expect("compiles");
        let report = backend.run(&binary, &tests);
        assert_eq!(
            report.passed, report.total,
            "mismatches: {:#?}",
            report.mismatches
        );
    }

    #[test]
    fn saturation_bug_is_detected_by_ptf_tests() {
        let program = tna_test_program();
        let backend = TofinoBackend::with_bug(BackEndBugClass::TofinoSaturationWraps);
        let tests = tna_tests(&backend, &program);
        let binary = backend.compile(&program).expect("compiles");
        let report = backend.run(&binary, &tests);
        assert!(report.found_semantic_bug());
    }

    #[test]
    fn exit_bug_is_detected_by_ptf_tests() {
        let program = tna_test_program();
        let backend = TofinoBackend::with_bug(BackEndBugClass::TofinoExitIgnored);
        let tests = tna_tests(&backend, &program);
        let binary = backend.compile(&program).expect("compiles");
        assert!(backend.run(&binary, &tests).found_semantic_bug());
    }

    #[test]
    fn slice_lowering_bug_crashes_the_backend() {
        use p4_ir::{Block, Statement};
        let program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 3, 0),
                rhs: Expr::uint(1, 4),
            }]),
        );
        assert!(TofinoBackend::new().compile(&program).is_ok());
        match TofinoBackend::with_bug(BackEndBugClass::TofinoSliceLoweringCrash).compile(&program) {
            Err(error) => assert!(error.is_crash()),
            Ok(_) => panic!("seeded crash must fire"),
        }
    }

    #[test]
    fn restriction_violations_are_proper_rejections() {
        use p4_ir::{BinOp, Block, Statement};
        // Multiplication is not supported on the TNA model.
        let program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Mul,
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::dotted(&["hdr", "h", "c"]),
                ),
            )]),
        );
        match TofinoBackend::new().compile(&program) {
            Err(TargetError::Rejected { message }) => assert!(message.contains("multiplication")),
            other => panic!("expected a rejection, got {other:?}"),
        }
    }
}
