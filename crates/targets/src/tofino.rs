//! The simulated "Tofino" back end: a closed-source, proprietary compiler
//! stand-in (paper §6).
//!
//! The real Tofino compiler consumes P4C's front/mid end output and lowers
//! it through undocumented proprietary passes; Gauntlet therefore cannot use
//! translation validation and falls back to test-case generation against the
//! Tofino software simulator (PTF).  This module reproduces that *access
//! model*: `TofinoBackend::compile` runs the shared front/mid end plus
//! back-end-specific restriction checks (and, when seeded, back-end bugs),
//! and the resulting [`TofinoBinary`] exposes only a packet-level test
//! interface — callers never see the transformed program.

use crate::bugs::{BackEndBugClass, ExecutionQuirks};
use crate::concrete::{execute_block, TableRuntime, UndefinedPolicy};
use crate::harness::{compare_outputs, run_batch, TestOutcome, TestReport};
use p4_ir::{Architecture, Expr, Program, Statement, Visitor};
use p4_symbolic::TestCase;
use p4c::{CompileError, Compiler};
use std::fmt;

/// Errors from the Tofino compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TofinoError {
    /// The compiler crashed (assertion violation in a back-end pass).
    Crash { pass: String, message: String },
    /// The compiler rejected the program with a diagnostic.
    Rejected { message: String },
}

impl TofinoError {
    pub fn is_crash(&self) -> bool {
        matches!(self, TofinoError::Crash { .. })
    }
}

impl fmt::Display for TofinoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TofinoError::Crash { pass, message } => {
                write!(f, "tofino compiler crash in `{pass}`: {message}")
            }
            TofinoError::Rejected { message } => write!(f, "tofino compiler error: {message}"),
        }
    }
}

impl std::error::Error for TofinoError {}

/// The closed-source compiler.
#[derive(Debug, Default)]
pub struct TofinoBackend {
    bug: Option<BackEndBugClass>,
}

impl TofinoBackend {
    pub fn new() -> TofinoBackend {
        TofinoBackend { bug: None }
    }

    /// A back end seeded with one of the Tofino bug classes.
    pub fn with_bug(bug: BackEndBugClass) -> TofinoBackend {
        TofinoBackend { bug: Some(bug) }
    }

    /// Compiles a program for the Tofino pipeline.  The intermediate
    /// representation is *not* exposed; only a loadable binary comes back.
    pub fn compile(&self, program: &Program) -> Result<TofinoBinary, TofinoError> {
        // Shared front/mid end (the real back end links against P4C).
        let front_end = Compiler::reference();
        let result = front_end.compile(program).map_err(|error| match error {
            CompileError::Crash { pass, message, .. } => TofinoError::Crash { pass, message },
            CompileError::Rejected { pass, diagnostics } => TofinoError::Rejected {
                message: format!("{pass}: {}", diagnostics.join("; ")),
            },
        })?;
        let lowered = result.program;

        // Back-end restriction checks.
        let restrictions = Architecture::by_name(&lowered.architecture)
            .map(|a| a.restrictions)
            .unwrap_or_default();
        let mut scan = BackendScan::default();
        scan.visit_program(&lowered);
        if scan.has_multiplication && !restrictions.allows_multiplication {
            return Err(TofinoError::Rejected {
                message: "multiplication is not supported by the match-action pipeline".into(),
            });
        }
        if let Some(width) = scan
            .widest_operand
            .filter(|w| *w > restrictions.max_operand_width)
        {
            return Err(TofinoError::Rejected {
                message: format!("operand width {width} exceeds the pipeline's ALU width"),
            });
        }
        // Seeded back-end crash: the slice-lowering pass blows an assertion.
        if self.bug == Some(BackEndBugClass::TofinoSliceLoweringCrash) && scan.has_slice_assignment
        {
            return Err(TofinoError::Crash {
                pass: "TofinoSliceLowering".into(),
                message: "assertion failed: unexpected slice l-value after lowering".into(),
            });
        }
        Ok(TofinoBinary {
            program: lowered,
            quirks: ExecutionQuirks::for_bug(self.bug),
        })
    }
}

/// A compiled Tofino image loaded into the software simulator.  The
/// transformed program is private: callers interact through packets only.
#[derive(Debug, Clone)]
pub struct TofinoBinary {
    program: Program,
    quirks: ExecutionQuirks,
}

impl TofinoBinary {
    /// Replays one PTF test case on the simulator.
    pub fn run_test(&self, test: &TestCase) -> TestOutcome {
        let tables = TableRuntime::new(test.table_config.clone());
        match execute_block(
            &self.program,
            "ingress",
            &test.inputs,
            &tables,
            self.quirks,
            UndefinedPolicy::Zero,
        ) {
            Ok(observed) => compare_outputs(test, &observed),
            Err(error) => TestOutcome::Skipped(error.to_string()),
        }
    }
}

/// The PTF harness: replay a batch of generated tests against the simulator.
pub fn run_ptf(binary: &TofinoBinary, tests: &[TestCase]) -> TestReport {
    run_batch(tests, |test| binary.run_test(test))
}

/// Structural facts the back end checks before accepting a program.
#[derive(Debug, Default)]
struct BackendScan {
    has_multiplication: bool,
    has_slice_assignment: bool,
    widest_operand: Option<u32>,
}

impl Visitor for BackendScan {
    fn visit_statement(&mut self, stmt: &Statement) {
        if let Statement::Assign {
            lhs: Expr::Slice { .. },
            ..
        } = stmt
        {
            self.has_slice_assignment = true;
        }
        p4_ir::visit::walk_statement(self, stmt);
    }

    fn visit_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Binary { op, .. } if *op == p4_ir::BinOp::Mul => self.has_multiplication = true,
            Expr::Int {
                width: Some(width), ..
            } => {
                self.widest_operand = Some(self.widest_operand.unwrap_or(0).max(*width));
            }
            Expr::Cast { ty, .. } => {
                if let Some(width) = ty.width() {
                    self.widest_operand = Some(self.widest_operand.unwrap_or(0).max(width));
                }
            }
            _ => {}
        }
        p4_ir::visit::walk_expr(self, expr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_symbolic::{generate_tests, TestGenOptions};

    fn tna_test_program() -> Program {
        use p4_ir::{BinOp, Block, Statement};
        builder::tna_program(
            vec![],
            Block::new(vec![
                Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::binary(
                        BinOp::SatAdd,
                        Expr::dotted(&["hdr", "h", "b"]),
                        Expr::uint(255, 8),
                    ),
                ),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "c"]), Expr::uint(9, 8)),
            ]),
        )
    }

    fn tna_testgen_options() -> TestGenOptions {
        TestGenOptions {
            block: "ingress".into(),
            ..TestGenOptions::default()
        }
    }

    #[test]
    fn correct_backend_passes_generated_tests() {
        let program = tna_test_program();
        let tests = generate_tests(&program, &tna_testgen_options()).unwrap();
        let binary = TofinoBackend::new().compile(&program).expect("compiles");
        let report = run_ptf(&binary, &tests);
        assert_eq!(
            report.passed, report.total,
            "mismatches: {:#?}",
            report.mismatches
        );
    }

    #[test]
    fn saturation_bug_is_detected_by_ptf_tests() {
        let program = tna_test_program();
        let tests = generate_tests(&program, &tna_testgen_options()).unwrap();
        let binary = TofinoBackend::with_bug(BackEndBugClass::TofinoSaturationWraps)
            .compile(&program)
            .expect("compiles");
        let report = run_ptf(&binary, &tests);
        assert!(report.found_semantic_bug());
    }

    #[test]
    fn exit_bug_is_detected_by_ptf_tests() {
        let program = tna_test_program();
        let tests = generate_tests(&program, &tna_testgen_options()).unwrap();
        let binary = TofinoBackend::with_bug(BackEndBugClass::TofinoExitIgnored)
            .compile(&program)
            .expect("compiles");
        assert!(run_ptf(&binary, &tests).found_semantic_bug());
    }

    #[test]
    fn slice_lowering_bug_crashes_the_backend() {
        use p4_ir::{Block, Statement};
        let program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 3, 0),
                rhs: Expr::uint(1, 4),
            }]),
        );
        assert!(TofinoBackend::new().compile(&program).is_ok());
        match TofinoBackend::with_bug(BackEndBugClass::TofinoSliceLoweringCrash).compile(&program) {
            Err(error) => assert!(error.is_crash()),
            Ok(_) => panic!("seeded crash must fire"),
        }
    }

    #[test]
    fn restriction_violations_are_proper_rejections() {
        use p4_ir::{BinOp, Block, Statement};
        // Multiplication is not supported on the TNA model.
        let program = builder::tna_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Mul,
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::dotted(&["hdr", "h", "c"]),
                ),
            )]),
        );
        match TofinoBackend::new().compile(&program) {
            Err(TofinoError::Rejected { message }) => assert!(message.contains("multiplication")),
            other => panic!("expected a rejection, got {other:?}"),
        }
    }
}
