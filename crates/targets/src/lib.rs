//! # targets — simulated P4 back ends and their test frameworks
//!
//! The paper evaluates Gauntlet against two production back ends: the BMv2
//! reference software switch (tested through STF) and the proprietary
//! Barefoot Tofino compiler (tested through PTF against the Tofino software
//! simulator).  Neither is available here, so this crate provides
//! behaviour-compatible stand-ins:
//!
//! * [`bmv2`] — an open target that executes the compiled program directly
//!   and zero-initialises undefined values, plus an STF-style harness;
//! * [`tofino`] — a "closed-source" back end that reuses the shared
//!   front/mid end, enforces pipeline restrictions, hides its intermediate
//!   representation, and exposes only a PTF-style packet interface;
//! * [`bugs`] — the seeded back-end defect catalogue used to reproduce the
//!   back-end rows of the paper's Tables 2 and 3;
//! * [`concrete`] — the shared concrete execution engine (deliberately an
//!   independent implementation from the symbolic interpreter).

pub mod bmv2;
pub mod bugs;
pub mod concrete;
pub mod harness;
pub mod tofino;

pub use bmv2::{run_stf, Bmv2Target};
pub use bugs::{BackEndBugClass, Backend, ExecutionQuirks};
pub use concrete::{execute_block, ExecError, TableRuntime, UndefinedPolicy};
pub use harness::{compare_outputs, run_batch, Mismatch, TestOutcome, TestReport};
pub use tofino::{run_ptf, TofinoBackend, TofinoBinary, TofinoError};
