//! # targets — simulated P4 back ends behind one `Target` trait
//!
//! The paper evaluates Gauntlet against production back ends: the BMv2
//! reference software switch (tested through STF) and the proprietary
//! Barefoot Tofino compiler (tested through PTF against the Tofino software
//! simulator).  Neither is available here, so this crate provides
//! behaviour-compatible stand-ins — and, more importantly, the *uniform
//! interface* the pipeline drives them through:
//!
//! * [`target`] — the [`Target`] trait (compile → [`Artifact`] → replay
//!   tests), capability flags, and the shared [`drive_target`] driver that
//!   both the detection pipeline and the reduction oracles call;
//! * [`registry`] — the [`TargetRegistry`]: campaigns select back ends by
//!   name (with seeded-bug injection hooks) instead of compile-time
//!   branching;
//! * [`bmv2`] — an open target that executes the compiled program directly
//!   and zero-initialises undefined values (STF-style harness);
//! * [`tofino`] — a "closed-source" back end that reuses the shared
//!   front/mid end, enforces pipeline restrictions, hides its intermediate
//!   representation, and exposes only a PTF-style packet interface;
//! * [`refinterp`] — the reference-interpreter target wrapping
//!   `p4_symbolic`'s interpreter ("the model is the oracle");
//! * [`bugs`] — the seeded back-end defect catalogue used to reproduce the
//!   back-end rows of the paper's Tables 2 and 3;
//! * [`concrete`] — the shared concrete execution engine (deliberately an
//!   independent implementation from the symbolic interpreter);
//! * [`harness`] — test-report types and the shared batch runner.

pub mod bmv2;
pub mod bugs;
pub mod concrete;
pub mod harness;
pub mod refinterp;
pub mod registry;
pub mod target;
pub mod tofino;

pub use bmv2::{Bmv2Image, Bmv2Target};
pub use bugs::{BackEndBugClass, Backend, ExecutionQuirks};
pub use concrete::{execute_block, ExecError, TableRuntime, UndefinedPolicy};
pub use harness::{compare_outputs, run_batch, Mismatch, TestOutcome, TestReport};
pub use refinterp::RefInterpTarget;
pub use registry::{TargetCtor, TargetRegistry, UnknownTargetError};
pub use target::{
    drive_target, testgen_options, Artifact, LoadedArtifact, Target, TargetCaps, TargetError,
    TargetFinding,
};
pub use tofino::{TofinoBackend, TofinoBinary};
