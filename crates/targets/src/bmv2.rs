//! The BMv2 ("simple switch") reference software target and its STF-style
//! test harness (paper §6.2).
//!
//! BMv2 executes the compiled program directly; undefined values are
//! zero-initialised, which is the behaviour the paper calls out when asking
//! Z3 for non-zero test inputs.

use crate::bugs::{BackEndBugClass, ExecutionQuirks};
use crate::concrete::{execute_block, TableRuntime, UndefinedPolicy};
use crate::harness::{compare_outputs, run_batch, TestOutcome, TestReport};
use p4_ir::Program;
use p4_symbolic::TestCase;

/// A loaded BMv2 instance running one compiled program.
#[derive(Debug, Clone)]
pub struct Bmv2Target {
    program: Program,
    quirks: ExecutionQuirks,
}

impl Bmv2Target {
    /// Loads the compiled program into a correct BMv2 instance.
    pub fn new(program: Program) -> Bmv2Target {
        Bmv2Target {
            program,
            quirks: ExecutionQuirks::default(),
        }
    }

    /// Loads the program into a BMv2 instance seeded with a back-end defect.
    pub fn with_bug(program: Program, bug: BackEndBugClass) -> Bmv2Target {
        Bmv2Target {
            program,
            quirks: ExecutionQuirks::for_bug(Some(bug)),
        }
    }

    /// The slot this target executes for end-to-end tests.
    pub fn block(&self) -> &'static str {
        "ingress"
    }

    /// Replays one STF test case: install the table entries, inject the
    /// packet, compare the observed output against the expectation.
    pub fn run_test(&self, test: &TestCase) -> TestOutcome {
        let tables = TableRuntime::new(test.table_config.clone());
        match execute_block(
            &self.program,
            self.block(),
            &test.inputs,
            &tables,
            self.quirks,
            UndefinedPolicy::Zero,
        ) {
            Ok(observed) => compare_outputs(test, &observed),
            Err(error) => TestOutcome::Skipped(error.to_string()),
        }
    }
}

/// The STF harness: replays a batch of tests and aggregates the report.
pub fn run_stf(target: &Bmv2Target, tests: &[TestCase]) -> TestReport {
    run_batch(tests, |test| target.run_test(test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_symbolic::{generate_tests, TestGenOptions};

    #[test]
    fn generated_tests_pass_on_the_faithful_target() {
        let (locals, apply) = builder::figure3_table_control();
        let program = builder::v1model_program(locals, apply);
        let tests = generate_tests(&program, &TestGenOptions::default()).unwrap();
        assert!(!tests.is_empty());
        let target = Bmv2Target::new(program);
        let report = run_stf(&target, &tests);
        assert_eq!(
            report.passed, report.total,
            "mismatches: {:#?}",
            report.mismatches
        );
    }

    #[test]
    fn seeded_exit_bug_is_caught_by_stf_tests() {
        use p4_ir::{Block, Expr, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        );
        let tests = generate_tests(&program, &TestGenOptions::default()).unwrap();
        let good = Bmv2Target::new(program.clone());
        assert!(!run_stf(&good, &tests).found_semantic_bug());
        let buggy = Bmv2Target::with_bug(program, BackEndBugClass::Bmv2ExitIgnored);
        assert!(run_stf(&buggy, &tests).found_semantic_bug());
    }

    #[test]
    fn seeded_slice_bug_is_caught_by_stf_tests() {
        use p4_ir::{Block, Expr, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 7, 4),
                rhs: Expr::uint(0x5, 4),
            }]),
        );
        let tests = generate_tests(&program, &TestGenOptions::default()).unwrap();
        let buggy = Bmv2Target::with_bug(program, BackEndBugClass::Bmv2SliceWritesWholeField);
        // Writing the upper nibble: the correct target produces 0x5?, the
        // quirked target produces 0x05 — any input reveals the difference.
        let report = run_stf(&buggy, &tests);
        assert!(report.total > 0);
        assert!(
            report.found_semantic_bug(),
            "expected the slice quirk to be visible: {:#?}",
            tests
        );
    }
}
