//! The BMv2 ("simple switch") reference software target and its STF-style
//! test harness (paper §6.2).
//!
//! BMv2 consumes the shared front/mid end's output and executes it directly;
//! undefined values are zero-initialised, which is the behaviour the paper
//! calls out when asking Z3 for non-zero test inputs.

use crate::bugs::{BackEndBugClass, ExecutionQuirks};
use crate::concrete::{execute_block, TableRuntime, UndefinedPolicy};
use crate::harness::{compare_outputs, TestOutcome};
use crate::target::{Artifact, LoadedArtifact, Target, TargetError};
use p4_ir::Program;
use p4_symbolic::TestCase;
use p4c::Compiler;

/// The BMv2 back end: the shared (reference) front/mid end plus the
/// `simple_switch` execution engine, optionally seeded with a back-end
/// defect.
#[derive(Debug, Default)]
pub struct Bmv2Target {
    bug: Option<BackEndBugClass>,
}

impl Bmv2Target {
    /// A correct BMv2 back end.
    pub fn new() -> Bmv2Target {
        Bmv2Target::default()
    }

    /// A BMv2 back end seeded with a back-end defect.
    pub fn with_bug(bug: BackEndBugClass) -> Bmv2Target {
        Bmv2Target { bug: Some(bug) }
    }
}

impl Target for Bmv2Target {
    fn name(&self) -> &'static str {
        "bmv2"
    }

    fn platform_label(&self) -> &'static str {
        "Bmv2"
    }

    fn harness(&self) -> &'static str {
        "STF"
    }

    fn compile(&self, program: &Program) -> Result<Artifact, TargetError> {
        let result = Compiler::reference().compile(program)?;
        Ok(Artifact::new(Bmv2Image {
            program: result.program,
            quirks: ExecutionQuirks::for_bug(self.bug),
        }))
    }
}

/// A compiled program loaded into a BMv2 instance.
#[derive(Debug, Clone)]
pub struct Bmv2Image {
    program: Program,
    quirks: ExecutionQuirks,
}

impl Bmv2Image {
    /// Loads an already-compiled program directly (bypassing the front/mid
    /// end), e.g. for harness-level tests.
    pub fn load(program: Program, bug: Option<BackEndBugClass>) -> Bmv2Image {
        Bmv2Image {
            program,
            quirks: ExecutionQuirks::for_bug(bug),
        }
    }
}

impl LoadedArtifact for Bmv2Image {
    /// Replays one STF test case: install the table entries, inject the
    /// packet, compare the observed output against the expectation.
    fn run_test(&self, test: &TestCase) -> TestOutcome {
        let tables = TableRuntime::new(test.table_config.clone());
        match execute_block(
            &self.program,
            "ingress",
            &test.inputs,
            &tables,
            self.quirks,
            UndefinedPolicy::Zero,
        ) {
            Ok(observed) => compare_outputs(test, &observed),
            Err(error) => TestOutcome::Skipped(error.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::testgen_options;
    use p4_ir::builder;
    use p4_symbolic::generate_tests;

    fn tests_for(target: &Bmv2Target, program: &Program) -> Vec<TestCase> {
        generate_tests(program, &testgen_options(&target.capabilities(), 16)).unwrap()
    }

    #[test]
    fn generated_tests_pass_on_the_faithful_target() {
        let (locals, apply) = builder::figure3_table_control();
        let program = builder::v1model_program(locals, apply);
        let target = Bmv2Target::new();
        let tests = tests_for(&target, &program);
        assert!(!tests.is_empty());
        let artifact = target.compile(&program).expect("compiles");
        let report = target.run(&artifact, &tests);
        assert_eq!(
            report.passed, report.total,
            "mismatches: {:#?}",
            report.mismatches
        );
    }

    #[test]
    fn seeded_exit_bug_is_caught_by_stf_tests() {
        use p4_ir::{Block, Expr, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        );
        let good = Bmv2Target::new();
        let tests = tests_for(&good, &program);
        let artifact = good.compile(&program).expect("compiles");
        assert!(!good.run(&artifact, &tests).found_semantic_bug());
        let buggy = Bmv2Target::with_bug(BackEndBugClass::Bmv2ExitIgnored);
        let artifact = buggy.compile(&program).expect("compiles");
        assert!(buggy.run(&artifact, &tests).found_semantic_bug());
    }

    #[test]
    fn seeded_slice_bug_is_caught_by_stf_tests() {
        use p4_ir::{Block, Expr, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::Assign {
                lhs: Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 7, 4),
                rhs: Expr::uint(0x5, 4),
            }]),
        );
        let buggy = Bmv2Target::with_bug(BackEndBugClass::Bmv2SliceWritesWholeField);
        let tests = tests_for(&buggy, &program);
        let artifact = buggy.compile(&program).expect("compiles");
        // Writing the upper nibble: the correct target produces 0x5?, the
        // quirked target produces 0x05 — any input reveals the difference.
        let report = buggy.run(&artifact, &tests);
        assert!(report.total > 0);
        assert!(
            report.found_semantic_bug(),
            "expected the slice quirk to be visible: {:#?}",
            tests
        );
    }

    /// The image can also be loaded directly with an already-compiled
    /// program (harness-level access, bypassing the front/mid end).
    #[test]
    fn preloaded_image_replays_tests() {
        let (locals, apply) = builder::figure3_table_control();
        let program = builder::v1model_program(locals, apply);
        let target = Bmv2Target::new();
        let tests = tests_for(&target, &program);
        let compiled = Compiler::reference()
            .compile(&program)
            .expect("compiles")
            .program;
        let image = Bmv2Image::load(compiled, None);
        for test in &tests {
            assert!(image.run_test(test).is_pass(), "test {}", test.path);
        }
    }
}
