//! The back-end registry: campaigns select targets by *name* (plus an
//! optional seeded-bug hook) instead of compile-time branching, so adding a
//! back end is one `register` call and zero changes to the pipeline.

use crate::bmv2::Bmv2Target;
use crate::bugs::BackEndBugClass;
use crate::refinterp::RefInterpTarget;
use crate::target::Target;
use crate::tofino::TofinoBackend;
use std::collections::BTreeMap;
use std::fmt;

/// A target constructor: builds a fresh target instance, optionally seeded
/// with a back-end defect (the bug-injection hook used by the evaluation
/// campaign).  Returns `Err` with a reason when the target cannot model
/// the requested defect.  Plain function pointer so registries can be
/// rebuilt cheaply on every worker thread.
pub type TargetCtor = fn(Option<BackEndBugClass>) -> Result<Box<dyn Target>, String>;

/// Error for a name or spec the registry cannot resolve: either the name
/// is not registered, or the target refused the requested seeded defect
/// (`reason` carries the target's explanation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTargetError {
    pub spec: String,
    pub known: Vec<String>,
    pub reason: Option<String>,
}

impl fmt::Display for UnknownTargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            Some(reason) => write!(f, "invalid target spec `{}`: {reason}", self.spec),
            None => write!(
                f,
                "unknown target spec `{}` (known targets: {})",
                self.spec,
                self.known.join(", ")
            ),
        }
    }
}

impl std::error::Error for UnknownTargetError {}

/// Name → constructor registry of available back ends.
#[derive(Clone)]
pub struct TargetRegistry {
    ctors: BTreeMap<String, TargetCtor>,
}

impl TargetRegistry {
    /// An empty registry.
    pub fn new() -> TargetRegistry {
        TargetRegistry {
            ctors: BTreeMap::new(),
        }
    }

    /// The registry of in-tree back ends: `bmv2`, `tofino`, `ref-interp`.
    pub fn builtin() -> TargetRegistry {
        let mut registry = TargetRegistry::new();
        registry.register("bmv2", |bug| {
            Ok(match bug {
                Some(bug) => Box::new(Bmv2Target::with_bug(bug)),
                None => Box::new(Bmv2Target::new()),
            })
        });
        registry.register("tofino", |bug| {
            Ok(match bug {
                Some(bug) => Box::new(TofinoBackend::with_bug(bug)),
                None => Box::new(TofinoBackend::new()),
            })
        });
        registry.register("ref-interp", |bug| match bug {
            Some(BackEndBugClass::Bmv2SliceWritesWholeField) => Err(
                "Bmv2SliceWritesWholeField cannot be modelled as a lowering rewrite on ref-interp"
                    .into(),
            ),
            Some(bug) => Ok(Box::new(RefInterpTarget::with_bug(bug))),
            None => Ok(Box::new(RefInterpTarget::new())),
        });
        registry
    }

    /// Registers (or replaces) a constructor under `name`.
    pub fn register(&mut self, name: &str, ctor: TargetCtor) {
        self.ctors.insert(name.to_string(), ctor);
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.ctors.keys().cloned().collect()
    }

    /// Builds a correct (unseeded) target by name.
    pub fn build(&self, name: &str) -> Result<Box<dyn Target>, UnknownTargetError> {
        self.build_seeded(name, None)
    }

    /// Builds a target by name, seeded with an optional back-end defect.
    /// `Err` carries either "name not registered" or the target's reason
    /// for refusing the defect.
    pub fn build_seeded(
        &self,
        name: &str,
        bug: Option<BackEndBugClass>,
    ) -> Result<Box<dyn Target>, UnknownTargetError> {
        match self.ctors.get(name) {
            Some(ctor) => ctor(bug).map_err(|reason| {
                let spec = match bug {
                    Some(bug) => format!("{name}+{bug:?}"),
                    None => name.to_string(),
                };
                UnknownTargetError {
                    spec,
                    known: self.names(),
                    reason: Some(reason),
                }
            }),
            None => Err(self.unknown(name)),
        }
    }

    /// Builds a target from a campaign spec string: either a bare name
    /// (`"bmv2"`) or `name+BugClass` (`"bmv2+Bmv2ExitIgnored"`) to seed a
    /// defect — the config-file form of the bug-injection hook.
    pub fn build_spec(&self, spec: &str) -> Result<Box<dyn Target>, UnknownTargetError> {
        match spec.split_once('+') {
            None => self.build_seeded(spec, None),
            Some((name, bug)) => {
                let bug = BackEndBugClass::parse(bug).ok_or_else(|| self.unknown(spec))?;
                self.build_seeded(name, Some(bug))
            }
        }
    }

    fn unknown(&self, spec: &str) -> UnknownTargetError {
        UnknownTargetError {
            spec: spec.to_string(),
            known: self.names(),
            reason: None,
        }
    }
}

impl Default for TargetRegistry {
    fn default() -> Self {
        TargetRegistry::builtin()
    }
}

impl fmt::Debug for TargetRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TargetRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_knows_all_three_backends() {
        let registry = TargetRegistry::builtin();
        assert_eq!(registry.names(), vec!["bmv2", "ref-interp", "tofino"]);
        for name in registry.names() {
            let target = registry.build(&name).expect("builtin target builds");
            assert_eq!(target.name(), name);
        }
    }

    #[test]
    fn specs_seed_bug_classes() {
        let registry = TargetRegistry::builtin();
        assert!(registry.build_spec("bmv2+Bmv2ExitIgnored").is_ok());
        assert!(registry.build_spec("tofino+TofinoSaturationWraps").is_ok());
        let err = registry.build_spec("bmv2+NoSuchBug").unwrap_err();
        assert!(err.to_string().contains("NoSuchBug"));
        let err = registry.build_spec("netronome").unwrap_err();
        assert!(err.to_string().contains("netronome"), "{err}");
        assert!(err.known.contains(&"bmv2".to_string()));
    }

    /// A defect the target cannot model is an `Err` with the target's
    /// reason, not a panic — config errors must stay handleable.
    #[test]
    fn unsupported_seed_is_a_proper_error() {
        let registry = TargetRegistry::builtin();
        let err = registry
            .build_spec("ref-interp+Bmv2SliceWritesWholeField")
            .unwrap_err();
        assert!(err.to_string().contains("cannot be modelled"), "{err}");
        assert_eq!(err.spec, "ref-interp+Bmv2SliceWritesWholeField");
    }

    #[test]
    fn custom_targets_can_be_registered() {
        let mut registry = TargetRegistry::builtin();
        // Re-register an existing name with a different constructor.
        registry.register("bmv2", |_| {
            Ok(Box::new(crate::tofino::TofinoBackend::new()))
        });
        let target = registry.build("bmv2").expect("builds");
        assert_eq!(target.name(), "tofino");
    }
}
