//! Equivalence checking between two versions of a program — the core of
//! translation validation (paper §5).
//!
//! Both programs are interpreted with the *same* term manager so that input
//! variables (parameters, packet fields, symbolic table keys and action
//! indices) with equal names denote the same unknowns.  For every
//! programmable block we then ask the solver whether any assignment makes
//! the two output tuples differ; a satisfying assignment is a counterexample
//! packet / table configuration and the pair of differing outputs.

use crate::cache::EpochCache;
use crate::interpreter::{interpret_program, InterpError, ProgramSemantics};
use p4_ir::Program;
use smt::{CheckResult, Model, Solver, TermKind, TermManager, TermRef, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The verdict of an equivalence check.
#[derive(Debug, Clone)]
pub enum Equivalence {
    /// No input distinguishes the two programs.
    Equal,
    /// The programs differ; the payload says where and why.
    NotEqual(Counterexample),
}

impl Equivalence {
    pub fn is_equal(&self) -> bool {
        matches!(self, Equivalence::Equal)
    }
}

/// A concrete witness that two programs differ.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The architecture slot (e.g. `"ingress"`) where the difference lies.
    pub block: String,
    /// Input assignment (packet fields, metadata, table keys/actions) that
    /// triggers the difference.
    pub inputs: BTreeMap<String, Value>,
    /// Outputs that differ: `(name, value before, value after)`.
    pub differing_outputs: Vec<(String, Value, Value)>,
}

impl Counterexample {
    /// The first differing output's name — the anchor the campaign layer
    /// uses when de-duplicating findings by diverging field (translation
    /// validation keys on the full counterexample line instead).
    pub fn primary_field(&self) -> Option<&str> {
        self.differing_outputs
            .first()
            .map(|(name, _, _)| name.as_str())
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "semantic difference in block `{}`:", self.block)?;
        for (name, before, after) in &self.differing_outputs {
            writeln!(f, "  {name}: {before:?} -> {after:?}")?;
        }
        writeln!(f, "  under inputs:")?;
        for (name, value) in &self.inputs {
            writeln!(f, "    {name} = {value:?}")?;
        }
        Ok(())
    }
}

/// Errors: either program could not be interpreted (an interpreter
/// limitation, not a compiler bug) or the block structure differs in a way
/// that prevents comparison.
#[derive(Debug, Clone)]
pub enum EquivalenceError {
    Interpreter(InterpError),
    /// The two programs do not expose the same outputs for a block (e.g. a
    /// pass changed a parameter list) — reported separately so Gauntlet can
    /// flag it as an invalid transformation rather than a miscompilation.
    StructureMismatch {
        block: String,
        detail: String,
    },
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceError::Interpreter(e) => write!(f, "{e}"),
            EquivalenceError::StructureMismatch { block, detail } => {
                write!(f, "structure mismatch in block `{block}`: {detail}")
            }
        }
    }
}

impl std::error::Error for EquivalenceError {}

impl From<InterpError> for EquivalenceError {
    fn from(e: InterpError) -> Self {
        EquivalenceError::Interpreter(e)
    }
}

/// Checks whether two programs are semantically equivalent, block by block.
///
/// This is the one-shot entry point: it interprets both programs into a
/// fresh term manager and decides each block with a fresh solver.  Chains of
/// related checks (translation validation of consecutive pass snapshots)
/// should use a [`ValidationSession`] instead, which interprets every
/// program once and reuses the solver's CNF across adjacent checks.
pub fn check_equivalence(
    before: &Program,
    after: &Program,
) -> Result<Equivalence, EquivalenceError> {
    let tm = Arc::new(TermManager::new());
    let semantics_before = interpret_program(&tm, before)?;
    let semantics_after = interpret_program(&tm, after)?;
    check_semantics_equivalence(&tm, &semantics_before, &semantics_after)
}

/// Equivalence over already-computed semantics (both must come from `tm`).
pub fn check_semantics_equivalence(
    tm: &Arc<TermManager>,
    before: &ProgramSemantics,
    after: &ProgramSemantics,
) -> Result<Equivalence, EquivalenceError> {
    let mut solver = Solver::new();
    check_semantics_equivalence_with(tm, &mut solver, before, after)
}

/// Equivalence over already-computed semantics, deciding the per-block
/// queries with the caller's (possibly long-lived) `solver`.  The queries
/// are passed as assumptions, so nothing is retained in the solver — but
/// its term-to-CNF memo and learned clauses carry over to later calls,
/// which is where the incremental speedup of a [`ValidationSession`] comes
/// from.
pub fn check_semantics_equivalence_with(
    tm: &Arc<TermManager>,
    solver: &mut Solver,
    before: &ProgramSemantics,
    after: &ProgramSemantics,
) -> Result<Equivalence, EquivalenceError> {
    check_semantics_equivalence_via(tm, solver, None, before, after).map(|(verdict, _)| verdict)
}

/// Re-derives the distinguishing model for a satisfiable query from the
/// query term alone, with a fresh solver.
///
/// SAT models depend on solver history (learned clauses, phase saving,
/// variable numbering), so the model a long-lived incremental solver returns
/// for a query depends on every query it decided before — which varies with
/// session reuse, epoch caching, and worker scheduling.  The *verdict*
/// (SAT/UNSAT) is semantic and schedule-independent, so we let the warm
/// solver decide it, then pay one extra cold solve on the rare SAT path to
/// make the reported counterexample a pure function of the query structure.
/// This is what keeps rendered reports byte-identical across `--jobs`,
/// cache on/off, and portfolio on/off.
fn solve_canonical_model(query: &TermRef, fallback: Model) -> Model {
    let mut fresh = Solver::new();
    match fresh.check_with(std::slice::from_ref(query)) {
        CheckResult::Sat(model) => model,
        // A warm-SAT / cold-UNSAT disagreement would be a solver bug; the
        // warm model is still a genuine witness, so keep it.
        CheckResult::Unsat => {
            debug_assert!(false, "canonical re-solve disagreed with warm solver");
            fallback
        }
    }
}

/// The worker behind [`check_semantics_equivalence_with`]: optionally
/// consults/updates an [`EpochCache`] verdict memo, and returns how many
/// per-block queries the memo served (for session accounting).
pub(crate) fn check_semantics_equivalence_via(
    tm: &Arc<TermManager>,
    solver: &mut Solver,
    cache: Option<&EpochCache>,
    before: &ProgramSemantics,
    after: &ProgramSemantics,
) -> Result<(Equivalence, u64), EquivalenceError> {
    let mut memo_served = 0u64;
    for block_before in &before.blocks {
        let Some(block_after) = after.block(&block_before.slot) else {
            return Err(EquivalenceError::StructureMismatch {
                block: block_before.slot.clone(),
                detail: "block missing after the pass".into(),
            });
        };
        // Pair up outputs by name.
        let mut pairs: Vec<(String, TermRef, TermRef)> = Vec::new();
        for (name, term_before) in &block_before.outputs {
            match block_after.output(name) {
                Some(term_after) => {
                    pairs.push((name.clone(), term_before.clone(), term_after.clone()))
                }
                None => {
                    return Err(EquivalenceError::StructureMismatch {
                        block: block_before.slot.clone(),
                        detail: format!("output `{name}` missing after the pass"),
                    })
                }
            }
        }
        if pairs.is_empty() {
            continue;
        }
        // The query: does any input make at least one output differ?  Terms
        // are hash-consed, so outputs a pass did not touch compare with
        // identical ids and their disjuncts fold away to `false` here.
        let mut disjuncts = Vec::with_capacity(pairs.len());
        for (_, term_before, term_after) in &pairs {
            if term_before.sort != term_after.sort {
                return Err(EquivalenceError::StructureMismatch {
                    block: block_before.slot.clone(),
                    detail: "output widths differ".into(),
                });
            }
            disjuncts.push(tm.neq(term_before.clone(), term_after.clone()));
        }
        let query = tm.or(disjuncts);
        if matches!(query.kind, TermKind::BoolConst(false)) {
            // Every output is syntactically identical: equal without solving.
            continue;
        }
        // Epoch verdict memo: a structurally identical query (same
        // hash-consed id) decided by any worker this epoch is not decided
        // again.  Cached SAT verdicts carry the canonical model, so the
        // counterexample built from them is identical to the uncached one.
        if let Some(cache) = cache {
            match cache.lookup_verdict(query.id) {
                Some(None) => {
                    memo_served += 1;
                    continue;
                }
                Some(Some(model)) => {
                    memo_served += 1;
                    return Ok((
                        Equivalence::NotEqual(build_counterexample(
                            &block_before.slot,
                            &model,
                            &pairs,
                            &block_before.inputs,
                        )),
                        memo_served,
                    ));
                }
                None => {}
            }
        }
        match solver.check_with(std::slice::from_ref(&query)) {
            CheckResult::Unsat => {
                if let Some(cache) = cache {
                    cache.store_verdict(query.id, None);
                }
                continue;
            }
            CheckResult::Sat(model) => {
                let canonical = solve_canonical_model(&query, model);
                if let Some(cache) = cache {
                    cache.store_verdict(query.id, Some(canonical.clone()));
                }
                return Ok((
                    Equivalence::NotEqual(build_counterexample(
                        &block_before.slot,
                        &canonical,
                        &pairs,
                        &block_before.inputs,
                    )),
                    memo_served,
                ));
            }
        }
    }
    Ok((Equivalence::Equal, memo_served))
}

/// Counters describing how much work a [`ValidationSession`] saved.
///
/// These are *per-session* tallies; when several sessions share one
/// [`EpochCache`] the cache's own [`crate::cache::CacheStats`] is the exact
/// pool-wide aggregate, and the two reconcile: summing the session counters
/// over every attached session yields the cache totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Programs whose semantics were served from the cache.
    pub semantics_hits: u64,
    /// Programs that had to be interpreted.
    pub semantics_misses: u64,
    /// Equivalence checks decided without touching the solver because every
    /// output pair was syntactically identical after hash-consing.
    pub trivial_checks: u64,
    /// Equivalence checks that went to the solver.
    pub solver_checks: u64,
    /// Equivalence checks decided entirely by the epoch verdict memo (at
    /// least one memoised query, no solver call).
    pub cached_checks: u64,
    /// Per-block queries this session served from the epoch verdict memo.
    pub verdict_hits: u64,
    /// Per-block queries this session had to decide with its solver.
    pub verdict_misses: u64,
}

/// A long-lived equivalence-checking session with incremental reuse.
///
/// Gauntlet validates a *chain* p₀ ≡ p₁ ≡ … ≡ pₙ of per-pass snapshots: the
/// program emitted by pass *i* is the right-hand side of one check and the
/// left-hand side of the next.  A session exploits that structure twice
/// over:
///
/// * **semantics cache** — each distinct program is symbolically interpreted
///   once (keyed by structural hash) and the resulting [`ProgramSemantics`]
///   is shared between adjacent checks;
/// * **incremental solver** — all terms live in one hash-consing
///   [`TermManager`], and one [`Solver`] decides every query via
///   assumptions, so subterms shared across the chain are bit-blasted once
///   and learned clauses carry over.
pub struct ValidationSession {
    /// Campaign-scoped shared state: term manager, semantics memo, verdict
    /// memo.  A standalone session owns a private cache; campaign workers
    /// attach to one shared instance via [`Self::with_cache`].
    cache: Arc<EpochCache>,
    solver: Solver,
    stats: SessionStats,
}

impl Default for ValidationSession {
    fn default() -> Self {
        ValidationSession::new()
    }
}

impl ValidationSession {
    /// A standalone session with its own private cache.
    pub fn new() -> ValidationSession {
        ValidationSession::with_cache(Arc::new(EpochCache::new()))
    }

    /// A session that shares `cache` (term manager, semantics memo, verdict
    /// memo) with every other session attached to it.  The session's solver
    /// and counters stay private — only the memoisation layers are shared.
    pub fn with_cache(cache: Arc<EpochCache>) -> ValidationSession {
        ValidationSession {
            cache,
            solver: Solver::new(),
            stats: SessionStats::default(),
        }
    }

    /// The shared term manager (all cached semantics use it).  Cloned out
    /// of the cache because a campaign cache may swap managers at an epoch
    /// barrier; sessions never straddle a barrier, so the clone a session
    /// works with stays the cache's current manager for its whole life.
    pub fn term_manager(&self) -> Arc<TermManager> {
        self.cache.term_manager()
    }

    /// The epoch cache this session is attached to.
    pub fn cache(&self) -> &Arc<EpochCache> {
        &self.cache
    }

    /// Usage counters for this session.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Statistics of this session's most recent solver call.
    pub fn solver_stats(&self) -> smt::SolverStats {
        self.solver.stats()
    }

    /// Enables portfolio solving on this session's solver: a query whose
    /// incremental solve exceeds the configured conflict budget is re-raced
    /// across K diverse solver configurations (see
    /// [`smt::PortfolioOptions`]).  Verdicts are SAT/UNSAT-semantic and
    /// counterexample models are canonicalised, so enabling this never
    /// changes a session's reported results — only how long the rare hard
    /// miter takes.
    pub fn set_portfolio(&mut self, options: smt::PortfolioOptions) {
        self.solver.set_portfolio(Some(options));
    }

    /// How many queries escalated to a portfolio race so far.
    pub fn portfolio_races(&self) -> u64 {
        self.solver.portfolio_races()
    }

    /// The symbolic semantics of `program`, interpreting it only on the
    /// first request across *all* sessions attached to the cache (keyed by
    /// the program's structural hash, with the program itself compared on a
    /// hit to rule out hash collisions).
    pub fn semantics(&mut self, program: &Program) -> Result<Arc<ProgramSemantics>, InterpError> {
        let (semantics, hit) = self.cache.semantics(program)?;
        if hit {
            self.stats.semantics_hits += 1;
        } else {
            self.stats.semantics_misses += 1;
        }
        Ok(semantics)
    }

    /// Checks two programs for equivalence with full incremental reuse.
    pub fn check_pair(
        &mut self,
        before: &Program,
        after: &Program,
    ) -> Result<Equivalence, EquivalenceError> {
        let _telemetry = gauntlet_telemetry::Span::begin(gauntlet_telemetry::Stage::Validate);
        let semantics_before = self.semantics(before)?;
        let semantics_after = self.semantics(after)?;
        let solver_checks_before = self.solver.total_checks();
        let result = check_semantics_equivalence_via(
            &self.cache.term_manager(),
            &mut self.solver,
            Some(&self.cache),
            &semantics_before,
            &semantics_after,
        );
        let solver_queries = self.solver.total_checks() - solver_checks_before;
        self.stats.verdict_misses += solver_queries;
        if let Ok((_, memo_served)) = &result {
            self.stats.verdict_hits += memo_served;
            if solver_queries == 0 {
                if *memo_served > 0 {
                    self.stats.cached_checks += 1;
                } else {
                    self.stats.trivial_checks += 1;
                }
            } else {
                self.stats.solver_checks += 1;
            }
        } else if solver_queries == 0 {
            self.stats.trivial_checks += 1;
        } else {
            self.stats.solver_checks += 1;
        }
        result.map(|(verdict, _)| verdict)
    }
}

fn build_counterexample(
    block: &str,
    model: &Model,
    pairs: &[(String, TermRef, TermRef)],
    inputs: &[(String, u32)],
) -> Counterexample {
    let mut differing = Vec::new();
    for (name, term_before, term_after) in pairs {
        let value_before = model.eval(term_before);
        let value_after = model.eval(term_after);
        if value_before != value_after {
            differing.push((name.clone(), value_before, value_after));
        }
    }
    let mut input_values = BTreeMap::new();
    // Record the model's choice for every declared block input; inputs the
    // model does not mention default to zero (they were irrelevant).
    for (name, width) in inputs {
        let value = model
            .get(name)
            .cloned()
            .unwrap_or_else(|| Value::bv(0, (*width).max(1)));
        input_values.insert(name.clone(), value);
    }
    // Also include every other variable the model assigned (table keys,
    // action indices, packet fields) — they are part of the trigger.
    for (name, value) in model.bindings() {
        if !name.starts_with("undef.") && !name.starts_with("extern") {
            input_values
                .entry(name.clone())
                .or_insert_with(|| value.clone());
        }
    }
    Counterexample {
        block: block.to_string(),
        inputs: input_values,
        differing_outputs: differing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{BinOp, Block, Expr, Statement};

    #[test]
    fn identical_programs_are_equivalent() {
        let program = builder::trivial_program();
        let result = check_equivalence(&program, &program.clone()).unwrap();
        assert!(result.is_equal());
    }

    #[test]
    fn semantically_equal_but_syntactically_different_programs_are_equivalent() {
        // x + 0 vs x: strength reduction's rewrite is validated as correct.
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(0, 8),
                ),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::dotted(&["hdr", "h", "b"]),
            )]),
        );
        assert!(check_equivalence(&before, &after).unwrap().is_equal());
    }

    #[test]
    fn dropped_write_is_detected_with_counterexample() {
        // The Figure-5a-style miscompilation: the write disappears.
        let before = builder::trivial_program();
        let after = builder::v1model_program(vec![], Block::empty());
        match check_equivalence(&before, &after).unwrap() {
            Equivalence::NotEqual(cex) => {
                assert_eq!(cex.block, "ingress");
                assert!(cex
                    .differing_outputs
                    .iter()
                    .any(|(name, _, _)| name == "hdr.h.a"));
            }
            Equivalence::Equal => panic!("must detect the dropped write"),
        }
    }

    #[test]
    fn branch_swap_is_detected() {
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(0, 8),
                ),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(0, 8),
                ),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(1, 8)),
            )]),
        );
        match check_equivalence(&before, &after).unwrap() {
            Equivalence::NotEqual(cex) => {
                // The counterexample fixes hdr.h.a to one side of the branch.
                assert!(cex.inputs.contains_key("hdr.h.a"));
                assert!(!cex.differing_outputs.is_empty());
            }
            Equivalence::Equal => panic!("swapped branches must be detected"),
        }
    }

    #[test]
    fn table_semantics_compare_equal_across_identical_programs() {
        let (locals, apply) = builder::figure3_table_control();
        let before = builder::v1model_program(locals.clone(), apply.clone());
        let after = builder::v1model_program(locals, apply);
        assert!(check_equivalence(&before, &after).unwrap().is_equal());
    }

    #[test]
    fn session_cache_agrees_with_the_uncached_path() {
        // The same pairs, checked through a shared session (cached
        // semantics + incremental solver) and through the one-shot path,
        // must produce the same verdicts.
        let equal_pair = {
            let before = builder::v1model_program(
                vec![],
                Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::binary(
                        BinOp::Add,
                        Expr::dotted(&["hdr", "h", "b"]),
                        Expr::uint(0, 8),
                    ),
                )]),
            );
            let after = builder::v1model_program(
                vec![],
                Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::dotted(&["hdr", "h", "b"]),
                )]),
            );
            (before, after)
        };
        let unequal_pair = (
            builder::trivial_program(),
            builder::v1model_program(vec![], Block::empty()),
        );

        let mut session = ValidationSession::new();
        for (before, after) in [&equal_pair, &unequal_pair] {
            let uncached = check_equivalence(before, after).unwrap();
            let cached = session.check_pair(before, after).unwrap();
            assert_eq!(cached.is_equal(), uncached.is_equal());
            // Re-checking through the session hits the semantics cache and
            // still agrees.
            let cached_again = session.check_pair(before, after).unwrap();
            assert_eq!(cached_again.is_equal(), uncached.is_equal());
        }
        let stats = session.stats();
        assert!(
            stats.semantics_hits >= 4,
            "re-checks must hit the cache: {stats:?}"
        );
        assert_eq!(stats.semantics_misses, 4);
    }

    #[test]
    fn session_reuses_semantics_across_a_chain() {
        // A chain p0 -> p1 -> p2: the middle program's semantics must be
        // interpreted once, not twice.
        let p0 = builder::trivial_program();
        let p1 = p0.clone();
        let p2 = p0.clone();
        let mut session = ValidationSession::new();
        assert!(session.check_pair(&p0, &p1).unwrap().is_equal());
        assert!(session.check_pair(&p1, &p2).unwrap().is_equal());
        let stats = session.stats();
        // All three programs are structurally identical here, so a single
        // interpretation serves the whole chain.
        assert_eq!(stats.semantics_misses, 1);
        assert_eq!(stats.semantics_hits, 3);
        // And identical programs decide without the solver (hash-consing
        // collapses the queries to `false`).
        assert_eq!(stats.solver_checks, 0);
        assert_eq!(stats.trivial_checks, 2);
    }

    #[test]
    fn wraparound_miscompilation_is_detected() {
        // 250 + 10 folded without wraparound (260 is not representable).
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::uint(250, 8),
                    Expr::dotted(&["hdr", "h", "b"]),
                ),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Sub,
                    Expr::uint(250, 8),
                    Expr::dotted(&["hdr", "h", "b"]),
                ),
            )]),
        );
        assert!(!check_equivalence(&before, &after).unwrap().is_equal());
    }
}
