//! Equivalence checking between two versions of a program — the core of
//! translation validation (paper §5).
//!
//! Both programs are interpreted with the *same* term manager so that input
//! variables (parameters, packet fields, symbolic table keys and action
//! indices) with equal names denote the same unknowns.  For every
//! programmable block we then ask the solver whether any assignment makes
//! the two output tuples differ; a satisfying assignment is a counterexample
//! packet / table configuration and the pair of differing outputs.

use crate::interpreter::{interpret_program, InterpError, ProgramSemantics};
use p4_ir::Program;
use smt::{CheckResult, Model, Solver, TermKind, TermManager, TermRef, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// The verdict of an equivalence check.
#[derive(Debug, Clone)]
pub enum Equivalence {
    /// No input distinguishes the two programs.
    Equal,
    /// The programs differ; the payload says where and why.
    NotEqual(Counterexample),
}

impl Equivalence {
    pub fn is_equal(&self) -> bool {
        matches!(self, Equivalence::Equal)
    }
}

/// A concrete witness that two programs differ.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The architecture slot (e.g. `"ingress"`) where the difference lies.
    pub block: String,
    /// Input assignment (packet fields, metadata, table keys/actions) that
    /// triggers the difference.
    pub inputs: BTreeMap<String, Value>,
    /// Outputs that differ: `(name, value before, value after)`.
    pub differing_outputs: Vec<(String, Value, Value)>,
}

impl Counterexample {
    /// The first differing output's name — the anchor the campaign layer
    /// uses when de-duplicating findings by diverging field (translation
    /// validation keys on the full counterexample line instead).
    pub fn primary_field(&self) -> Option<&str> {
        self.differing_outputs
            .first()
            .map(|(name, _, _)| name.as_str())
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "semantic difference in block `{}`:", self.block)?;
        for (name, before, after) in &self.differing_outputs {
            writeln!(f, "  {name}: {before:?} -> {after:?}")?;
        }
        writeln!(f, "  under inputs:")?;
        for (name, value) in &self.inputs {
            writeln!(f, "    {name} = {value:?}")?;
        }
        Ok(())
    }
}

/// Errors: either program could not be interpreted (an interpreter
/// limitation, not a compiler bug) or the block structure differs in a way
/// that prevents comparison.
#[derive(Debug, Clone)]
pub enum EquivalenceError {
    Interpreter(InterpError),
    /// The two programs do not expose the same outputs for a block (e.g. a
    /// pass changed a parameter list) — reported separately so Gauntlet can
    /// flag it as an invalid transformation rather than a miscompilation.
    StructureMismatch {
        block: String,
        detail: String,
    },
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceError::Interpreter(e) => write!(f, "{e}"),
            EquivalenceError::StructureMismatch { block, detail } => {
                write!(f, "structure mismatch in block `{block}`: {detail}")
            }
        }
    }
}

impl std::error::Error for EquivalenceError {}

impl From<InterpError> for EquivalenceError {
    fn from(e: InterpError) -> Self {
        EquivalenceError::Interpreter(e)
    }
}

/// Checks whether two programs are semantically equivalent, block by block.
///
/// This is the one-shot entry point: it interprets both programs into a
/// fresh term manager and decides each block with a fresh solver.  Chains of
/// related checks (translation validation of consecutive pass snapshots)
/// should use a [`ValidationSession`] instead, which interprets every
/// program once and reuses the solver's CNF across adjacent checks.
pub fn check_equivalence(
    before: &Program,
    after: &Program,
) -> Result<Equivalence, EquivalenceError> {
    let tm = Rc::new(TermManager::new());
    let semantics_before = interpret_program(&tm, before)?;
    let semantics_after = interpret_program(&tm, after)?;
    check_semantics_equivalence(&tm, &semantics_before, &semantics_after)
}

/// Equivalence over already-computed semantics (both must come from `tm`).
pub fn check_semantics_equivalence(
    tm: &Rc<TermManager>,
    before: &ProgramSemantics,
    after: &ProgramSemantics,
) -> Result<Equivalence, EquivalenceError> {
    let mut solver = Solver::new();
    check_semantics_equivalence_with(tm, &mut solver, before, after)
}

/// Equivalence over already-computed semantics, deciding the per-block
/// queries with the caller's (possibly long-lived) `solver`.  The queries
/// are passed as assumptions, so nothing is retained in the solver — but
/// its term-to-CNF memo and learned clauses carry over to later calls,
/// which is where the incremental speedup of a [`ValidationSession`] comes
/// from.
pub fn check_semantics_equivalence_with(
    tm: &Rc<TermManager>,
    solver: &mut Solver,
    before: &ProgramSemantics,
    after: &ProgramSemantics,
) -> Result<Equivalence, EquivalenceError> {
    for block_before in &before.blocks {
        let Some(block_after) = after.block(&block_before.slot) else {
            return Err(EquivalenceError::StructureMismatch {
                block: block_before.slot.clone(),
                detail: "block missing after the pass".into(),
            });
        };
        // Pair up outputs by name.
        let mut pairs: Vec<(String, TermRef, TermRef)> = Vec::new();
        for (name, term_before) in &block_before.outputs {
            match block_after.output(name) {
                Some(term_after) => {
                    pairs.push((name.clone(), term_before.clone(), term_after.clone()))
                }
                None => {
                    return Err(EquivalenceError::StructureMismatch {
                        block: block_before.slot.clone(),
                        detail: format!("output `{name}` missing after the pass"),
                    })
                }
            }
        }
        if pairs.is_empty() {
            continue;
        }
        // The query: does any input make at least one output differ?  Terms
        // are hash-consed, so outputs a pass did not touch compare with
        // identical ids and their disjuncts fold away to `false` here.
        let mut disjuncts = Vec::with_capacity(pairs.len());
        for (_, term_before, term_after) in &pairs {
            if term_before.sort != term_after.sort {
                return Err(EquivalenceError::StructureMismatch {
                    block: block_before.slot.clone(),
                    detail: "output widths differ".into(),
                });
            }
            disjuncts.push(tm.neq(term_before.clone(), term_after.clone()));
        }
        let query = tm.or(disjuncts);
        if matches!(query.kind, TermKind::BoolConst(false)) {
            // Every output is syntactically identical: equal without solving.
            continue;
        }
        match solver.check_with(&[query]) {
            CheckResult::Unsat => continue,
            CheckResult::Sat(model) => {
                return Ok(Equivalence::NotEqual(build_counterexample(
                    &block_before.slot,
                    &model,
                    &pairs,
                    &block_before.inputs,
                )));
            }
        }
    }
    Ok(Equivalence::Equal)
}

/// Counters describing how much work a [`ValidationSession`] saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Programs whose semantics were served from the cache.
    pub semantics_hits: u64,
    /// Programs that had to be interpreted.
    pub semantics_misses: u64,
    /// Equivalence checks decided without touching the solver because every
    /// output pair was syntactically identical after hash-consing.
    pub trivial_checks: u64,
    /// Equivalence checks that went to the solver.
    pub solver_checks: u64,
}

/// A long-lived equivalence-checking session with incremental reuse.
///
/// Gauntlet validates a *chain* p₀ ≡ p₁ ≡ … ≡ pₙ of per-pass snapshots: the
/// program emitted by pass *i* is the right-hand side of one check and the
/// left-hand side of the next.  A session exploits that structure twice
/// over:
///
/// * **semantics cache** — each distinct program is symbolically interpreted
///   once (keyed by structural hash) and the resulting [`ProgramSemantics`]
///   is shared between adjacent checks;
/// * **incremental solver** — all terms live in one hash-consing
///   [`TermManager`], and one [`Solver`] decides every query via
///   assumptions, so subterms shared across the chain are bit-blasted once
///   and learned clauses carry over.
pub struct ValidationSession {
    tm: Rc<TermManager>,
    solver: Solver,
    /// Structural hash → (the hashed program, its semantics).  The program
    /// is kept so a hash collision is detected by equality instead of
    /// silently returning the wrong semantics.
    cache: HashMap<u64, (Program, Rc<ProgramSemantics>)>,
    stats: SessionStats,
}

impl Default for ValidationSession {
    fn default() -> Self {
        ValidationSession::new()
    }
}

impl ValidationSession {
    pub fn new() -> ValidationSession {
        ValidationSession {
            tm: Rc::new(TermManager::new()),
            solver: Solver::new(),
            cache: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// The shared term manager (all cached semantics use it).
    pub fn term_manager(&self) -> &Rc<TermManager> {
        &self.tm
    }

    /// Usage counters for this session.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The symbolic semantics of `program`, interpreting it only on the
    /// first request (keyed by the program's structural hash, with the
    /// program itself compared on a hit to rule out hash collisions).
    pub fn semantics(&mut self, program: &Program) -> Result<Rc<ProgramSemantics>, InterpError> {
        let mut hasher = DefaultHasher::new();
        program.hash(&mut hasher);
        let key = hasher.finish();
        if let Some((cached_program, cached)) = self.cache.get(&key) {
            if cached_program == program {
                self.stats.semantics_hits += 1;
                return Ok(cached.clone());
            }
            // Hash collision: fall through and interpret uncached (the
            // first occupant keeps the slot).
        }
        self.stats.semantics_misses += 1;
        let semantics = Rc::new(interpret_program(&self.tm, program)?);
        self.cache
            .entry(key)
            .or_insert_with(|| (program.clone(), semantics.clone()));
        Ok(semantics)
    }

    /// Checks two programs for equivalence with full incremental reuse.
    pub fn check_pair(
        &mut self,
        before: &Program,
        after: &Program,
    ) -> Result<Equivalence, EquivalenceError> {
        let semantics_before = self.semantics(before)?;
        let semantics_after = self.semantics(after)?;
        let solver_checks_before = self.solver.total_checks();
        let verdict = check_semantics_equivalence_with(
            &self.tm,
            &mut self.solver,
            &semantics_before,
            &semantics_after,
        );
        if self.solver.total_checks() == solver_checks_before {
            self.stats.trivial_checks += 1;
        } else {
            self.stats.solver_checks += 1;
        }
        verdict
    }
}

fn build_counterexample(
    block: &str,
    model: &Model,
    pairs: &[(String, TermRef, TermRef)],
    inputs: &[(String, u32)],
) -> Counterexample {
    let mut differing = Vec::new();
    for (name, term_before, term_after) in pairs {
        let value_before = model.eval(term_before);
        let value_after = model.eval(term_after);
        if value_before != value_after {
            differing.push((name.clone(), value_before, value_after));
        }
    }
    let mut input_values = BTreeMap::new();
    // Record the model's choice for every declared block input; inputs the
    // model does not mention default to zero (they were irrelevant).
    for (name, width) in inputs {
        let value = model
            .get(name)
            .cloned()
            .unwrap_or_else(|| Value::bv(0, (*width).max(1)));
        input_values.insert(name.clone(), value);
    }
    // Also include every other variable the model assigned (table keys,
    // action indices, packet fields) — they are part of the trigger.
    for (name, value) in model.bindings() {
        if !name.starts_with("undef.") && !name.starts_with("extern") {
            input_values
                .entry(name.clone())
                .or_insert_with(|| value.clone());
        }
    }
    Counterexample {
        block: block.to_string(),
        inputs: input_values,
        differing_outputs: differing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{BinOp, Block, Expr, Statement};

    #[test]
    fn identical_programs_are_equivalent() {
        let program = builder::trivial_program();
        let result = check_equivalence(&program, &program.clone()).unwrap();
        assert!(result.is_equal());
    }

    #[test]
    fn semantically_equal_but_syntactically_different_programs_are_equivalent() {
        // x + 0 vs x: strength reduction's rewrite is validated as correct.
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(0, 8),
                ),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::dotted(&["hdr", "h", "b"]),
            )]),
        );
        assert!(check_equivalence(&before, &after).unwrap().is_equal());
    }

    #[test]
    fn dropped_write_is_detected_with_counterexample() {
        // The Figure-5a-style miscompilation: the write disappears.
        let before = builder::trivial_program();
        let after = builder::v1model_program(vec![], Block::empty());
        match check_equivalence(&before, &after).unwrap() {
            Equivalence::NotEqual(cex) => {
                assert_eq!(cex.block, "ingress");
                assert!(cex
                    .differing_outputs
                    .iter()
                    .any(|(name, _, _)| name == "hdr.h.a"));
            }
            Equivalence::Equal => panic!("must detect the dropped write"),
        }
    }

    #[test]
    fn branch_swap_is_detected() {
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(0, 8),
                ),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(0, 8),
                ),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(1, 8)),
            )]),
        );
        match check_equivalence(&before, &after).unwrap() {
            Equivalence::NotEqual(cex) => {
                // The counterexample fixes hdr.h.a to one side of the branch.
                assert!(cex.inputs.contains_key("hdr.h.a"));
                assert!(!cex.differing_outputs.is_empty());
            }
            Equivalence::Equal => panic!("swapped branches must be detected"),
        }
    }

    #[test]
    fn table_semantics_compare_equal_across_identical_programs() {
        let (locals, apply) = builder::figure3_table_control();
        let before = builder::v1model_program(locals.clone(), apply.clone());
        let after = builder::v1model_program(locals, apply);
        assert!(check_equivalence(&before, &after).unwrap().is_equal());
    }

    #[test]
    fn session_cache_agrees_with_the_uncached_path() {
        // The same pairs, checked through a shared session (cached
        // semantics + incremental solver) and through the one-shot path,
        // must produce the same verdicts.
        let equal_pair = {
            let before = builder::v1model_program(
                vec![],
                Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::binary(
                        BinOp::Add,
                        Expr::dotted(&["hdr", "h", "b"]),
                        Expr::uint(0, 8),
                    ),
                )]),
            );
            let after = builder::v1model_program(
                vec![],
                Block::new(vec![Statement::assign(
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::dotted(&["hdr", "h", "b"]),
                )]),
            );
            (before, after)
        };
        let unequal_pair = (
            builder::trivial_program(),
            builder::v1model_program(vec![], Block::empty()),
        );

        let mut session = ValidationSession::new();
        for (before, after) in [&equal_pair, &unequal_pair] {
            let uncached = check_equivalence(before, after).unwrap();
            let cached = session.check_pair(before, after).unwrap();
            assert_eq!(cached.is_equal(), uncached.is_equal());
            // Re-checking through the session hits the semantics cache and
            // still agrees.
            let cached_again = session.check_pair(before, after).unwrap();
            assert_eq!(cached_again.is_equal(), uncached.is_equal());
        }
        let stats = session.stats();
        assert!(
            stats.semantics_hits >= 4,
            "re-checks must hit the cache: {stats:?}"
        );
        assert_eq!(stats.semantics_misses, 4);
    }

    #[test]
    fn session_reuses_semantics_across_a_chain() {
        // A chain p0 -> p1 -> p2: the middle program's semantics must be
        // interpreted once, not twice.
        let p0 = builder::trivial_program();
        let p1 = p0.clone();
        let p2 = p0.clone();
        let mut session = ValidationSession::new();
        assert!(session.check_pair(&p0, &p1).unwrap().is_equal());
        assert!(session.check_pair(&p1, &p2).unwrap().is_equal());
        let stats = session.stats();
        // All three programs are structurally identical here, so a single
        // interpretation serves the whole chain.
        assert_eq!(stats.semantics_misses, 1);
        assert_eq!(stats.semantics_hits, 3);
        // And identical programs decide without the solver (hash-consing
        // collapses the queries to `false`).
        assert_eq!(stats.solver_checks, 0);
        assert_eq!(stats.trivial_checks, 2);
    }

    #[test]
    fn wraparound_miscompilation_is_detected() {
        // 250 + 10 folded without wraparound (260 is not representable).
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Add,
                    Expr::uint(250, 8),
                    Expr::dotted(&["hdr", "h", "b"]),
                ),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(
                    BinOp::Sub,
                    Expr::uint(250, 8),
                    Expr::dotted(&["hdr", "h", "b"]),
                ),
            )]),
        );
        assert!(!check_equivalence(&before, &after).unwrap().is_equal());
    }
}
