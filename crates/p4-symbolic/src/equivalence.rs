//! Equivalence checking between two versions of a program — the core of
//! translation validation (paper §5).
//!
//! Both programs are interpreted with the *same* term manager so that input
//! variables (parameters, packet fields, symbolic table keys and action
//! indices) with equal names denote the same unknowns.  For every
//! programmable block we then ask the solver whether any assignment makes
//! the two output tuples differ; a satisfying assignment is a counterexample
//! packet / table configuration and the pair of differing outputs.

use crate::interpreter::{interpret_program, InterpError, ProgramSemantics};
use p4_ir::Program;
use smt::{CheckResult, Model, Solver, TermManager, TermRef, Value};
use std::collections::BTreeMap;
use std::rc::Rc;

/// The verdict of an equivalence check.
#[derive(Debug, Clone)]
pub enum Equivalence {
    /// No input distinguishes the two programs.
    Equal,
    /// The programs differ; the payload says where and why.
    NotEqual(Counterexample),
}

impl Equivalence {
    pub fn is_equal(&self) -> bool {
        matches!(self, Equivalence::Equal)
    }
}

/// A concrete witness that two programs differ.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The architecture slot (e.g. `"ingress"`) where the difference lies.
    pub block: String,
    /// Input assignment (packet fields, metadata, table keys/actions) that
    /// triggers the difference.
    pub inputs: BTreeMap<String, Value>,
    /// Outputs that differ: `(name, value before, value after)`.
    pub differing_outputs: Vec<(String, Value, Value)>,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "semantic difference in block `{}`:", self.block)?;
        for (name, before, after) in &self.differing_outputs {
            writeln!(f, "  {name}: {before:?} -> {after:?}")?;
        }
        writeln!(f, "  under inputs:")?;
        for (name, value) in &self.inputs {
            writeln!(f, "    {name} = {value:?}")?;
        }
        Ok(())
    }
}

/// Errors: either program could not be interpreted (an interpreter
/// limitation, not a compiler bug) or the block structure differs in a way
/// that prevents comparison.
#[derive(Debug, Clone)]
pub enum EquivalenceError {
    Interpreter(InterpError),
    /// The two programs do not expose the same outputs for a block (e.g. a
    /// pass changed a parameter list) — reported separately so Gauntlet can
    /// flag it as an invalid transformation rather than a miscompilation.
    StructureMismatch { block: String, detail: String },
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceError::Interpreter(e) => write!(f, "{e}"),
            EquivalenceError::StructureMismatch { block, detail } => {
                write!(f, "structure mismatch in block `{block}`: {detail}")
            }
        }
    }
}

impl std::error::Error for EquivalenceError {}

impl From<InterpError> for EquivalenceError {
    fn from(e: InterpError) -> Self {
        EquivalenceError::Interpreter(e)
    }
}

/// Checks whether two programs are semantically equivalent, block by block.
pub fn check_equivalence(before: &Program, after: &Program) -> Result<Equivalence, EquivalenceError> {
    let tm = Rc::new(TermManager::new());
    let semantics_before = interpret_program(&tm, before)?;
    let semantics_after = interpret_program(&tm, after)?;
    check_semantics_equivalence(&tm, &semantics_before, &semantics_after)
}

/// Equivalence over already-computed semantics (both must come from `tm`).
pub fn check_semantics_equivalence(
    tm: &Rc<TermManager>,
    before: &ProgramSemantics,
    after: &ProgramSemantics,
) -> Result<Equivalence, EquivalenceError> {
    for block_before in &before.blocks {
        let Some(block_after) = after.block(&block_before.slot) else {
            return Err(EquivalenceError::StructureMismatch {
                block: block_before.slot.clone(),
                detail: "block missing after the pass".into(),
            });
        };
        // Pair up outputs by name.
        let mut pairs: Vec<(String, TermRef, TermRef)> = Vec::new();
        for (name, term_before) in &block_before.outputs {
            match block_after.output(name) {
                Some(term_after) => {
                    pairs.push((name.clone(), term_before.clone(), term_after.clone()))
                }
                None => {
                    return Err(EquivalenceError::StructureMismatch {
                        block: block_before.slot.clone(),
                        detail: format!("output `{name}` missing after the pass"),
                    })
                }
            }
        }
        if pairs.is_empty() {
            continue;
        }
        // The query: does any input make at least one output differ?
        let mut disjuncts = Vec::with_capacity(pairs.len());
        for (_, term_before, term_after) in &pairs {
            if term_before.sort != term_after.sort {
                return Err(EquivalenceError::StructureMismatch {
                    block: block_before.slot.clone(),
                    detail: "output widths differ".into(),
                });
            }
            disjuncts.push(tm.neq(term_before.clone(), term_after.clone()));
        }
        let query = tm.or(disjuncts);
        let mut solver = Solver::new();
        match solver.check_with(&[query]) {
            CheckResult::Unsat => continue,
            CheckResult::Sat(model) => {
                return Ok(Equivalence::NotEqual(build_counterexample(
                    &block_before.slot,
                    &model,
                    &pairs,
                    &block_before.inputs,
                )));
            }
        }
    }
    Ok(Equivalence::Equal)
}

fn build_counterexample(
    block: &str,
    model: &Model,
    pairs: &[(String, TermRef, TermRef)],
    inputs: &[(String, u32)],
) -> Counterexample {
    let mut differing = Vec::new();
    for (name, term_before, term_after) in pairs {
        let value_before = model.eval(term_before);
        let value_after = model.eval(term_after);
        if value_before != value_after {
            differing.push((name.clone(), value_before, value_after));
        }
    }
    let mut input_values = BTreeMap::new();
    // Record the model's choice for every declared block input; inputs the
    // model does not mention default to zero (they were irrelevant).
    for (name, width) in inputs {
        let value = model
            .get(name)
            .cloned()
            .unwrap_or_else(|| Value::bv(0, (*width).max(1)));
        input_values.insert(name.clone(), value);
    }
    // Also include every other variable the model assigned (table keys,
    // action indices, packet fields) — they are part of the trigger.
    for (name, value) in model.bindings() {
        if !name.starts_with("undef.") && !name.starts_with("extern") {
            input_values.entry(name.clone()).or_insert_with(|| value.clone());
        }
    }
    Counterexample { block: block.to_string(), inputs: input_values, differing_outputs: differing }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{BinOp, Block, Expr, Statement};

    #[test]
    fn identical_programs_are_equivalent() {
        let program = builder::trivial_program();
        let result = check_equivalence(&program, &program.clone()).unwrap();
        assert!(result.is_equal());
    }

    #[test]
    fn semantically_equal_but_syntactically_different_programs_are_equivalent() {
        // x + 0 vs x: strength reduction's rewrite is validated as correct.
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(BinOp::Add, Expr::dotted(&["hdr", "h", "b"]), Expr::uint(0, 8)),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::dotted(&["hdr", "h", "b"]),
            )]),
        );
        assert!(check_equivalence(&before, &after).unwrap().is_equal());
    }

    #[test]
    fn dropped_write_is_detected_with_counterexample() {
        // The Figure-5a-style miscompilation: the write disappears.
        let before = builder::trivial_program();
        let after = builder::v1model_program(vec![], Block::empty());
        match check_equivalence(&before, &after).unwrap() {
            Equivalence::NotEqual(cex) => {
                assert_eq!(cex.block, "ingress");
                assert!(cex.differing_outputs.iter().any(|(name, _, _)| name == "hdr.h.a"));
            }
            Equivalence::Equal => panic!("must detect the dropped write"),
        }
    }

    #[test]
    fn branch_swap_is_detected() {
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::binary(BinOp::Eq, Expr::dotted(&["hdr", "h", "a"]), Expr::uint(0, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::binary(BinOp::Eq, Expr::dotted(&["hdr", "h", "a"]), Expr::uint(0, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(1, 8)),
            )]),
        );
        match check_equivalence(&before, &after).unwrap() {
            Equivalence::NotEqual(cex) => {
                // The counterexample fixes hdr.h.a to one side of the branch.
                assert!(cex.inputs.contains_key("hdr.h.a"));
                assert!(!cex.differing_outputs.is_empty());
            }
            Equivalence::Equal => panic!("swapped branches must be detected"),
        }
    }

    #[test]
    fn table_semantics_compare_equal_across_identical_programs() {
        let (locals, apply) = builder::figure3_table_control();
        let before = builder::v1model_program(locals.clone(), apply.clone());
        let after = builder::v1model_program(locals, apply);
        assert!(check_equivalence(&before, &after).unwrap().is_equal());
    }

    #[test]
    fn wraparound_miscompilation_is_detected() {
        // 250 + 10 folded without wraparound (260 is not representable).
        let before = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(BinOp::Add, Expr::uint(250, 8), Expr::dotted(&["hdr", "h", "b"])),
            )]),
        );
        let after = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::binary(BinOp::Sub, Expr::uint(250, 8), Expr::dotted(&["hdr", "h", "b"])),
            )]),
        );
        assert!(!check_equivalence(&before, &after).unwrap().is_equal());
    }
}
