//! The symbolic interpreter: converts P4 programs into SMT formulas.
//!
//! Each programmable block of the package becomes an independent formula
//! (paper §5.2).  The interpreter walks the block, maintaining a symbolic
//! state; control-flow joins merge whole states with if-then-else terms, so
//! the final value of every `inout`/`out` parameter is a nested ITE over the
//! block's inputs — the functional form of Figure 3.
//!
//! Tables are handled exactly as the paper describes: one symbolic key
//! variable and one symbolic action-index variable per table application,
//! with the default action as the fallback.

use crate::state::{symbolic_of_type, undefined_of_type, SymState, SymVal};
use p4_ir::{
    ActionDecl, ActionRef, Architecture, BinOp, Block, BlockKind, BlockSpec, CallExpr, ControlDecl,
    Declaration, Direction, Expr, FunctionDecl, Param, ParserDecl, Program, Statement, TableDecl,
    Transition, Type, TypeEnv, UnOp,
};
use smt::{Sort, TermManager, TermRef};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Maximum number of parser state transitions followed before giving up
/// (guards against parser loops, which the paper reports as a crash-bug
/// trigger when they slip through).
const PARSER_FUEL: u32 = 32;

/// Interpreter errors (unsupported constructs, malformed programs).  These
/// are *interpreter* limitations, not compiler bugs; Gauntlet skips programs
/// it cannot interpret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    pub message: String,
}

impl InterpError {
    fn new(message: impl Into<String>) -> InterpError {
        InterpError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "symbolic interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// Information about one table application, kept for test-case generation.
#[derive(Debug, Clone)]
pub struct TableInfo {
    pub control: String,
    pub table: String,
    /// `(variable name, width, key expression term)` per key element.
    pub keys: Vec<(String, u32, TermRef)>,
    /// Name of the symbolic action-index variable.
    pub action_var: String,
    /// Names of the actions, in index order (index 0 is reserved for the
    /// default action on a miss).
    pub actions: Vec<String>,
    /// The `hit` condition term.
    pub hit: TermRef,
}

/// The symbolic semantics of one programmable block.
#[derive(Debug, Clone)]
pub struct BlockSemantics {
    /// Architecture slot, e.g. `"ingress"`.
    pub slot: String,
    pub kind: BlockKind,
    /// Flattened final values of all `inout`/`out` parameters (and header
    /// validity bits), keyed by dotted path.
    pub outputs: Vec<(String, TermRef)>,
    /// Flattened input variable names and widths (for test generation).
    pub inputs: Vec<(String, u32)>,
    /// Branch conditions encountered, in program order (for path
    /// enumeration during test generation).
    pub branch_conditions: Vec<TermRef>,
    /// Tables applied in this block.
    pub tables: Vec<TableInfo>,
}

impl BlockSemantics {
    pub fn output(&self, name: &str) -> Option<&TermRef> {
        self.outputs.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }
}

/// The symbolic semantics of a whole program: one formula per block.
#[derive(Debug, Clone)]
pub struct ProgramSemantics {
    pub blocks: Vec<BlockSemantics>,
}

impl ProgramSemantics {
    pub fn block(&self, slot: &str) -> Option<&BlockSemantics> {
        self.blocks.iter().find(|b| b.slot == slot)
    }
}

/// Interprets every programmable block of `program`, creating terms in `tm`.
/// Translation validation interprets two programs with the *same* manager so
/// that input variables with equal names unify.
pub fn interpret_program(
    tm: &Arc<TermManager>,
    program: &Program,
) -> Result<ProgramSemantics, InterpError> {
    let architecture = Architecture::by_name(&program.architecture).ok_or_else(|| {
        InterpError::new(format!("unknown architecture `{}`", program.architecture))
    })?;
    let env = TypeEnv::from_program(program);
    let mut blocks = Vec::new();
    for spec in &architecture.blocks {
        let Some(decl_name) = program.package.binding(&spec.slot) else {
            return Err(InterpError::new(format!("slot `{}` is unbound", spec.slot)));
        };
        let mut interp = Interpreter::new(tm.clone(), &env, program);
        let semantics = match spec.kind {
            BlockKind::Control | BlockKind::Deparser => {
                let control = program
                    .control(decl_name)
                    .ok_or_else(|| InterpError::new(format!("control `{decl_name}` not found")))?;
                interp.interpret_control(spec, control)?
            }
            BlockKind::Parser => {
                let parser = program
                    .parser(decl_name)
                    .ok_or_else(|| InterpError::new(format!("parser `{decl_name}` not found")))?;
                interp.interpret_parser(spec, parser)?
            }
        };
        blocks.push(semantics);
    }
    Ok(ProgramSemantics { blocks })
}

struct Interpreter<'a> {
    tm: Arc<TermManager>,
    env: &'a TypeEnv,
    program: &'a Program,
    state: SymState,
    branch_conditions: Vec<TermRef>,
    tables: Vec<TableInfo>,
    /// Local actions of the control being interpreted.
    local_actions: BTreeMap<String, ActionDecl>,
    /// Local tables of the control being interpreted.
    local_tables: BTreeMap<String, TableDecl>,
    /// Name of the control being interpreted (for table variable naming).
    current_control: String,
    /// Counter for deterministic packet-extraction variable names.
    extract_counter: u32,
}

type IResult<T> = Result<T, InterpError>;

impl<'a> Interpreter<'a> {
    fn new(tm: Arc<TermManager>, env: &'a TypeEnv, program: &'a Program) -> Interpreter<'a> {
        let state = SymState::new(&tm);
        Interpreter {
            tm,
            env,
            program,
            state,
            branch_conditions: Vec::new(),
            tables: Vec::new(),
            local_actions: BTreeMap::new(),
            local_tables: BTreeMap::new(),
            current_control: String::new(),
            extract_counter: 0,
        }
    }

    // ---- block entry points -----------------------------------------------

    fn bind_globals(&mut self) -> IResult<()> {
        for decl in &self.program.declarations {
            match decl {
                Declaration::Constant(constant) => {
                    let width = self.env.resolve(&constant.ty).width();
                    let value = self.eval_expr(&constant.value, width)?;
                    self.state.declare_global(constant.name.clone(), value);
                }
                Declaration::Variable { name, ty, init } => {
                    let value = match init {
                        Some(init) => self.eval_expr(init, self.env.resolve(ty).width())?,
                        None => undefined_of_type(&self.tm, self.env, ty, name),
                    };
                    self.state.declare_global(name.clone(), value);
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn bind_params(&mut self, prefix_control: &str, params: &[Param]) -> Vec<(String, u32)> {
        let _ = prefix_control;
        let mut inputs = Vec::new();
        for param in params {
            let resolved = self.env.resolve(&param.ty);
            if resolved == Type::Packet {
                continue;
            }
            let value = if param.direction.copies_in() {
                // Inputs are named by the parameter path so both sides of a
                // translation-validation query use identical variables.
                symbolic_of_type(&self.tm, self.env, &param.ty, &param.name, None)
            } else {
                // `out` parameters start undefined (headers invalid).
                undefined_of_type(&self.tm, self.env, &param.ty, &param.name)
            };
            if param.direction.copies_in() {
                let mut flat = Vec::new();
                value.flatten(&param.name, &mut flat);
                for (name, term) in flat {
                    inputs.push((name, term.sort.width()));
                }
            }
            self.state.declare(param.name.clone(), value);
        }
        inputs
    }

    fn collect_outputs(&self, params: &[Param]) -> Vec<(String, TermRef)> {
        let mut outputs = Vec::new();
        for param in params {
            if !param.direction.copies_out() {
                continue;
            }
            if let Some(value) = self.state.lookup(&param.name) {
                value.flatten(&param.name, &mut outputs);
            }
        }
        outputs
    }

    fn interpret_control(
        &mut self,
        spec: &BlockSpec,
        control: &ControlDecl,
    ) -> IResult<BlockSemantics> {
        self.current_control = control.name.clone();
        self.bind_globals()?;
        let inputs = self.bind_params(&control.name, &control.params);
        // Register control-local declarations.
        for local in &control.locals {
            match local {
                Declaration::Action(action) => {
                    self.local_actions
                        .insert(action.name.clone(), action.clone());
                }
                Declaration::Table(table) => {
                    self.local_tables.insert(table.name.clone(), table.clone());
                }
                Declaration::Variable { name, ty, init } => {
                    let value = match init {
                        Some(init) => self.eval_expr(init, self.env.resolve(ty).width())?,
                        None => undefined_of_type(&self.tm, self.env, ty, name),
                    };
                    self.state.declare(name.clone(), value);
                }
                Declaration::Constant(constant) => {
                    let width = self.env.resolve(&constant.ty).width();
                    let value = self.eval_expr(&constant.value, width)?;
                    self.state.declare(constant.name.clone(), value);
                }
                _ => {}
            }
        }
        self.exec_block(&control.apply)?;
        let outputs = self.collect_outputs(&control.params);
        Ok(BlockSemantics {
            slot: spec.slot.clone(),
            kind: spec.kind,
            outputs,
            inputs,
            branch_conditions: std::mem::take(&mut self.branch_conditions),
            tables: std::mem::take(&mut self.tables),
        })
    }

    fn interpret_parser(
        &mut self,
        spec: &BlockSpec,
        parser: &ParserDecl,
    ) -> IResult<BlockSemantics> {
        self.current_control = parser.name.clone();
        self.bind_globals()?;
        let inputs = self.bind_params(&parser.name, &parser.params);
        for local in &parser.locals {
            if let Declaration::Variable { name, ty, init } = local {
                let value = match init {
                    Some(init) => self.eval_expr(init, self.env.resolve(ty).width())?,
                    None => undefined_of_type(&self.tm, self.env, ty, name),
                };
                self.state.declare(name.clone(), value);
            }
        }
        self.run_parser_state(parser, "start", PARSER_FUEL)?;
        let outputs = self.collect_outputs(&parser.params);
        Ok(BlockSemantics {
            slot: spec.slot.clone(),
            kind: spec.kind,
            outputs,
            inputs,
            branch_conditions: std::mem::take(&mut self.branch_conditions),
            tables: std::mem::take(&mut self.tables),
        })
    }

    fn run_parser_state(&mut self, parser: &ParserDecl, name: &str, fuel: u32) -> IResult<()> {
        if name == "accept" || name == "reject" {
            return Ok(());
        }
        if fuel == 0 {
            return Err(InterpError::new(
                "parser state loop exceeds the interpreter's fuel",
            ));
        }
        let Some(state) = parser.state(name) else {
            return Err(InterpError::new(format!(
                "parser transitions to unknown state `{name}`"
            )));
        };
        for stmt in &state.statements {
            self.exec_statement(stmt)?;
        }
        match &state.transition {
            Transition::Direct(next) => self.run_parser_state(parser, next, fuel - 1),
            Transition::Select { selector, cases } => {
                let selector = self.eval_scalar(selector, None)?;
                self.run_select_cases(parser, &selector, cases, fuel)
            }
        }
    }

    fn run_select_cases(
        &mut self,
        parser: &ParserDecl,
        selector: &TermRef,
        cases: &[p4_ir::SelectCase],
        fuel: u32,
    ) -> IResult<()> {
        let Some((case, rest)) = cases.split_first() else {
            // No matching case: the packet is rejected; parsing just stops.
            return Ok(());
        };
        match &case.value {
            None => self.run_parser_state(parser, &case.next_state, fuel - 1),
            Some(value) => {
                let width = selector.sort.width();
                let value = self.eval_scalar(value, Some(width))?;
                let cond = self.tm.eq(selector.clone(), value);
                self.branch_conditions.push(cond.clone());
                let saved = self.state.clone();
                self.run_parser_state(parser, &case.next_state, fuel - 1)?;
                let then_state = std::mem::replace(&mut self.state, saved);
                self.run_select_cases(parser, selector, rest, fuel)?;
                self.state = SymState::merge(&self.tm, &cond, &then_state, &self.state);
                Ok(())
            }
        }
    }

    // ---- statement execution ------------------------------------------------

    fn exec_block(&mut self, block: &Block) -> IResult<()> {
        self.state.push_scope();
        self.exec_statements(&block.statements)?;
        self.state.pop_scope();
        Ok(())
    }

    fn exec_statements(&mut self, statements: &[Statement]) -> IResult<()> {
        for stmt in statements {
            let active = self.tm.and2(
                self.tm.not(self.state.exited.clone()),
                self.tm.not(self.state.returned.clone()),
            );
            if let smt::TermKind::BoolConst(false) = active.kind {
                break;
            }
            let before = self.state.clone();
            self.exec_statement(stmt)?;
            self.state = SymState::merge(&self.tm, &active, &self.state, &before);
        }
        Ok(())
    }

    fn exec_statement(&mut self, stmt: &Statement) -> IResult<()> {
        match stmt {
            Statement::Empty => Ok(()),
            Statement::Exit => {
                self.state.exited = self.tm.tru();
                Ok(())
            }
            Statement::Return(value) => {
                if let Some(value) = value {
                    let result = self.eval_expr(value, None)?;
                    self.state.return_value = Some(match &self.state.return_value {
                        // A previous path already returned; the flag-guarded
                        // merge in `exec_statements` picks the right one.
                        Some(_) | None => result,
                    });
                }
                self.state.returned = self.tm.tru();
                Ok(())
            }
            Statement::Block(block) => self.exec_block(block),
            Statement::Declare { name, ty, init } => {
                let value = match init {
                    Some(init) => self.eval_expr(init, self.env.resolve(ty).width())?,
                    None => undefined_of_type(&self.tm, self.env, ty, name),
                };
                self.state.declare(name.clone(), value);
                Ok(())
            }
            Statement::Constant { name, ty, value } => {
                let value = self.eval_expr(value, self.env.resolve(ty).width())?;
                self.state.declare(name.clone(), value);
                Ok(())
            }
            Statement::Assign { lhs, rhs } => {
                let width = self.lvalue_width(lhs);
                let value = self.eval_expr(rhs, width)?;
                self.assign(lhs, value)
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.eval_scalar(cond, None)?;
                self.branch_conditions.push(cond.clone());
                let saved = self.state.clone();
                self.exec_statement(then_branch)?;
                let then_state = std::mem::replace(&mut self.state, saved);
                if let Some(else_branch) = else_branch {
                    self.exec_statement(else_branch)?;
                }
                self.state = SymState::merge(&self.tm, &cond, &then_state, &self.state);
                Ok(())
            }
            Statement::Call(call) => {
                self.exec_call(call)?;
                Ok(())
            }
        }
    }

    // ---- calls ---------------------------------------------------------------

    fn exec_call(&mut self, call: &CallExpr) -> IResult<Option<SymVal>> {
        match call.method() {
            "apply" => {
                let table_name = call.receiver();
                let table = self
                    .local_tables
                    .get(&table_name)
                    .cloned()
                    .ok_or_else(|| InterpError::new(format!("unknown table `{table_name}`")))?;
                self.apply_table(&table)?;
                Ok(None)
            }
            "setValid" | "setInvalid" => {
                let receiver = receiver_expr(call);
                let valid = call.method() == "setValid";
                self.set_header_validity(&receiver, valid)?;
                Ok(None)
            }
            "isValid" => {
                let receiver = receiver_expr(call);
                let value = self.eval_expr(&receiver, None)?;
                match value {
                    SymVal::Header { valid, .. } => Ok(Some(SymVal::Scalar(valid))),
                    _ => Err(InterpError::new("isValid() on a non-header value")),
                }
            }
            "extract" => {
                let target = call
                    .args
                    .first()
                    .ok_or_else(|| InterpError::new("extract() needs a header argument"))?;
                self.extract_header(target)?;
                Ok(None)
            }
            "emit" => Ok(None),
            "mark_to_drop" => Ok(None),
            _ => {
                // User-defined function or action, or an unknown extern.
                let name = call.target.join(".");
                if let Some(function) = find_function(self.program, &name) {
                    let function = function.clone();
                    return self.call_callable(
                        &function.params,
                        &function.body,
                        Some(&function.return_type),
                        &call.args,
                    );
                }
                if let Some(action) = self.find_action(&name) {
                    let action = action.clone();
                    return self.call_callable(&action.params, &action.body, None, &call.args);
                }
                // Unknown extern: havoc every out/inout argument and return
                // a fresh value — "like an uninterpreted function" (§3).
                for arg in &call.args {
                    if arg.is_lvalue() {
                        if let Some(width) = self.lvalue_width(arg) {
                            let fresh = self.tm.fresh_var("extern", Sort::BitVec(width));
                            self.assign(arg, SymVal::Scalar(fresh))?;
                        }
                    }
                }
                Ok(Some(SymVal::Scalar(
                    self.tm.fresh_var("extern_result", Sort::BitVec(32)),
                )))
            }
        }
    }

    fn find_action(&self, name: &str) -> Option<&ActionDecl> {
        self.local_actions.get(name).or_else(|| {
            self.program.declarations.iter().find_map(|d| match d {
                Declaration::Action(a) if a.name == name => Some(a),
                _ => None,
            })
        })
    }

    /// Calls an action or function with explicit copy-in/copy-out.
    fn call_callable(
        &mut self,
        params: &[Param],
        body: &Block,
        return_type: Option<&Type>,
        args: &[Expr],
    ) -> IResult<Option<SymVal>> {
        if params.len() != args.len() {
            return Err(InterpError::new("call arity mismatch"));
        }
        // Copy-in, left to right.
        let mut bindings: Vec<(Param, Option<Expr>, SymVal)> = Vec::new();
        for (param, arg) in params.iter().zip(args) {
            let value = if param.direction.copies_in() {
                self.eval_expr(arg, self.env.resolve(&param.ty).width())?
            } else {
                undefined_of_type(&self.tm, self.env, &param.ty, &param.name)
            };
            let copy_back = if param.direction.copies_out() {
                Some(arg.clone())
            } else {
                None
            };
            bindings.push((param.clone(), copy_back, value));
        }
        // Fresh callable frame.
        self.state.push_scope();
        for (param, _, value) in &bindings {
            self.state.declare(param.name.clone(), value.clone());
        }
        let saved_returned = std::mem::replace(&mut self.state.returned, self.tm.fls());
        let saved_return_value = self.state.return_value.take();
        self.exec_statements(&body.statements)?;
        let return_value = self.state.return_value.take();
        self.state.returned = saved_returned;
        self.state.return_value = saved_return_value;
        // Capture final parameter values before leaving the frame.
        let mut final_values = Vec::new();
        for (param, copy_back, _) in &bindings {
            if copy_back.is_some() {
                let value = self
                    .state
                    .lookup(&param.name)
                    .cloned()
                    .ok_or_else(|| InterpError::new("parameter vanished during call"))?;
                final_values.push(value);
            }
        }
        self.state.pop_scope();
        // Copy-out (also performed when the callee exited; see Figure 5f).
        let mut value_index = 0;
        for (_, copy_back, _) in &bindings {
            if let Some(arg) = copy_back {
                let value = final_values[value_index].clone();
                value_index += 1;
                self.assign(arg, value)?;
            }
        }
        match (return_type, return_value) {
            (Some(ty), Some(value)) if *ty != Type::Void => Ok(Some(value)),
            (Some(ty), None) if *ty != Type::Void => {
                // Function fell off the end without returning on some path:
                // the result is undefined.
                Ok(Some(undefined_of_type(&self.tm, self.env, ty, "ret")))
            }
            _ => Ok(None),
        }
    }

    // ---- tables ---------------------------------------------------------------

    fn apply_table(&mut self, table: &TableDecl) -> IResult<()> {
        let prefix = format!("{}.{}", self.current_control, table.name);
        // Symbolic key variables and the hit condition.
        let mut hit = self.tm.tru();
        let mut keys = Vec::new();
        for (index, key) in table.keys.iter().enumerate() {
            let expr = self.eval_scalar(&key.expr, None)?;
            let width = expr.sort.width();
            let var_name = format!("{prefix}_key_{index}");
            let key_var = self.tm.var(&var_name, Sort::BitVec(width));
            let matches = match key.match_kind {
                p4_ir::MatchKind::Exact => self.tm.eq(expr.clone(), key_var.clone()),
                p4_ir::MatchKind::Ternary | p4_ir::MatchKind::Lpm => {
                    let mask = self
                        .tm
                        .var(format!("{prefix}_mask_{index}"), Sort::BitVec(width));
                    self.tm.eq(
                        self.tm.bv_and(expr.clone(), mask.clone()),
                        self.tm.bv_and(key_var.clone(), mask),
                    )
                }
            };
            hit = self.tm.and2(hit, matches);
            keys.push((var_name, width, expr));
        }
        if table.keys.is_empty() {
            // A keyless table never "hits" from the data plane's viewpoint;
            // the control plane decides.  Model the decision symbolically.
            hit = self.tm.var(format!("{prefix}_hit"), Sort::Bool);
        }
        let action_var_name = format!("{prefix}_action");
        let action_var = self.tm.var(&action_var_name, Sort::BitVec(8));
        self.branch_conditions.push(hit.clone());

        // Default action state.
        let saved = self.state.clone();
        self.exec_action_ref(&table.default_action, &prefix)?;
        let default_state = std::mem::replace(&mut self.state, saved.clone());

        // Per-action states, merged under `action_var == index`.
        let mut merged = default_state.clone();
        for (index, action_ref) in table.actions.iter().enumerate().rev() {
            self.state = saved.clone();
            self.exec_action_ref(action_ref, &prefix)?;
            let action_state = std::mem::replace(&mut self.state, saved.clone());
            let selected = self
                .tm
                .eq(action_var.clone(), self.tm.bv_const((index + 1) as u128, 8));
            self.branch_conditions
                .push(self.tm.and2(hit.clone(), selected.clone()));
            merged = SymState::merge(&self.tm, &selected, &action_state, &merged);
        }

        // Miss → default action.
        self.state = SymState::merge(&self.tm, &hit, &merged, &default_state);
        self.tables.push(TableInfo {
            control: self.current_control.clone(),
            table: table.name.clone(),
            keys,
            action_var: action_var_name,
            actions: table.actions.iter().map(|a| a.name.clone()).collect(),
            hit,
        });
        Ok(())
    }

    fn exec_action_ref(&mut self, action_ref: &ActionRef, table_prefix: &str) -> IResult<()> {
        if action_ref.name == "NoAction" && self.find_action("NoAction").is_none() {
            return Ok(());
        }
        let action = self
            .find_action(&action_ref.name)
            .cloned()
            .ok_or_else(|| InterpError::new(format!("unknown action `{}`", action_ref.name)))?;
        // Bind parameters: compile-time arguments from the action reference
        // when present, otherwise fresh control-plane-provided symbols.
        self.state.push_scope();
        for (index, param) in action.params.iter().enumerate() {
            let value = if let Some(arg) = action_ref.args.get(index) {
                self.eval_expr(arg, self.env.resolve(&param.ty).width())?
            } else if param.direction == Direction::None {
                symbolic_of_type(
                    &self.tm,
                    self.env,
                    &param.ty,
                    &format!("{table_prefix}.{}.{}", action.name, param.name),
                    None,
                )
            } else {
                undefined_of_type(&self.tm, self.env, &param.ty, &param.name)
            };
            self.state.declare(param.name.clone(), value);
        }
        let saved_returned = std::mem::replace(&mut self.state.returned, self.tm.fls());
        self.exec_statements(&action.body.statements)?;
        self.state.returned = saved_returned;
        self.state.pop_scope();
        Ok(())
    }

    // ---- headers and parser extraction -----------------------------------------

    fn set_header_validity(&mut self, receiver: &Expr, valid: bool) -> IResult<()> {
        let ty = self
            .lvalue_type(receiver)
            .ok_or_else(|| InterpError::new("setValid/setInvalid on unknown l-value"))?;
        let current = self.eval_expr(receiver, None)?;
        let new_value = match current {
            SymVal::Header { fields, .. } => {
                if valid {
                    // Fields become arbitrary unknown values when a header is
                    // made valid (paper §5.2, "Header validity").
                    let fresh = undefined_of_type(&self.tm, self.env, &ty, "setvalid");
                    match fresh {
                        SymVal::Header { fields, .. } => SymVal::Header {
                            valid: self.tm.tru(),
                            fields,
                        },
                        other => other,
                    }
                } else {
                    SymVal::Header {
                        valid: self.tm.fls(),
                        fields,
                    }
                }
            }
            other => other,
        };
        self.assign(receiver, new_value)
    }

    fn extract_header(&mut self, target: &Expr) -> IResult<()> {
        let ty = self
            .lvalue_type(target)
            .ok_or_else(|| InterpError::new("extract() target is not an l-value"))?;
        let Type::Header(header_name) = self.env.resolve(&ty) else {
            return Err(InterpError::new("extract() target is not a header"));
        };
        let aggregate = self
            .env
            .aggregate(&header_name)
            .ok_or_else(|| InterpError::new("unknown header type in extract()"))?;
        let index = self.extract_counter;
        self.extract_counter += 1;
        let mut fields = BTreeMap::new();
        for field in &aggregate.fields {
            let width = self.env.resolve(&field.ty).width().unwrap_or(1);
            let name = format!("pkt_{index}_{}", field.name);
            fields.insert(
                field.name.clone(),
                SymVal::Scalar(self.tm.var(name, Sort::BitVec(width))),
            );
        }
        self.assign(
            target,
            SymVal::Header {
                valid: self.tm.tru(),
                fields,
            },
        )
    }

    // ---- l-values ----------------------------------------------------------------

    fn lvalue_type(&self, expr: &Expr) -> Option<Type> {
        match expr {
            Expr::Path(name) => {
                // Parameters and locals: infer the type from the program
                // declaration that introduced them is not tracked here; use
                // the structure of the symbolic value instead.
                let value = self.state.lookup(name)?;
                self.type_from_value(value)
            }
            Expr::Member { base, member } => {
                let base_ty = self.lvalue_type(base)?;
                self.env.field_type(&base_ty, member)
            }
            Expr::Slice { hi, lo, .. } => Some(Type::bits(hi - lo + 1)),
            _ => None,
        }
    }

    fn type_from_value(&self, value: &SymVal) -> Option<Type> {
        match value {
            SymVal::Scalar(term) => match term.sort {
                Sort::Bool => Some(Type::Bool),
                Sort::BitVec(width) => Some(Type::bits(width)),
            },
            SymVal::Struct(fields) | SymVal::Header { fields, .. } => {
                // Find the aggregate type with exactly these field names.
                let names: Vec<&str> = fields.keys().map(String::as_str).collect();
                for aggregate_name in self.env.aggregate_names() {
                    let aggregate = self.env.aggregate(aggregate_name)?;
                    let mut agg_names: Vec<&str> =
                        aggregate.fields.iter().map(|f| f.name.as_str()).collect();
                    agg_names.sort_unstable();
                    let mut sorted = names.clone();
                    sorted.sort_unstable();
                    if agg_names == sorted {
                        return Some(match value {
                            SymVal::Header { .. } => Type::Header(aggregate_name.to_string()),
                            _ => Type::Struct(aggregate_name.to_string()),
                        });
                    }
                }
                None
            }
        }
    }

    fn lvalue_width(&self, expr: &Expr) -> Option<u32> {
        match expr {
            Expr::Slice { hi, lo, .. } => Some(hi - lo + 1),
            _ => self
                .lvalue_type(expr)
                .and_then(|t| self.env.resolve(&t).width()),
        }
    }

    /// Writes `value` into the storage denoted by the l-value expression.
    fn assign(&mut self, lvalue: &Expr, value: SymVal) -> IResult<()> {
        let segments = lvalue_segments(lvalue).ok_or_else(|| {
            InterpError::new(format!("not an l-value: {}", p4_ir::print_expr(lvalue)))
        })?;
        let (root, rest) = segments
            .split_first()
            .ok_or_else(|| InterpError::new("empty l-value"))?;
        let Segment::Field(root_name) = root else {
            return Err(InterpError::new("l-value must start with a variable"));
        };
        let tm = self.tm.clone();
        let root_name = root_name.clone();
        let target = self
            .state
            .lookup_mut(&root_name)
            .ok_or_else(|| InterpError::new(format!("assignment to undeclared `{root_name}`")))?;
        assign_into(&tm, target, rest, value)
    }

    // ---- expression evaluation ------------------------------------------------------

    fn eval_scalar(&mut self, expr: &Expr, width_hint: Option<u32>) -> IResult<TermRef> {
        match self.eval_expr(expr, width_hint)? {
            SymVal::Scalar(term) => Ok(term),
            other => Err(InterpError::new(format!(
                "expected a scalar, found aggregate {other:?} for {}",
                p4_ir::print_expr(expr)
            ))),
        }
    }

    fn eval_expr(&mut self, expr: &Expr, width_hint: Option<u32>) -> IResult<SymVal> {
        match expr {
            Expr::Bool(b) => Ok(SymVal::Scalar(self.tm.bool_const(*b))),
            Expr::Int { value, width, .. } => {
                let width = width.or(width_hint).unwrap_or(32);
                Ok(SymVal::Scalar(self.tm.bv_const(*value, width)))
            }
            Expr::Path(name) => self
                .state
                .lookup(name)
                .cloned()
                .ok_or_else(|| InterpError::new(format!("unknown name `{name}`"))),
            Expr::Member { base, member } => {
                let base_value = self.eval_expr(base, None)?;
                base_value
                    .field(member)
                    .cloned()
                    .ok_or_else(|| InterpError::new(format!("no field `{member}`")))
            }
            Expr::Slice { base, hi, lo } => {
                let base_value = self.eval_scalar(base, None)?;
                if *hi >= base_value.sort.width() {
                    return Err(InterpError::new("slice out of range"));
                }
                Ok(SymVal::Scalar(self.tm.extract(*hi, *lo, base_value)))
            }
            Expr::Unary { op, operand } => {
                let value = self.eval_scalar(operand, width_hint)?;
                let term = match op {
                    UnOp::Not => self.tm.not(value),
                    UnOp::BitNot => self.tm.bv_not(value),
                    UnOp::Neg => self.tm.bv_neg(value),
                };
                Ok(SymVal::Scalar(term))
            }
            Expr::Binary { op, left, right } => self.eval_binary(*op, left, right, width_hint),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let cond = self.eval_scalar(cond, None)?;
                let then_value = self.eval_scalar(then_expr, width_hint)?;
                let hint = Some(then_value.sort.width());
                let else_value = self.eval_scalar(else_expr, hint)?;
                let else_value = self.coerce(else_value, then_value.sort.width());
                Ok(SymVal::Scalar(self.tm.ite(cond, then_value, else_value)))
            }
            Expr::Cast { ty, expr } => {
                let resolved = self.env.resolve(ty);
                let value = self.eval_scalar(expr, resolved.width())?;
                let term = match resolved {
                    Type::Bool => self.tm.bv_to_bool(value),
                    Type::Bits { width, .. } => {
                        let value = if value.sort.is_bool() {
                            self.tm.bool_to_bv(value)
                        } else {
                            value
                        };
                        self.tm.resize(value, width)
                    }
                    _ => value,
                };
                Ok(SymVal::Scalar(term))
            }
            Expr::Call(call) => match self.exec_call(call)? {
                Some(value) => Ok(value),
                None => Err(InterpError::new(format!(
                    "call `{}` used as a value but returns nothing",
                    call.target.join(".")
                ))),
            },
        }
    }

    fn coerce(&self, term: TermRef, width: u32) -> TermRef {
        if term.sort.is_bool() || term.sort.width() == width {
            term
        } else {
            self.tm.resize(term, width)
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        left: &Expr,
        right: &Expr,
        width_hint: Option<u32>,
    ) -> IResult<SymVal> {
        use BinOp::*;
        if matches!(op, And | Or) {
            let l = self.eval_scalar(left, None)?;
            let r = self.eval_scalar(right, None)?;
            let term = match op {
                And => self.tm.and2(l, r),
                _ => self.tm.or2(l, r),
            };
            return Ok(SymVal::Scalar(term));
        }
        // Evaluate the side that fixes the width first so unsized literals
        // on the other side can adopt it.
        let (mut l, mut r) = if matches!(left, Expr::Int { width: None, .. }) {
            let r = self.eval_scalar(right, width_hint)?;
            let l = self.eval_scalar(left, Some(r.sort.width()))?;
            (l, r)
        } else {
            let l = self.eval_scalar(left, width_hint)?;
            let r = self.eval_scalar(right, Some(l.sort.width()))?;
            (l, r)
        };
        // Shifts allow operands of different widths; other operators expect
        // matching widths (coerce defensively to keep the solver total).
        if !l.sort.is_bool() && !r.sort.is_bool() && l.sort != r.sort {
            if matches!(op, Shl | Shr) {
                r = self.tm.resize(r, l.sort.width());
            } else {
                let width = l.sort.width().max(r.sort.width());
                l = self.tm.resize(l, width);
                r = self.tm.resize(r, width);
            }
        }
        let tm = &self.tm;
        let term = match op {
            Add => tm.bv_add(l, r),
            Sub => tm.bv_sub(l, r),
            Mul => tm.bv_mul(l, r),
            SatAdd => tm.bv_sat_add(l, r),
            SatSub => tm.bv_sat_sub(l, r),
            BitAnd => tm.bv_and(l, r),
            BitOr => tm.bv_or(l, r),
            BitXor => tm.bv_xor(l, r),
            Shl => tm.bv_shl(l, r),
            Shr => tm.bv_lshr(l, r),
            Concat => tm.concat(l, r),
            Eq => tm.eq(l, r),
            Ne => tm.neq(l, r),
            Lt => tm.bv_ult(l, r),
            Le => tm.bv_ule(l, r),
            Gt => tm.bv_ugt(l, r),
            Ge => tm.bv_uge(l, r),
            And | Or => unreachable!("handled above"),
        };
        Ok(SymVal::Scalar(term))
    }
}

// ---- l-value plumbing -------------------------------------------------------

#[derive(Debug, Clone)]
enum Segment {
    Field(String),
    Slice(u32, u32),
}

fn lvalue_segments(expr: &Expr) -> Option<Vec<Segment>> {
    match expr {
        Expr::Path(name) => Some(vec![Segment::Field(name.clone())]),
        Expr::Member { base, member } => {
            let mut segments = lvalue_segments(base)?;
            segments.push(Segment::Field(member.clone()));
            Some(segments)
        }
        Expr::Slice { base, hi, lo } => {
            let mut segments = lvalue_segments(base)?;
            segments.push(Segment::Slice(*hi, *lo));
            Some(segments)
        }
        _ => None,
    }
}

fn assign_into(
    tm: &TermManager,
    target: &mut SymVal,
    path: &[Segment],
    value: SymVal,
) -> Result<(), InterpError> {
    match path.split_first() {
        None => {
            *target = value;
            Ok(())
        }
        Some((Segment::Field(name), rest)) => {
            let field = target.field_mut(name).ok_or_else(|| {
                InterpError::new(format!("no field `{name}` in assignment target"))
            })?;
            assign_into(tm, field, rest, value)
        }
        Some((Segment::Slice(hi, lo), rest)) => {
            if !rest.is_empty() {
                return Err(InterpError::new(
                    "slice must be the last component of an l-value",
                ));
            }
            let old = target.scalar().clone();
            let width = old.sort.width();
            if *hi >= width {
                return Err(InterpError::new("slice assignment out of range"));
            }
            let new_scalar = splice_slice(tm, &old, value.scalar(), *hi, *lo);
            *target = SymVal::Scalar(new_scalar);
            Ok(())
        }
    }
}

/// Builds `old` with bits `[hi:lo]` replaced by `value`.
fn splice_slice(tm: &TermManager, old: &TermRef, value: &TermRef, hi: u32, lo: u32) -> TermRef {
    let width = old.sort.width();
    let value = tm.resize(value.clone(), hi - lo + 1);
    let mut parts: Vec<TermRef> = Vec::new();
    if hi + 1 < width {
        parts.push(tm.extract(width - 1, hi + 1, old.clone()));
    }
    parts.push(value);
    if lo > 0 {
        parts.push(tm.extract(lo - 1, 0, old.clone()));
    }
    let mut iter = parts.into_iter();
    let first = iter.next().expect("at least one part");
    iter.fold(first, |acc, part| tm.concat(acc, part))
}

fn receiver_expr(call: &CallExpr) -> Expr {
    let parts: Vec<&str> = call.target[..call.target.len() - 1]
        .iter()
        .map(String::as_str)
        .collect();
    Expr::dotted(&parts)
}

fn find_function<'a>(program: &'a Program, name: &str) -> Option<&'a FunctionDecl> {
    program.declarations.iter().find_map(|d| match d {
        Declaration::Function(f) if f.name == name => Some(f),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use smt::{eval_with_default, Assignment, Value};

    fn ingress_semantics(program: &Program) -> (Arc<TermManager>, BlockSemantics) {
        let tm = Arc::new(TermManager::new());
        let semantics = interpret_program(&tm, program).expect("interpretation succeeds");
        let block = semantics.block("ingress").expect("ingress block").clone();
        (tm, block)
    }

    fn eval_output(block: &BlockSemantics, name: &str, env: &Assignment) -> Value {
        let term = block
            .output(name)
            .unwrap_or_else(|| panic!("no output {name}"));
        eval_with_default(term, env)
    }

    #[test]
    fn trivial_assignment_produces_constant_output() {
        let program = builder::trivial_program();
        let (_tm, block) = ingress_semantics(&program);
        let out = eval_output(&block, "hdr.h.a", &Assignment::new());
        assert_eq!(out, Value::bv(1, 8));
        // Untouched fields pass through their input variables.
        let mut env = Assignment::new();
        env.insert("hdr.h.b".into(), Value::bv(77, 8));
        assert_eq!(eval_output(&block, "hdr.h.b", &env), Value::bv(77, 8));
    }

    #[test]
    fn if_statement_builds_ite_semantics() {
        use p4_ir::{BinOp, Block, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(3, 8),
                ),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(10, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(20, 8)),
            )]),
        );
        let (_tm, block) = ingress_semantics(&program);
        let mut env = Assignment::new();
        env.insert("hdr.h.a".into(), Value::bv(3, 8));
        assert_eq!(eval_output(&block, "hdr.h.b", &env), Value::bv(10, 8));
        env.insert("hdr.h.a".into(), Value::bv(4, 8));
        assert_eq!(eval_output(&block, "hdr.h.b", &env), Value::bv(20, 8));
        assert_eq!(block.branch_conditions.len(), 1);
    }

    #[test]
    fn figure3_table_semantics_match_the_paper() {
        let (locals, apply) = builder::figure3_table_control();
        let program = builder::v1model_program(locals, apply);
        let (_tm, block) = ingress_semantics(&program);
        assert_eq!(block.tables.len(), 1);
        let table = &block.tables[0];
        assert_eq!(table.actions, vec!["assign", "NoAction"]);

        // Key matches and the `assign` action (index 1) is chosen: hdr.h.a = 1.
        let mut env = Assignment::new();
        env.insert("hdr.h.a".into(), Value::bv(5, 8));
        env.insert(table.keys[0].0.clone(), Value::bv(5, 8));
        env.insert(table.action_var.clone(), Value::bv(1, 8));
        assert_eq!(eval_output(&block, "hdr.h.a", &env), Value::bv(1, 8));

        // Key matches but NoAction (index 2) is chosen: unchanged.
        env.insert(table.action_var.clone(), Value::bv(2, 8));
        assert_eq!(eval_output(&block, "hdr.h.a", &env), Value::bv(5, 8));

        // Key does not match: default action (NoAction): unchanged.
        env.insert(table.keys[0].0.clone(), Value::bv(9, 8));
        env.insert(table.action_var.clone(), Value::bv(1, 8));
        assert_eq!(eval_output(&block, "hdr.h.a", &env), Value::bv(5, 8));
    }

    #[test]
    fn exit_stops_subsequent_updates() {
        use p4_ir::{Block, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(1, 8)),
                Statement::Exit,
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(2, 8)),
            ]),
        );
        let (_tm, block) = ingress_semantics(&program);
        assert_eq!(
            eval_output(&block, "hdr.h.a", &Assignment::new()),
            Value::bv(1, 8)
        );
    }

    #[test]
    fn conditional_exit_only_affects_its_path() {
        use p4_ir::{BinOp, Block, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::if_then(
                    Expr::binary(
                        BinOp::Eq,
                        Expr::dotted(&["hdr", "h", "a"]),
                        Expr::uint(0, 8),
                    ),
                    Statement::Block(Block::new(vec![Statement::Exit])),
                ),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(9, 8)),
            ]),
        );
        let (_tm, block) = ingress_semantics(&program);
        let mut env = Assignment::new();
        env.insert("hdr.h.a".into(), Value::bv(0, 8));
        env.insert("hdr.h.b".into(), Value::bv(1, 8));
        assert_eq!(eval_output(&block, "hdr.h.b", &env), Value::bv(1, 8));
        env.insert("hdr.h.a".into(), Value::bv(7, 8));
        assert_eq!(eval_output(&block, "hdr.h.b", &env), Value::bv(9, 8));
    }

    #[test]
    fn copy_in_copy_out_of_inout_action_parameters() {
        use p4_ir::{ActionDecl, Block, Declaration, Param, Statement};
        // Figure 5f without the exit: action a(inout bit<16> val) { val = 3; }
        let action = ActionDecl {
            name: "set".into(),
            params: vec![Param::new(Direction::InOut, "val", Type::bits(16))],
            body: Block::new(vec![Statement::assign(
                Expr::path("val"),
                Expr::uint(3, 16),
            )]),
        };
        let program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![Statement::call(
                vec!["set"],
                vec![Expr::dotted(&["hdr", "eth", "eth_type"])],
            )]),
        );
        let (_tm, block) = ingress_semantics(&program);
        assert_eq!(
            eval_output(&block, "hdr.eth.eth_type", &Assignment::new()),
            Value::bv(3, 16)
        );
    }

    #[test]
    fn exit_inside_action_still_copies_out() {
        use p4_ir::{ActionDecl, Block, Declaration, Param, Statement};
        let action = ActionDecl {
            name: "set".into(),
            params: vec![Param::new(Direction::InOut, "val", Type::bits(16))],
            body: Block::new(vec![
                Statement::assign(Expr::path("val"), Expr::uint(3, 16)),
                Statement::Exit,
            ]),
        };
        let program = builder::v1model_program(
            vec![Declaration::Action(action)],
            Block::new(vec![
                Statement::call(vec!["set"], vec![Expr::dotted(&["hdr", "eth", "eth_type"])]),
                // Must not execute: the action exited.
                Statement::assign(Expr::dotted(&["hdr", "h", "a"]), Expr::uint(5, 8)),
            ]),
        );
        let (_tm, block) = ingress_semantics(&program);
        let env = Assignment::new();
        assert_eq!(
            eval_output(&block, "hdr.eth.eth_type", &env),
            Value::bv(3, 16)
        );
        // hdr.h.a keeps its input value (the write after exit is dead).
        let mut env = Assignment::new();
        env.insert("hdr.h.a".into(), Value::bv(42, 8));
        assert_eq!(eval_output(&block, "hdr.h.a", &env), Value::bv(42, 8));
    }

    #[test]
    fn header_validity_setinvalid_and_isvalid() {
        use p4_ir::{BinOp, Block, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![
                Statement::call(vec!["hdr", "h", "setInvalid"], vec![]),
                Statement::if_then(
                    Expr::binary(
                        BinOp::Eq,
                        Expr::call(vec!["hdr", "h", "isValid"], vec![]),
                        Expr::Bool(true),
                    ),
                    Statement::Block(Block::new(vec![Statement::assign(
                        Expr::dotted(&["hdr", "h", "a"]),
                        Expr::uint(1, 8),
                    )])),
                ),
            ]),
        );
        let (_tm, block) = ingress_semantics(&program);
        // The header was just invalidated, so the guarded assignment never
        // executes and the validity output is false.
        let mut env = Assignment::new();
        env.insert("hdr.h.a".into(), Value::bv(9, 8));
        env.insert("hdr.h.$valid".into(), Value::Bool(true));
        assert_eq!(eval_output(&block, "hdr.h.a", &env), Value::bv(9, 8));
        assert_eq!(
            eval_output(&block, "hdr.h.$valid", &env),
            Value::Bool(false)
        );
    }

    #[test]
    fn slice_assignment_updates_only_selected_bits() {
        use p4_ir::{Block, Statement};
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::slice(Expr::dotted(&["hdr", "h", "a"]), 3, 0),
                Expr::uint(0xf, 4),
            )]),
        );
        let (_tm, block) = ingress_semantics(&program);
        let mut env = Assignment::new();
        env.insert("hdr.h.a".into(), Value::bv(0xa0, 8));
        assert_eq!(eval_output(&block, "hdr.h.a", &env), Value::bv(0xaf, 8));
    }

    #[test]
    fn function_calls_are_inlined_symbolically() {
        use p4_ir::{Block, Declaration, FunctionDecl, Param, Statement};
        let function = FunctionDecl {
            name: "inc".into(),
            return_type: Type::bits(8),
            params: vec![Param::new(Direction::In, "x", Type::bits(8))],
            body: Block::new(vec![Statement::Return(Some(Expr::binary(
                BinOp::Add,
                Expr::path("x"),
                Expr::uint(1, 8),
            )))]),
        };
        let mut program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::assign(
                Expr::dotted(&["hdr", "h", "a"]),
                Expr::call(vec!["inc"], vec![Expr::dotted(&["hdr", "h", "b"])]),
            )]),
        );
        program.declarations.push(Declaration::Function(function));
        let (_tm, block) = ingress_semantics(&program);
        let mut env = Assignment::new();
        env.insert("hdr.h.b".into(), Value::bv(41, 8));
        assert_eq!(eval_output(&block, "hdr.h.a", &env), Value::bv(42, 8));
    }

    #[test]
    fn parser_block_extracts_headers_symbolically() {
        let program = builder::trivial_program();
        let tm = Arc::new(TermManager::new());
        let semantics = interpret_program(&tm, &program).unwrap();
        let parser = semantics.block("parser").unwrap();
        // The ethernet header is always extracted and marked valid.
        let mut env = Assignment::new();
        env.insert("pkt_0_eth_type".into(), Value::bv(0x0800, 16));
        assert_eq!(
            eval_with_default(parser.output("hdr.eth.$valid").unwrap(), &env),
            Value::Bool(true)
        );
        assert_eq!(
            eval_with_default(parser.output("hdr.eth.eth_type").unwrap(), &env),
            Value::bv(0x0800, 16)
        );
        // The custom header is valid only when eth_type selects parse_h.
        assert_eq!(
            eval_with_default(parser.output("hdr.h.$valid").unwrap(), &env),
            Value::Bool(true)
        );
        env.insert("pkt_0_eth_type".into(), Value::bv(0x1234, 16));
        assert_eq!(
            eval_with_default(parser.output("hdr.h.$valid").unwrap(), &env),
            Value::Bool(false)
        );
    }
}
