//! Campaign-lifetime validation cache, shared across a campaign's worker
//! pool and across its epochs.
//!
//! A [`crate::ValidationSession`] memoises semantics and reuses its solver
//! only *within* one session.  Campaign hunts, however, validate hundreds of
//! generated programs whose structurally-shared prefixes (the generator
//! draws from a fixed header/metadata namespace) re-derive the same terms
//! and re-decide the same per-block queries seed after seed — and epoch
//! after epoch.  A [`CampaignCache`] lifts the two memoisation layers out of
//! the session so every worker in the pool shares them for the duration of
//! the whole campaign:
//!
//! * **term manager** — one hash-consing [`TermManager`], so structurally
//!   identical subterms built by any worker collapse to a single node and
//!   per-block equivalence queries of duplicate shape collapse to a single
//!   term id;
//! * **semantics memo** — each distinct program (by structural hash, with
//!   collision detection by equality) is symbolically interpreted once, no
//!   matter which worker gets there first;
//! * **verdict memo** — each distinct per-block equivalence query (by
//!   hash-consed term id) is decided once.  `Unsat` verdicts are stored
//!   as-is; `Sat` verdicts store the *canonical* model (re-derived from the
//!   query term alone by a fresh solver, see [`crate::equivalence`]), so the
//!   cached counterexample is a pure function of the query structure and
//!   reports stay byte-identical no matter which worker populated the cache
//!   or in which order.
//!
//! # Bounded growth across epochs
//!
//! Living for the whole campaign (PR 9; previously the cache was rebuilt
//! every epoch, throwing the warm memos away at each adaptation round)
//! requires bounding two things:
//!
//! * **memo entries** — every entry is stamped with the *generation* (epoch
//!   index) of its last hit.  [`CampaignCache::epoch_barrier`], called
//!   between epochs while no session is live, sweeps each memo that exceeds
//!   its [`CacheBudget`] entry budget by evicting whole least-recently-hit
//!   generations (never splitting a generation, so eviction is a pure
//!   function of lookup history, which is schedule-independent);
//! * **the hash-cons term table** — memo eviction alone cannot shrink it
//!   (the manager retains every distinct term ever built), so when the
//!   number of programs *interpreted* since the last reset exceeds the
//!   budget, the barrier swaps in a fresh manager and clears **both** memos:
//!   term ids restart after a swap, so id-keyed verdicts would collide, and
//!   semantics entries hold `TermRef`s from the retired manager.
//!
//! The trigger for both is insertion/lookup history — never
//! [`TermManager::term_count`], which is schedule-dependent through the
//! fresh-variable counter — so cache contents at each barrier are identical
//! at any `--jobs`, keeping reports byte-identical.  The name
//! [`p4_ir::Interner`] survives resets: symbols interned in epoch 1 stay
//! valid for the whole campaign, which is what makes the swap cheap.
//!
//! Counters are exact under contention: a *miss* is counted only by the
//! thread that actually inserts the entry, so `misses` equals the number of
//! distinct programs/queries (schedule-independent) and `hits` equals
//! `lookups - misses`.  Racing losers — workers that interpreted or solved
//! concurrently but lost the insert — count their lookup as a hit, because
//! the cache did serve the canonical entry they return.

use crate::interpreter::{interpret_program, InterpError, ProgramSemantics};
use p4_ir::{Interner, Program};
use smt::{Model, TermManager};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The old epoch-scoped name; the cache now lives for the whole campaign.
pub type EpochCache = CampaignCache;

/// Exact usage counters for a [`CampaignCache`], aggregated across every
/// worker that shares it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Semantics lookups served from the memo.
    pub semantics_hits: u64,
    /// Distinct programs interpreted (miss counted at insert).
    pub semantics_misses: u64,
    /// Per-block equivalence queries served from the verdict memo.
    pub verdict_hits: u64,
    /// Distinct queries decided by a solver (miss counted at insert).
    pub verdict_misses: u64,
}

impl CacheStats {
    /// Total semantics lookups (hits + misses always reconcile by
    /// construction; exposed for the reconciliation tests).
    pub fn semantics_lookups(&self) -> u64 {
        self.semantics_hits + self.semantics_misses
    }

    /// Total verdict-memo lookups.
    pub fn verdict_lookups(&self) -> u64 {
        self.verdict_hits + self.verdict_misses
    }

    /// Counter-wise difference (`self - earlier`): the activity between two
    /// snapshots of a long-lived cache.  Campaigns sharing a worker-lifetime
    /// cache across runs report per-run stats as a delta.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            semantics_hits: self.semantics_hits - earlier.semantics_hits,
            semantics_misses: self.semantics_misses - earlier.semantics_misses,
            verdict_hits: self.verdict_hits - earlier.verdict_hits,
            verdict_misses: self.verdict_misses - earlier.verdict_misses,
        }
    }
}

/// Growth bounds enforced at each [`CampaignCache::epoch_barrier`].  The
/// defaults are deliberately generous — far above what the committed bench
/// workloads touch — because eviction is a memory-safety valve, not a
/// tuning knob; campaigns that never exceed a budget behave exactly as if
/// the cache were unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum retained semantics-memo entries after a barrier sweep.
    pub max_semantics_entries: usize,
    /// Maximum retained verdict-memo entries after a barrier sweep.
    pub max_verdict_entries: usize,
    /// Programs interpreted (semantics-memo inserts) between full resets of
    /// the term manager.  Memo eviction cannot shrink the hash-cons table,
    /// so this is the bound on term-table growth.
    pub max_interpretations_between_resets: u64,
}

impl Default for CacheBudget {
    fn default() -> CacheBudget {
        CacheBudget {
            max_semantics_entries: 1 << 14,
            max_verdict_entries: 1 << 18,
            max_interpretations_between_resets: 1 << 16,
        }
    }
}

/// A cached per-block query verdict: `None` is UNSAT (the outputs cannot
/// differ), `Some(model)` is the canonical distinguishing model.
type Verdict = Option<Model>;

#[derive(Debug)]
struct SemanticsEntry {
    /// The hashed program, kept so a hash collision is detected by equality
    /// instead of silently returning the wrong semantics.
    program: Program,
    semantics: Arc<ProgramSemantics>,
    /// Generation (epoch index) of the last hit; insert counts as a hit.
    last_hit: u64,
}

#[derive(Debug)]
struct VerdictEntry {
    verdict: Verdict,
    last_hit: u64,
}

/// Shared, campaign-lifetime validation state (see the module docs).
#[derive(Debug)]
pub struct CampaignCache {
    /// Campaign-scoped name interner; survives manager resets.
    interner: Arc<Interner>,
    /// The current hash-consing manager, swappable at a barrier reset.
    tm: Mutex<Arc<TermManager>>,
    semantics: Mutex<HashMap<u64, SemanticsEntry>>,
    verdicts: Mutex<HashMap<u64, VerdictEntry>>,
    budget: CacheBudget,
    /// Current generation; bumped by each barrier.
    generation: AtomicU64,
    /// Semantics-memo inserts since the last manager reset.
    inserts_since_reset: AtomicU64,
    semantics_hits: AtomicU64,
    semantics_misses: AtomicU64,
    verdict_hits: AtomicU64,
    verdict_misses: AtomicU64,
    evicted_entries: AtomicU64,
    manager_resets: AtomicU64,
}

impl Default for CampaignCache {
    fn default() -> CampaignCache {
        CampaignCache::with_budget(CacheBudget::default())
    }
}

impl CampaignCache {
    pub fn new() -> CampaignCache {
        CampaignCache::default()
    }

    pub fn with_budget(budget: CacheBudget) -> CampaignCache {
        let interner = Arc::new(Interner::new());
        CampaignCache {
            tm: Mutex::new(Arc::new(TermManager::with_interner(interner.clone()))),
            interner,
            semantics: Mutex::default(),
            verdicts: Mutex::default(),
            budget,
            generation: AtomicU64::new(0),
            inserts_since_reset: AtomicU64::new(0),
            semantics_hits: AtomicU64::new(0),
            semantics_misses: AtomicU64::new(0),
            verdict_hits: AtomicU64::new(0),
            verdict_misses: AtomicU64::new(0),
            evicted_entries: AtomicU64::new(0),
            manager_resets: AtomicU64::new(0),
        }
    }

    /// The shared hash-consing term manager.  Every session attached to
    /// this cache interprets programs through it, so equal subterms share
    /// ids across the whole pool.  Returned by clone because a barrier
    /// reset may swap in a fresh manager — sessions hold the `Arc` they
    /// fetched for their lifetime (sessions never straddle a barrier).
    pub fn term_manager(&self) -> Arc<TermManager> {
        self.tm.lock().expect("term manager slot poisoned").clone()
    }

    /// The campaign-scoped name interner (stable across manager resets).
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// An exact snapshot of the usage counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            semantics_hits: self.semantics_hits.load(Ordering::Relaxed),
            semantics_misses: self.semantics_misses.load(Ordering::Relaxed),
            verdict_hits: self.verdict_hits.load(Ordering::Relaxed),
            verdict_misses: self.verdict_misses.load(Ordering::Relaxed),
        }
    }

    /// Memo entries evicted by barrier sweeps so far (telemetry only).
    pub fn evicted_entries(&self) -> u64 {
        self.evicted_entries.load(Ordering::Relaxed)
    }

    /// Term-manager resets performed by barriers so far (telemetry only).
    pub fn manager_resets(&self) -> u64 {
        self.manager_resets.load(Ordering::Relaxed)
    }

    /// The epoch boundary: bounds growth, then opens the next generation.
    ///
    /// Must be called while no session is live (campaigns call it at the
    /// epoch join, after the worker scope ends), because a reset swaps the
    /// term manager out from under `term_manager()` callers.  The sweep and
    /// the reset trigger are pure functions of lookup/insert history, so at
    /// any `--jobs` the cache enters the next epoch with identical contents.
    pub fn epoch_barrier(&self) {
        if self.inserts_since_reset.load(Ordering::Relaxed)
            >= self.budget.max_interpretations_between_resets
        {
            // Full reset: a fresh manager restarts term ids, so id-keyed
            // verdicts and semantics entries holding old-manager TermRefs
            // must both go.  The interner (and thus symbol identity)
            // survives.
            *self.tm.lock().expect("term manager slot poisoned") =
                Arc::new(TermManager::with_interner(self.interner.clone()));
            let dropped = {
                let mut semantics = self.semantics.lock().expect("semantics memo lock poisoned");
                let mut verdicts = self.verdicts.lock().expect("verdict memo lock poisoned");
                let dropped = semantics.len() + verdicts.len();
                semantics.clear();
                verdicts.clear();
                dropped
            };
            self.evicted_entries
                .fetch_add(dropped as u64, Ordering::Relaxed);
            self.inserts_since_reset.store(0, Ordering::Relaxed);
            self.manager_resets.fetch_add(1, Ordering::Relaxed);
        } else {
            let swept = sweep(
                &mut self.semantics.lock().expect("semantics memo lock poisoned"),
                self.budget.max_semantics_entries,
                |entry| entry.last_hit,
            ) + sweep(
                &mut self.verdicts.lock().expect("verdict memo lock poisoned"),
                self.budget.max_verdict_entries,
                |entry| entry.last_hit,
            );
            self.evicted_entries
                .fetch_add(swept as u64, Ordering::Relaxed);
        }
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// The symbolic semantics of `program`, interpreting it at most once
    /// per campaign (per retained memo entry).  Returns whether this lookup
    /// was a hit alongside the semantics so callers can keep their own
    /// per-session tallies.
    pub fn semantics(
        &self,
        program: &Program,
    ) -> Result<(Arc<ProgramSemantics>, bool), InterpError> {
        let mut hasher = DefaultHasher::new();
        program.hash(&mut hasher);
        let key = hasher.finish();
        let generation = self.generation.load(Ordering::Relaxed);
        if let Some(entry) = self
            .semantics
            .lock()
            .expect("semantics memo lock poisoned")
            .get_mut(&key)
        {
            if entry.program == *program {
                entry.last_hit = generation;
                self.semantics_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((entry.semantics.clone(), true));
            }
            // Hash collision: fall through and interpret uncached (the
            // first occupant keeps the slot).
        }
        // Interpret outside the lock so a slow program does not serialise
        // the pool; a racing loser finds the entry occupied below and
        // counts a hit instead (the memo did serve the canonical entry).
        let tm = self.term_manager();
        let semantics = Arc::new(interpret_program(&tm, program)?);
        let mut memo = self.semantics.lock().expect("semantics memo lock poisoned");
        if let Some(entry) = memo.get_mut(&key) {
            if entry.program == *program {
                entry.last_hit = generation;
                self.semantics_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((entry.semantics.clone(), true));
            }
            // Collision slot stays with its first occupant; our interpretation
            // is correct for `program`, it just is not memoisable.
            self.semantics_misses.fetch_add(1, Ordering::Relaxed);
            return Ok((semantics, false));
        }
        memo.insert(
            key,
            SemanticsEntry {
                program: program.clone(),
                semantics: semantics.clone(),
                last_hit: generation,
            },
        );
        self.semantics_misses.fetch_add(1, Ordering::Relaxed);
        self.inserts_since_reset.fetch_add(1, Ordering::Relaxed);
        Ok((semantics, false))
    }

    /// Looks up the canonical verdict for a query term id.
    pub fn lookup_verdict(&self, query_id: u64) -> Option<Verdict> {
        let generation = self.generation.load(Ordering::Relaxed);
        let mut memo = self.verdicts.lock().expect("verdict memo lock poisoned");
        let found = memo.get_mut(&query_id).map(|entry| {
            entry.last_hit = generation;
            entry.verdict.clone()
        });
        drop(memo);
        if found.is_some() {
            self.verdict_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records the canonical verdict for a query term id.  The miss is
    /// counted here — by the inserting thread only — so
    /// `verdict_misses` is exactly the number of distinct queries decided.
    pub fn store_verdict(&self, query_id: u64, verdict: Verdict) {
        let mut memo = self.verdicts.lock().expect("verdict memo lock poisoned");
        if memo.contains_key(&query_id) {
            // A racing worker solved the same query first; our lookup
            // becomes a (late) hit so totals still reconcile.
            self.verdict_hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        memo.insert(
            query_id,
            VerdictEntry {
                verdict,
                last_hit: self.generation.load(Ordering::Relaxed),
            },
        );
        self.verdict_misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// Evicts whole least-recently-hit generations until the memo fits
/// `budget`.  Generation granularity keeps the sweep deterministic: the set
/// of generations and each entry's last-hit generation are pure functions
/// of lookup history, whereas cutting *within* a generation would depend on
/// hash-map iteration order.  Returns the number of entries evicted.
fn sweep<V>(memo: &mut HashMap<u64, V>, budget: usize, last_hit: impl Fn(&V) -> u64) -> usize {
    if memo.len() <= budget {
        return 0;
    }
    let mut generations: Vec<u64> = memo.values().map(&last_hit).collect();
    generations.sort_unstable();
    generations.dedup();
    let before = memo.len();
    for oldest in generations {
        if memo.len() <= budget {
            break;
        }
        memo.retain(|_, entry| last_hit(entry) != oldest);
    }
    before - memo.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;

    #[test]
    fn semantics_memo_interprets_each_program_once() {
        let cache = CampaignCache::new();
        let program = builder::trivial_program();
        let (first, hit1) = cache.semantics(&program).unwrap();
        let (second, hit2) = cache.semantics(&program).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!(stats.semantics_misses, 1);
        assert_eq!(stats.semantics_hits, 1);
        assert_eq!(stats.semantics_lookups(), 2);
    }

    #[test]
    fn verdict_memo_counters_reconcile() {
        let cache = CampaignCache::new();
        assert_eq!(cache.lookup_verdict(7), None);
        cache.store_verdict(7, None);
        assert_eq!(cache.lookup_verdict(7), Some(None));
        // A racing double-store counts as a hit, not a second miss.
        cache.store_verdict(7, None);
        let stats = cache.stats();
        assert_eq!(stats.verdict_misses, 1);
        assert_eq!(stats.verdict_hits, 2);
    }

    #[test]
    fn shared_across_threads_counts_exactly() {
        let cache = Arc::new(CampaignCache::new());
        let program = builder::trivial_program();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let cache = cache.clone();
                let program = program.clone();
                std::thread::spawn(move || {
                    cache.semantics(&program).unwrap();
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        let stats = cache.stats();
        // Exactly one interpretation no matter the interleaving; every
        // other lookup is a hit.
        assert_eq!(stats.semantics_misses, 1);
        assert_eq!(stats.semantics_hits, 3);
    }

    #[test]
    fn memos_survive_an_epoch_barrier_within_budget() {
        let cache = CampaignCache::new();
        let program = builder::trivial_program();
        let (_, miss) = cache.semantics(&program).unwrap();
        assert!(!miss);
        cache.store_verdict(3, None);
        cache.epoch_barrier();
        // Cross-epoch reuse: both memos answer without re-deriving.
        let (_, hit) = cache.semantics(&program).unwrap();
        assert!(hit, "semantics memo must survive the barrier");
        assert_eq!(cache.lookup_verdict(3), Some(None));
        assert_eq!(cache.evicted_entries(), 0);
        assert_eq!(cache.manager_resets(), 0);
    }

    #[test]
    fn barrier_sweep_evicts_whole_stale_generations() {
        let cache = CampaignCache::with_budget(CacheBudget {
            max_verdict_entries: 3,
            ..CacheBudget::default()
        });
        // Generation 0: four verdicts.
        for id in 0..4 {
            cache.store_verdict(id, None);
        }
        cache.epoch_barrier(); // over budget → generation 0 evicted whole
        assert_eq!(cache.evicted_entries(), 4);
        for id in 0..4 {
            assert_eq!(cache.lookup_verdict(id), None, "entry {id} evicted");
        }
        // Generation 1: two fresh + re-stored; generation 2 touches one.
        for id in 0..2 {
            cache.store_verdict(id, None);
        }
        cache.epoch_barrier(); // 2 ≤ 3: no eviction
        assert_eq!(cache.lookup_verdict(0), Some(None)); // now last-hit gen 2
        for id in 4..7 {
            cache.store_verdict(id, None);
        }
        cache.epoch_barrier();
        // 5 entries > 3: gen-1 survivors (id 1) go, then gen-2 (0, 4, 5, 6)
        // would still leave 4 > 3 — whole-generation granularity means the
        // sweep also drops generation 2, emptying the memo.
        assert_eq!(cache.lookup_verdict(1), None, "older generation evicted");
        assert_eq!(
            cache.lookup_verdict(0),
            None,
            "whole generations go together"
        );
        assert_eq!(cache.manager_resets(), 0);
    }

    #[test]
    fn interpretation_budget_forces_a_manager_reset() {
        let cache = CampaignCache::with_budget(CacheBudget {
            max_interpretations_between_resets: 1,
            ..CacheBudget::default()
        });
        let before = cache.term_manager();
        let program = builder::trivial_program();
        cache.semantics(&program).unwrap();
        cache.store_verdict(9, None);
        cache.epoch_barrier();
        assert_eq!(cache.manager_resets(), 1);
        let after = cache.term_manager();
        assert!(!Arc::ptr_eq(&before, &after), "manager swapped");
        assert!(
            Arc::ptr_eq(before.interner(), after.interner()),
            "interner survives the reset"
        );
        // Both memos cleared: ids from the retired manager must not answer.
        assert_eq!(cache.lookup_verdict(9), None);
        let (_, hit) = cache.semantics(&program).unwrap();
        assert!(!hit, "semantics memo cleared with the manager");
    }
}
