//! Epoch-scoped validation cache, shared across a campaign's worker pool.
//!
//! A [`crate::ValidationSession`] memoises semantics and reuses its solver
//! only *within* one session.  Campaign hunts, however, validate hundreds of
//! generated programs whose structurally-shared prefixes (the generator
//! draws from a fixed header/metadata namespace) re-derive the same terms
//! and re-decide the same per-block queries seed after seed.  An
//! [`EpochCache`] lifts the two memoisation layers out of the session so
//! every worker in the pool shares them for the duration of one epoch:
//!
//! * **term manager** — one hash-consing [`TermManager`], so structurally
//!   identical subterms built by any worker collapse to a single node and
//!   per-block equivalence queries of duplicate shape collapse to a single
//!   term id;
//! * **semantics memo** — each distinct program (by structural hash, with
//!   collision detection by equality) is symbolically interpreted once per
//!   epoch, no matter which worker gets there first;
//! * **verdict memo** — each distinct per-block equivalence query (by
//!   hash-consed term id) is decided once per epoch.  `Unsat` verdicts are
//!   stored as-is; `Sat` verdicts store the *canonical* model (re-derived
//!   from the query term alone by a fresh solver, see
//!   [`crate::equivalence`]), so the cached counterexample is a pure
//!   function of the query structure and reports stay byte-identical no
//!   matter which worker populated the cache or in which order.
//!
//! Counters are exact under contention: a *miss* is counted only by the
//! thread that actually inserts the entry, so `misses` equals the number of
//! distinct programs/queries (schedule-independent) and `hits` equals
//! `lookups - misses`.  Racing losers — workers that interpreted or solved
//! concurrently but lost the insert — count their lookup as a hit, because
//! the cache did serve the canonical entry they return.
//!
//! The cache is scoped to an *epoch* (the campaign's adaptation unit), not
//! the whole hunt, which bounds term-table growth: a fresh `EpochCache`
//! starts every epoch with an empty manager.

use crate::interpreter::{interpret_program, InterpError, ProgramSemantics};
use p4_ir::Program;
use smt::{Model, TermManager};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Exact usage counters for an [`EpochCache`], aggregated across every
/// worker that shares it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Semantics lookups served from the memo.
    pub semantics_hits: u64,
    /// Distinct programs interpreted (miss counted at insert).
    pub semantics_misses: u64,
    /// Per-block equivalence queries served from the verdict memo.
    pub verdict_hits: u64,
    /// Distinct queries decided by a solver (miss counted at insert).
    pub verdict_misses: u64,
}

impl CacheStats {
    /// Total semantics lookups (hits + misses always reconcile by
    /// construction; exposed for the reconciliation tests).
    pub fn semantics_lookups(&self) -> u64 {
        self.semantics_hits + self.semantics_misses
    }

    /// Total verdict-memo lookups.
    pub fn verdict_lookups(&self) -> u64 {
        self.verdict_hits + self.verdict_misses
    }
}

/// A cached per-block query verdict: `None` is UNSAT (the outputs cannot
/// differ), `Some(model)` is the canonical distinguishing model.
type Verdict = Option<Model>;

/// Shared, epoch-scoped validation state (see the module docs).
#[derive(Debug, Default)]
pub struct EpochCache {
    tm: Arc<TermManager>,
    /// Structural hash → (the hashed program, its semantics).  The program
    /// is kept so a hash collision is detected by equality instead of
    /// silently returning the wrong semantics.
    semantics: Mutex<HashMap<u64, (Program, Arc<ProgramSemantics>)>>,
    /// Query term id → canonical verdict.
    verdicts: Mutex<HashMap<u64, Verdict>>,
    semantics_hits: AtomicU64,
    semantics_misses: AtomicU64,
    verdict_hits: AtomicU64,
    verdict_misses: AtomicU64,
}

impl EpochCache {
    pub fn new() -> EpochCache {
        EpochCache::default()
    }

    /// The shared hash-consing term manager.  Every session attached to
    /// this cache interprets programs through it, so equal subterms share
    /// ids across the whole pool.
    pub fn term_manager(&self) -> &Arc<TermManager> {
        &self.tm
    }

    /// An exact snapshot of the usage counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            semantics_hits: self.semantics_hits.load(Ordering::Relaxed),
            semantics_misses: self.semantics_misses.load(Ordering::Relaxed),
            verdict_hits: self.verdict_hits.load(Ordering::Relaxed),
            verdict_misses: self.verdict_misses.load(Ordering::Relaxed),
        }
    }

    /// The symbolic semantics of `program`, interpreting it at most once
    /// per epoch.  Returns whether this lookup was a hit alongside the
    /// semantics so callers can keep their own per-session tallies.
    pub fn semantics(
        &self,
        program: &Program,
    ) -> Result<(Arc<ProgramSemantics>, bool), InterpError> {
        let mut hasher = DefaultHasher::new();
        program.hash(&mut hasher);
        let key = hasher.finish();
        if let Some((cached_program, cached)) = self
            .semantics
            .lock()
            .expect("semantics memo lock poisoned")
            .get(&key)
        {
            if cached_program == program {
                self.semantics_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((cached.clone(), true));
            }
            // Hash collision: fall through and interpret uncached (the
            // first occupant keeps the slot).
        }
        // Interpret outside the lock so a slow program does not serialise
        // the pool; a racing loser finds the entry occupied below and
        // counts a hit instead (the memo did serve the canonical entry).
        let semantics = Arc::new(interpret_program(&self.tm, program)?);
        let mut memo = self.semantics.lock().expect("semantics memo lock poisoned");
        if let Some((cached_program, cached)) = memo.get(&key) {
            if cached_program == program {
                self.semantics_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((cached.clone(), true));
            }
            // Collision slot stays with its first occupant; our interpretation
            // is correct for `program`, it just is not memoisable.
            self.semantics_misses.fetch_add(1, Ordering::Relaxed);
            return Ok((semantics, false));
        }
        memo.insert(key, (program.clone(), semantics.clone()));
        self.semantics_misses.fetch_add(1, Ordering::Relaxed);
        Ok((semantics, false))
    }

    /// Looks up the canonical verdict for a query term id.
    pub fn lookup_verdict(&self, query_id: u64) -> Option<Verdict> {
        let found = self
            .verdicts
            .lock()
            .expect("verdict memo lock poisoned")
            .get(&query_id)
            .cloned();
        if found.is_some() {
            self.verdict_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records the canonical verdict for a query term id.  The miss is
    /// counted here — by the inserting thread only — so
    /// `verdict_misses` is exactly the number of distinct queries decided.
    pub fn store_verdict(&self, query_id: u64, verdict: Verdict) {
        let mut memo = self.verdicts.lock().expect("verdict memo lock poisoned");
        if memo.contains_key(&query_id) {
            // A racing worker solved the same query first; our lookup
            // becomes a (late) hit so totals still reconcile.
            self.verdict_hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        memo.insert(query_id, verdict);
        self.verdict_misses.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;

    #[test]
    fn semantics_memo_interprets_each_program_once() {
        let cache = EpochCache::new();
        let program = builder::trivial_program();
        let (first, hit1) = cache.semantics(&program).unwrap();
        let (second, hit2) = cache.semantics(&program).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!(stats.semantics_misses, 1);
        assert_eq!(stats.semantics_hits, 1);
        assert_eq!(stats.semantics_lookups(), 2);
    }

    #[test]
    fn verdict_memo_counters_reconcile() {
        let cache = EpochCache::new();
        assert_eq!(cache.lookup_verdict(7), None);
        cache.store_verdict(7, None);
        assert_eq!(cache.lookup_verdict(7), Some(None));
        // A racing double-store counts as a hit, not a second miss.
        cache.store_verdict(7, None);
        let stats = cache.stats();
        assert_eq!(stats.verdict_misses, 1);
        assert_eq!(stats.verdict_hits, 2);
    }

    #[test]
    fn shared_across_threads_counts_exactly() {
        let cache = Arc::new(EpochCache::new());
        let program = builder::trivial_program();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let cache = cache.clone();
                let program = program.clone();
                std::thread::spawn(move || {
                    cache.semantics(&program).unwrap();
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        let stats = cache.stats();
        // Exactly one interpretation no matter the interleaving; every
        // other lookup is a hit.
        assert_eq!(stats.semantics_misses, 1);
        assert_eq!(stats.semantics_hits, 3);
    }
}
