//! Symbolic state: the mapping from P4 variables to symbolic values.
//!
//! Scalars are SMT terms; structs and headers are nested maps of fields,
//! with headers carrying an extra symbolic validity bit.  The interpreter
//! merges whole states at control-flow joins with if-then-else terms, which
//! is what produces the nested-ITE functional form the paper shows in
//! Figure 3.

use p4_ir::{Type, TypeEnv};
use smt::{Sort, TermManager, TermRef};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A symbolic value: a scalar term or a nested aggregate.
#[derive(Debug, Clone)]
pub enum SymVal {
    /// A `bit<N>` or `bool` value.
    Scalar(TermRef),
    /// A struct: field name → value.
    Struct(BTreeMap<String, SymVal>),
    /// A header: validity bit plus fields.
    Header {
        valid: TermRef,
        fields: BTreeMap<String, SymVal>,
    },
}

impl SymVal {
    /// The scalar term, panicking on aggregates (callers check types first).
    pub fn scalar(&self) -> &TermRef {
        match self {
            SymVal::Scalar(term) => term,
            other => panic!("expected a scalar symbolic value, found {other:?}"),
        }
    }

    /// Field lookup for aggregates.
    pub fn field(&self, name: &str) -> Option<&SymVal> {
        match self {
            SymVal::Struct(fields) | SymVal::Header { fields, .. } => fields.get(name),
            SymVal::Scalar(_) => None,
        }
    }

    pub fn field_mut(&mut self, name: &str) -> Option<&mut SymVal> {
        match self {
            SymVal::Struct(fields) | SymVal::Header { fields, .. } => fields.get_mut(name),
            SymVal::Scalar(_) => None,
        }
    }

    /// Flattens the value into `(suffix, term)` pairs, including `$valid`
    /// entries for headers.  `prefix` is prepended to every name.
    pub fn flatten(&self, prefix: &str, out: &mut Vec<(String, TermRef)>) {
        match self {
            SymVal::Scalar(term) => out.push((prefix.to_string(), term.clone())),
            SymVal::Struct(fields) => {
                for (name, value) in fields {
                    value.flatten(&format!("{prefix}.{name}"), out);
                }
            }
            SymVal::Header { valid, fields } => {
                out.push((format!("{prefix}.$valid"), valid.clone()));
                for (name, value) in fields {
                    value.flatten(&format!("{prefix}.{name}"), out);
                }
            }
        }
    }

    /// Merges two structurally identical values with `ite(cond, a, b)`.
    pub fn merge(tm: &TermManager, cond: &TermRef, a: &SymVal, b: &SymVal) -> SymVal {
        match (a, b) {
            (SymVal::Scalar(x), SymVal::Scalar(y)) => {
                SymVal::Scalar(tm.ite(cond.clone(), x.clone(), y.clone()))
            }
            (SymVal::Struct(fa), SymVal::Struct(fb)) => {
                let mut merged = BTreeMap::new();
                for (name, value_a) in fa {
                    let value_b = fb.get(name).unwrap_or(value_a);
                    merged.insert(name.clone(), SymVal::merge(tm, cond, value_a, value_b));
                }
                SymVal::Struct(merged)
            }
            (
                SymVal::Header {
                    valid: va,
                    fields: fa,
                },
                SymVal::Header {
                    valid: vb,
                    fields: fb,
                },
            ) => {
                let mut merged = BTreeMap::new();
                for (name, value_a) in fa {
                    let value_b = fb.get(name).unwrap_or(value_a);
                    merged.insert(name.clone(), SymVal::merge(tm, cond, value_a, value_b));
                }
                SymVal::Header {
                    valid: tm.ite(cond.clone(), va.clone(), vb.clone()),
                    fields: merged,
                }
            }
            // Structurally different (should not happen for well-typed
            // programs); prefer the then-side.
            (a, _) => a.clone(),
        }
    }
}

/// Builds a symbolic value of the given type whose leaves are fresh
/// variables named `prefix.<field>` (used for block inputs).
pub fn symbolic_of_type(
    tm: &TermManager,
    env: &TypeEnv,
    ty: &Type,
    prefix: &str,
    header_valid: Option<bool>,
) -> SymVal {
    let resolved = env.resolve(ty);
    match &resolved {
        Type::Bool => SymVal::Scalar(tm.var(prefix, Sort::Bool)),
        Type::Bits { width, .. } => SymVal::Scalar(tm.var(prefix, Sort::BitVec(*width))),
        Type::Header(name) => {
            let mut fields = BTreeMap::new();
            if let Some(agg) = env.aggregate(name) {
                for field in &agg.fields {
                    fields.insert(
                        field.name.clone(),
                        symbolic_of_type(
                            tm,
                            env,
                            &field.ty,
                            &format!("{prefix}.{}", field.name),
                            header_valid,
                        ),
                    );
                }
            }
            let valid = match header_valid {
                Some(value) => tm.bool_const(value),
                None => tm.var(format!("{prefix}.$valid"), Sort::Bool),
            };
            SymVal::Header { valid, fields }
        }
        Type::Struct(name) => {
            let mut fields = BTreeMap::new();
            if let Some(agg) = env.aggregate(name) {
                for field in &agg.fields {
                    fields.insert(
                        field.name.clone(),
                        symbolic_of_type(
                            tm,
                            env,
                            &field.ty,
                            &format!("{prefix}.{}", field.name),
                            header_valid,
                        ),
                    );
                }
            }
            SymVal::Struct(fields)
        }
        // Unresolvable / non-value types: a 1-bit placeholder.
        _ => SymVal::Scalar(tm.var(prefix, Sort::BitVec(1))),
    }
}

/// Builds an "undefined" value of the given type: every leaf is an
/// unconstrained variable, headers are invalid.  Used for `out` parameters
/// and undefined reads (paper §5.2, "Interpreting function calls").
///
/// Undefined leaves are named *deterministically* from `hint` (plus the
/// field path and width) rather than with per-call fresh counters.  This
/// mirrors the paper's decision to "provide our own semantics for undefined
/// behavior": when the same structural position is undefined in the program
/// before and after a pass, both sides see the *same* unknown, so an
/// unchanged program always validates as equivalent, while a pass that makes
/// a defined value undefined (or vice versa) is still flagged.
pub fn undefined_of_type(tm: &TermManager, env: &TypeEnv, ty: &Type, hint: &str) -> SymVal {
    let resolved = env.resolve(ty);
    match &resolved {
        Type::Bool => SymVal::Scalar(tm.var(format!("undef.{hint}.b"), Sort::Bool)),
        Type::Bits { width, .. } => {
            SymVal::Scalar(tm.var(format!("undef.{hint}.w{width}"), Sort::BitVec(*width)))
        }
        Type::Header(name) => {
            let mut fields = BTreeMap::new();
            if let Some(agg) = env.aggregate(name) {
                for field in &agg.fields {
                    fields.insert(
                        field.name.clone(),
                        undefined_of_type(tm, env, &field.ty, &format!("{hint}.{}", field.name)),
                    );
                }
            }
            SymVal::Header {
                valid: tm.bool_const(false),
                fields,
            }
        }
        Type::Struct(name) => {
            let mut fields = BTreeMap::new();
            if let Some(agg) = env.aggregate(name) {
                for field in &agg.fields {
                    fields.insert(
                        field.name.clone(),
                        undefined_of_type(tm, env, &field.ty, &format!("{hint}.{}", field.name)),
                    );
                }
            }
            SymVal::Struct(fields)
        }
        _ => SymVal::Scalar(tm.var(format!("undef.{hint}.w1"), Sort::BitVec(1))),
    }
}

/// The interpreter's mutable state: a stack of lexical scopes plus the
/// control-flow flags.
#[derive(Debug, Clone)]
pub struct SymState {
    scopes: Vec<BTreeMap<String, SymVal>>,
    /// True on paths where `exit` has executed (terminates the whole block).
    pub exited: TermRef,
    /// True on paths where the current callable has returned.
    pub returned: TermRef,
    /// The value returned by the current callable, if any path returned one.
    pub return_value: Option<SymVal>,
}

impl SymState {
    pub fn new(tm: &TermManager) -> SymState {
        SymState {
            scopes: vec![BTreeMap::new()],
            exited: tm.fls(),
            returned: tm.fls(),
            return_value: None,
        }
    }

    pub fn push_scope(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    pub fn pop_scope(&mut self) {
        self.scopes.pop();
        if self.scopes.is_empty() {
            self.scopes.push(BTreeMap::new());
        }
    }

    /// Declares a variable in the innermost scope.
    pub fn declare(&mut self, name: impl Into<String>, value: SymVal) {
        self.scopes
            .last_mut()
            .expect("state always has a scope")
            .insert(name.into(), value);
    }

    /// Declares a variable in the outermost (global) scope.
    pub fn declare_global(&mut self, name: impl Into<String>, value: SymVal) {
        self.scopes
            .first_mut()
            .expect("state always has a scope")
            .insert(name.into(), value);
    }

    pub fn lookup(&self, name: &str) -> Option<&SymVal> {
        self.scopes.iter().rev().find_map(|scope| scope.get(name))
    }

    pub fn lookup_mut(&mut self, name: &str) -> Option<&mut SymVal> {
        self.scopes
            .iter_mut()
            .rev()
            .find_map(|scope| scope.get_mut(name))
    }

    /// Merges two states produced from a common predecessor: every variable
    /// present in either side is merged with `ite(cond, then, else)`.
    pub fn merge(
        tm: &TermManager,
        cond: &TermRef,
        then_state: &SymState,
        else_state: &SymState,
    ) -> SymState {
        let mut scopes = Vec::with_capacity(then_state.scopes.len());
        for (depth, then_scope) in then_state.scopes.iter().enumerate() {
            let else_scope = else_state.scopes.get(depth);
            let mut merged = BTreeMap::new();
            for (name, then_value) in then_scope {
                let merged_value = match else_scope.and_then(|s| s.get(name)) {
                    Some(else_value) => SymVal::merge(tm, cond, then_value, else_value),
                    None => then_value.clone(),
                };
                merged.insert(name.clone(), merged_value);
            }
            // Variables only present on the else side (declared there) are
            // dropped: they are out of scope after the join anyway.
            scopes.push(merged);
        }
        let return_value = match (&then_state.return_value, &else_state.return_value) {
            (Some(a), Some(b)) => Some(SymVal::merge(tm, cond, a, b)),
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        SymState {
            scopes,
            exited: tm.ite(
                cond.clone(),
                then_state.exited.clone(),
                else_state.exited.clone(),
            ),
            returned: tm.ite(
                cond.clone(),
                then_state.returned.clone(),
                else_state.returned.clone(),
            ),
            return_value,
        }
    }
}

/// Shared handle on the term manager used by one interpretation run.
pub type SharedTm = Arc<TermManager>;

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use smt::TermKind;

    fn setup() -> (TermManager, TypeEnv) {
        let program = builder::trivial_program();
        (TermManager::new(), TypeEnv::from_program(&program))
    }

    #[test]
    fn symbolic_struct_flattens_with_validity_bits() {
        let (tm, env) = setup();
        let value = symbolic_of_type(&tm, &env, &Type::Named("headers_t".into()), "hdr", None);
        let mut flat = Vec::new();
        value.flatten("hdr", &mut flat);
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"hdr.eth.$valid"));
        assert!(names.contains(&"hdr.eth.src_addr"));
        assert!(names.contains(&"hdr.h.$valid"));
        assert!(names.contains(&"hdr.h.a"));
    }

    #[test]
    fn undefined_headers_start_invalid() {
        let (tm, env) = setup();
        let value = undefined_of_type(&tm, &env, &Type::Named("headers_t".into()), "hdr");
        let eth = value.field("eth").unwrap();
        match eth {
            SymVal::Header { valid, .. } => {
                assert!(matches!(valid.kind, TermKind::BoolConst(false)))
            }
            other => panic!("expected a header, got {other:?}"),
        }
    }

    #[test]
    fn scope_shadowing_and_restoration() {
        let (tm, env) = setup();
        let mut state = SymState::new(&tm);
        let _ = env;
        state.declare("x", SymVal::Scalar(tm.bv_const(1, 8)));
        state.push_scope();
        state.declare("x", SymVal::Scalar(tm.bv_const(2, 8)));
        match state.lookup("x").unwrap() {
            SymVal::Scalar(term) => assert!(format!("{term}").contains("8w2")),
            _ => panic!(),
        }
        state.pop_scope();
        match state.lookup("x").unwrap() {
            SymVal::Scalar(term) => assert!(format!("{term}").contains("8w1")),
            _ => panic!(),
        }
    }

    #[test]
    fn merge_keeps_then_side_under_true_condition() {
        let (tm, env) = setup();
        let _ = env;
        let mut a = SymState::new(&tm);
        let mut b = SymState::new(&tm);
        a.declare("x", SymVal::Scalar(tm.bv_const(1, 8)));
        b.declare("x", SymVal::Scalar(tm.bv_const(2, 8)));
        let merged = SymState::merge(&tm, &tm.tru(), &a, &b);
        match merged.lookup("x").unwrap() {
            SymVal::Scalar(term) => assert!(format!("{term}").contains("8w1")),
            _ => panic!(),
        }
        let cond = tm.var("c", Sort::Bool);
        let merged = SymState::merge(&tm, &cond, &a, &b);
        match merged.lookup("x").unwrap() {
            SymVal::Scalar(term) => assert_eq!(format!("{term}"), "(ite c 8w1 8w2)"),
            _ => panic!(),
        }
    }
}
