//! # p4-symbolic — symbolic interpretation of P4 programs
//!
//! The crate at the centre of Gauntlet's semantic-bug detection.  It turns a
//! P4 program into per-block SMT formulas ([`interpreter`]), decides whether
//! two versions of a program can ever disagree ([`equivalence`], used for
//! translation validation of open compilers), and derives input/output test
//! packets from the same formulas ([`testgen`], used for black-box testing
//! of closed compilers such as Tofino).

pub mod cache;
pub mod equivalence;
pub mod interpreter;
pub mod state;
pub mod testgen;

pub use cache::{CacheBudget, CacheStats, CampaignCache, EpochCache};
pub use equivalence::{
    check_equivalence, check_semantics_equivalence, check_semantics_equivalence_with,
    Counterexample, Equivalence, EquivalenceError, SessionStats, ValidationSession,
};
pub use interpreter::{
    interpret_program, BlockSemantics, InterpError, ProgramSemantics, TableInfo,
};
pub use state::{SymState, SymVal};
pub use testgen::{generate_tests, TestCase, TestGenError, TestGenOptions};
