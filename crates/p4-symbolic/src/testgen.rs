//! Test-case generation via symbolic execution (paper §6).
//!
//! For back ends whose intermediate representation is unavailable (the
//! closed-source Tofino compiler), translation validation is impossible.
//! Instead Gauntlet reuses the symbolic semantics to enumerate program
//! paths, solves for an input that drives execution down each path, and
//! records the expected output.  Each (input, expected output) pair becomes
//! a test the target's test framework replays; a mismatch is a semantic bug.

use crate::interpreter::{interpret_program, BlockSemantics, InterpError};
use p4_ir::Program;
use smt::{CheckResult, Solver, Sort, TermKind, TermManager, TermRef, Value};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// One generated end-to-end test case for the primary match-action block.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Input assignment: header/metadata fields and validity bits.
    pub inputs: BTreeMap<String, Value>,
    /// Table configuration: symbolic key/action/argument variables chosen by
    /// the solver (interpreted by the target harness as table entries).
    pub table_config: BTreeMap<String, Value>,
    /// Expected final values of every block output.
    pub expected: BTreeMap<String, Value>,
    /// Human-readable description of the path this test exercises.
    pub path: String,
}

/// Options for test generation.
#[derive(Debug, Clone)]
pub struct TestGenOptions {
    /// Upper bound on the number of paths (and hence tests).
    pub max_tests: usize,
    /// Ask the solver for non-zero inputs where possible; zero-valued inputs
    /// can mask bugs on targets that zero-initialise undefined values
    /// (paper §6.2).
    pub prefer_nonzero: bool,
    /// The architecture slot to generate tests for.
    pub block: String,
    /// Pin every *undefined-read* variable (`undef.*`: header fields after
    /// `setValid`, out-of-range reads, extern results) to zero, matching
    /// the zero-initialising policy of the simulated BMv2/Tofino targets.
    /// Without this the solver may build a test whose expected output
    /// depends on an undefined value the target will concretely zero —
    /// a false alarm (paper §6.2 / §8: tests adopt the target's semantics
    /// for undefined behaviour).
    pub undefined_reads_zero: bool,
}

impl Default for TestGenOptions {
    fn default() -> Self {
        TestGenOptions {
            max_tests: 16,
            prefer_nonzero: true,
            block: "ingress".into(),
            undefined_reads_zero: true,
        }
    }
}

/// Errors during test generation.
#[derive(Debug, Clone)]
pub enum TestGenError {
    Interpreter(InterpError),
    MissingBlock(String),
}

impl std::fmt::Display for TestGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestGenError::Interpreter(e) => write!(f, "{e}"),
            TestGenError::MissingBlock(block) => write!(f, "program has no `{block}` block"),
        }
    }
}

impl std::error::Error for TestGenError {}

impl From<InterpError> for TestGenError {
    fn from(e: InterpError) -> Self {
        TestGenError::Interpreter(e)
    }
}

/// Generates test cases for `program` by enumerating paths through the
/// selected block.
pub fn generate_tests(
    program: &Program,
    options: &TestGenOptions,
) -> Result<Vec<TestCase>, TestGenError> {
    let tm = Arc::new(TermManager::new());
    let semantics = interpret_program(&tm, program)?;
    let block = semantics
        .block(&options.block)
        .ok_or_else(|| TestGenError::MissingBlock(options.block.clone()))?;
    Ok(generate_for_block(&tm, block, options))
}

/// Path enumeration over the recorded branch conditions: every subset of
/// branch decisions is tried (bounded by `max_tests`), each satisfiable
/// combination becomes a test.
pub fn generate_for_block(
    tm: &Arc<TermManager>,
    block: &BlockSemantics,
    options: &TestGenOptions,
) -> Vec<TestCase> {
    let conditions: Vec<TermRef> = block.branch_conditions.clone();
    let mut tests = Vec::new();
    // One incremental solver serves the whole path enumeration: the block's
    // terms are bit-blasted once and every path combination is decided via
    // assumptions over the shared CNF.
    let mut solver = Solver::new();
    if options.undefined_reads_zero {
        // The simulated targets zero-initialise undefined values, so the
        // expected-output oracle must do the same: every `undef.*` variable
        // reachable from this block's semantics is pinned to zero.
        for (name, sort) in undefined_variables(block) {
            let var = tm.var(name, sort);
            let pin = match sort {
                Sort::Bool => tm.not(var),
                Sort::BitVec(width) => tm.eq(var, tm.bv_const(0, width)),
            };
            solver.assert(pin);
        }
    }
    // Cap the number of decision bits so the enumeration stays small; the
    // remaining conditions are left free for the solver to pick.
    let decided = conditions.len().min(path_bits(options.max_tests));
    let combinations: u64 = 1u64 << decided;
    for combo in 0..combinations {
        if tests.len() >= options.max_tests {
            break;
        }
        let mut assumptions = Vec::new();
        let mut path_description = Vec::new();
        for (bit, condition) in conditions.iter().take(decided).enumerate() {
            let take = (combo >> bit) & 1 == 1;
            path_description.push(if take {
                format!("b{bit}=T")
            } else {
                format!("b{bit}=F")
            });
            assumptions.push(if take {
                condition.clone()
            } else {
                tm.not(condition.clone())
            });
        }
        // Prefer non-zero header inputs so zero-initialising targets cannot
        // hide differences (paper §6.2).  Try the strongest preference first
        // (every input non-zero), weaken to "at least one non-zero", and
        // finally drop the preference if the path constraints force zeros.
        let mut nonzero = Vec::new();
        if options.prefer_nonzero {
            for (name, width) in &block.inputs {
                if name.ends_with("$valid") || *width == 0 {
                    continue;
                }
                let var = tm.var(name.clone(), smt::Sort::BitVec(*width));
                nonzero.push(tm.neq(var, tm.bv_const(0, *width)));
            }
        }
        let attempts: Vec<Vec<TermRef>> = vec![
            nonzero.clone(),
            if nonzero.is_empty() {
                vec![]
            } else {
                vec![tm.or(nonzero)]
            },
            vec![],
        ];
        let mut model = None;
        for extra in attempts {
            let mut query = assumptions.clone();
            query.extend(extra);
            match solver.check_with(&query) {
                CheckResult::Sat(found) => {
                    model = Some(found);
                    break;
                }
                CheckResult::Unsat => continue,
            }
        }
        let Some(model) = model else { continue };
        let mut inputs = BTreeMap::new();
        for (name, width) in &block.inputs {
            let value = model.get(name).cloned().unwrap_or_else(|| {
                if name.ends_with("$valid") {
                    Value::Bool(true)
                } else {
                    Value::bv(0, *width)
                }
            });
            inputs.insert(name.clone(), value);
        }
        let mut table_config = BTreeMap::new();
        for table in &block.tables {
            for (key_name, width, _) in &table.keys {
                let value = model
                    .get(key_name)
                    .cloned()
                    .unwrap_or_else(|| Value::bv(0, *width));
                table_config.insert(key_name.clone(), value);
            }
            let action_value = model
                .get(&table.action_var)
                .cloned()
                .unwrap_or_else(|| Value::bv(0, 8));
            table_config.insert(table.action_var.clone(), action_value);
            // Control-plane action arguments chosen by the solver.
            for (name, value) in model.bindings() {
                if name.starts_with(&format!("{}.{}.", table.control, table.table)) {
                    table_config
                        .entry(name.clone())
                        .or_insert_with(|| value.clone());
                }
            }
        }
        // Expected outputs: evaluate the block's output terms under the full
        // model (absent variables default to zero, matching BMv2's policy
        // for undefined values).
        let full_assignment: smt::Assignment = {
            let mut assignment = model.as_assignment();
            for (name, value) in &inputs {
                assignment.insert(name.clone(), value.clone());
            }
            for (name, value) in &table_config {
                assignment.insert(name.clone(), value.clone());
            }
            assignment
        };
        let mut expected = BTreeMap::new();
        for (name, term) in &block.outputs {
            expected.insert(name.clone(), smt::eval_with_default(term, &full_assignment));
        }
        tests.push(TestCase {
            inputs,
            table_config,
            expected,
            path: path_description.join(","),
        });
    }
    tests
}

/// All `undef.*` variables reachable from the block's semantics (outputs,
/// branch conditions, and table terms), in deterministic order.
fn undefined_variables(block: &BlockSemantics) -> Vec<(String, Sort)> {
    let mut seen_terms = HashSet::new();
    let mut found: BTreeMap<String, Sort> = BTreeMap::new();
    let mut stack: Vec<TermRef> = Vec::new();
    stack.extend(block.outputs.iter().map(|(_, term)| term.clone()));
    stack.extend(block.branch_conditions.iter().cloned());
    for table in &block.tables {
        stack.extend(table.keys.iter().map(|(_, _, term)| term.clone()));
        stack.push(table.hit.clone());
    }
    while let Some(term) = stack.pop() {
        if !seen_terms.insert(term.id) {
            continue;
        }
        if let TermKind::Var(name) = &term.kind {
            if name.starts_with("undef.") {
                found.insert(name.to_string(), term.sort);
            }
        }
        term.for_each_child(|child| stack.push(child.clone()));
    }
    found.into_iter().collect()
}

/// Number of branch decisions we can afford to enumerate exhaustively while
/// staying under `max_tests` combinations.
fn path_bits(max_tests: usize) -> usize {
    let mut bits = 0;
    while (1usize << (bits + 1)) <= max_tests.max(1) && bits < 16 {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ir::builder;
    use p4_ir::{BinOp, Block, Expr, Statement};

    #[test]
    fn straight_line_program_yields_one_test() {
        let program = builder::trivial_program();
        let tests = generate_tests(&program, &TestGenOptions::default()).unwrap();
        assert_eq!(tests.len(), 1);
        let test = &tests[0];
        assert_eq!(test.expected.get("hdr.h.a"), Some(&Value::bv(1, 8)));
        assert!(test.inputs.contains_key("hdr.h.b"));
    }

    #[test]
    fn branching_program_covers_both_paths() {
        let program = builder::v1model_program(
            vec![],
            Block::new(vec![Statement::if_else(
                Expr::binary(
                    BinOp::Lt,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(10, 8),
                ),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(1, 8)),
                Statement::assign(Expr::dotted(&["hdr", "h", "b"]), Expr::uint(2, 8)),
            )]),
        );
        let tests = generate_tests(&program, &TestGenOptions::default()).unwrap();
        assert_eq!(tests.len(), 2);
        let expected_values: Vec<u128> = tests
            .iter()
            .map(|t| t.expected.get("hdr.h.b").unwrap().as_bv().to_u128())
            .collect();
        assert!(expected_values.contains(&1));
        assert!(expected_values.contains(&2));
        // Inputs actually satisfy the path conditions.
        for test in &tests {
            let a = test.inputs.get("hdr.h.a").unwrap().as_bv().to_u128();
            let b = test.expected.get("hdr.h.b").unwrap().as_bv().to_u128();
            assert_eq!(b == 1, a < 10);
        }
    }

    #[test]
    fn table_program_exercises_hit_and_miss() {
        let (locals, apply) = builder::figure3_table_control();
        let program = builder::v1model_program(locals, apply);
        let tests = generate_tests(&program, &TestGenOptions::default()).unwrap();
        assert!(
            tests.len() >= 2,
            "expected hit and miss cases, got {}",
            tests.len()
        );
        // At least one test must configure the table so that the `assign`
        // action fires and therefore expects hdr.h.a == 1.
        assert!(tests
            .iter()
            .any(|t| t.expected.get("hdr.h.a") == Some(&Value::bv(1, 8))));
        // And at least one leaves the header untouched.
        assert!(tests.iter().any(|t| {
            let input = t.inputs.get("hdr.h.a").map(|v| v.as_bv().to_u128());
            let output = t.expected.get("hdr.h.a").map(|v| v.as_bv().to_u128());
            input == output
        }));
    }

    #[test]
    fn nonzero_preference_produces_nonzero_inputs() {
        let program = builder::trivial_program();
        let tests = generate_tests(&program, &TestGenOptions::default()).unwrap();
        let any_nonzero = tests[0]
            .inputs
            .iter()
            .filter(|(name, _)| !name.ends_with("$valid"))
            .any(|(_, value)| value.as_bv().to_u128() != 0);
        assert!(any_nonzero, "expected at least one non-zero input field");
    }

    #[test]
    fn max_tests_bounds_path_enumeration() {
        // Three sequential branches → 8 paths, but we cap at 4.
        let mut statements = Vec::new();
        for i in 0..3u32 {
            statements.push(Statement::if_then(
                Expr::binary(
                    BinOp::Eq,
                    Expr::dotted(&["hdr", "h", "a"]),
                    Expr::uint(u128::from(i), 8),
                ),
                Statement::assign(
                    Expr::dotted(&["hdr", "h", "b"]),
                    Expr::uint(u128::from(i), 8),
                ),
            ));
        }
        let program = builder::v1model_program(vec![], Block::new(statements));
        let options = TestGenOptions {
            max_tests: 4,
            ..TestGenOptions::default()
        };
        let tests = generate_tests(&program, &options).unwrap();
        assert!(tests.len() <= 4);
        assert!(!tests.is_empty());
    }
}
