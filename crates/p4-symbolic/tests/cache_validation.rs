//! Cached-versus-cold validation agreement, plus the two classic miter
//! blow-up regressions pinned as structural (zero solver checks).
//!
//! The epoch cache must be semantically invisible: a session attached to a
//! *populated* cache has to report exactly the verdict — including every
//! `Counterexample` field — that a cold session computes from scratch.
//! Canonical counterexamples (every SAT verdict re-solved in a fresh
//! solver) are what make this hold even though the cached and cold paths
//! run entirely different solver state.

use p4_gen::{GeneratorConfig, RandomProgramGenerator};
use p4_symbolic::{EpochCache, Equivalence, ValidationSession};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Two generated programs with the same architecture but different seeds:
/// structurally comparable (same block names) yet semantically distinct
/// often enough to exercise the counterexample path.
fn program_pair(seed: u64) -> (p4_ir::Program, p4_ir::Program) {
    let config = GeneratorConfig::tiny();
    let a = RandomProgramGenerator::new(config.clone(), seed).generate();
    let b = RandomProgramGenerator::new(config, seed + 1).generate();
    (a, b)
}

/// Asserts two verdicts agree on every observable field.
fn assert_verdicts_agree(cold: &Equivalence, warm: &Equivalence, context: &str) {
    match (cold, warm) {
        (Equivalence::Equal, Equivalence::Equal) => {}
        (Equivalence::NotEqual(c), Equivalence::NotEqual(w)) => {
            assert_eq!(c.block, w.block, "{context}: diverging block differs");
            assert_eq!(c.inputs, w.inputs, "{context}: witness inputs differ");
            assert_eq!(
                c.differing_outputs, w.differing_outputs,
                "{context}: differing outputs differ"
            );
        }
        (cold, warm) => panic!("{context}: cold said {cold:?}, warm said {warm:?}"),
    }
}

proptest! {
    // Every case interprets and SAT-solves whole programs; keep the count
    // moderate (the fixed pins below cover the structural fast paths).
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// A warm session (attached to a cache populated by a prior identical
    /// run) reports byte-for-byte the verdict a cold session computes —
    /// equal/not-equal, diverging block, witness inputs, and differing
    /// outputs — while doing none of the solver work.
    #[test]
    fn warm_and_cold_sessions_agree_on_verdicts(seed in 0u64..5_000) {
        let (a, b) = program_pair(seed);

        let mut cold = ValidationSession::new();
        let cold_verdict = match cold.check_pair(&a, &b) {
            Ok(verdict) => verdict,
            // Interpreter limitations are skipped by the pipeline; the
            // cached path must skip identically (checked below).
            Err(_) => {
                let cache = Arc::new(EpochCache::new());
                let mut first = ValidationSession::with_cache(Arc::clone(&cache));
                prop_assert!(first.check_pair(&a, &b).is_err());
                let mut second = ValidationSession::with_cache(cache);
                prop_assert!(second.check_pair(&a, &b).is_err());
                return;
            }
        };

        let cache = Arc::new(EpochCache::new());
        let mut first = ValidationSession::with_cache(Arc::clone(&cache));
        let first_verdict = first.check_pair(&a, &b).expect("cold path succeeded");
        assert_verdicts_agree(&cold_verdict, &first_verdict, "empty-cache session");

        let mut second = ValidationSession::with_cache(cache);
        let second_verdict = second.check_pair(&a, &b).expect("cold path succeeded");
        assert_verdicts_agree(&cold_verdict, &second_verdict, "populated-cache session");

        // The warm session did no interpretation and no solving: both
        // programs and every decided query came from the memo.
        let stats = second.stats();
        prop_assert_eq!(stats.semantics_misses, 0);
        prop_assert_eq!(stats.semantics_hits, 2);
        prop_assert_eq!(stats.solver_checks, 0);
        prop_assert_eq!(stats.verdict_misses, 0);
    }

    /// The reference compiler's whole pass chain validates identically
    /// through a shared cache: every snapshot pair is `Equal` both cold and
    /// warm (the campaign's zero-false-alarm discipline must not depend on
    /// which worker populated the memo).
    #[test]
    fn reference_chains_stay_equal_under_the_cache(seed in 5_000u64..10_000) {
        let program = RandomProgramGenerator::new(GeneratorConfig::tiny(), seed).generate();
        let compiled = p4c::Compiler::reference()
            .compile(&program)
            .unwrap_or_else(|e| panic!("seed {seed}: reference compiler failed: {e}"));
        let cache = Arc::new(EpochCache::new());
        for session_round in 0..2 {
            let mut session = ValidationSession::with_cache(Arc::clone(&cache));
            for (before, after) in compiled.pass_pairs() {
                // An `Err` is an interpreter limitation: skipped, like the
                // pipeline does.
                if let Ok(verdict) = session.check_pair(&before.program, &after.program) {
                    prop_assert!(
                        verdict.is_equal(),
                        "seed {seed}, round {session_round}, pass {}: reference pass flagged",
                        after.pass_name
                    );
                }
            }
            if session_round == 1 {
                prop_assert_eq!(session.stats().semantics_misses, 0);
                prop_assert_eq!(session.stats().solver_checks, 0);
            }
        }
    }
}

/// Parses a miniature single-assignment program whose ingress body is
/// `statements`.
fn tiny_program(statements: &str) -> p4_ir::Program {
    let source = format!(
        r#"
header h_t {{
    bit<8> a;
    bit<8> b;
}}

struct headers_t {{
    h_t h;
}}

struct metadata_t {{
    bit<8> tmp;
}}

parser parser_impl(packet_in packet, out headers_t hdr, inout metadata_t meta, inout standard_metadata_t standard_metadata) {{
    state start {{
        packet.extract(hdr.h);
        transition accept;
    }}
}}

control ingress_impl(inout headers_t hdr, inout metadata_t meta, inout standard_metadata_t standard_metadata) {{
    apply {{
{statements}
    }}
}}

control egress_impl(inout headers_t hdr, inout metadata_t meta, inout standard_metadata_t standard_metadata) {{
    apply {{
    }}
}}

control deparser_impl(packet_in packet, in headers_t hdr) {{
    apply {{
        packet.emit(hdr.h);
    }}
}}

V1Switch(parser_impl(), ingress_impl(), egress_impl(), deparser_impl()) main;
"#
    );
    p4_parser::parse_program(&source).expect("pin fixture parses")
}

/// Checks a before/after pair and asserts the verdict is `Equal`, decided
/// structurally (no SAT call) and fast.  The wall-clock bound is a blow-up
/// alarm, not a benchmark: these queries fold to syntactic identity, and a
/// regression that re-introduces solving shows up first in the counters.
fn assert_structural_equal(before: &p4_ir::Program, after: &p4_ir::Program, context: &str) {
    let mut session = ValidationSession::new();
    let start = Instant::now();
    let verdict = session
        .check_pair(before, after)
        .unwrap_or_else(|e| panic!("{context}: cannot compare: {e}"));
    let elapsed = start.elapsed();
    assert!(verdict.is_equal(), "{context}: expected Equal");
    let stats = session.stats();
    assert_eq!(
        stats.solver_checks, 0,
        "{context}: must discharge structurally, got {stats:?}"
    );
    assert_eq!(stats.trivial_checks, 1, "{context}: {stats:?}");
    // Structural discharge is microseconds of hashing; anything near the
    // bound means the fold regressed into real solving or interpretation
    // blow-up.  Debug builds are ~10× slower than release, hence 100ms.
    assert!(
        elapsed.as_millis() < 100,
        "{context}: took {elapsed:?}, expected sub-millisecond-class discharge"
    );
}

/// Pin: shifting an 8-bit value by a constant ≥ its width folds to zero in
/// the term manager, so validating a strength-reduced oversized shift never
/// builds a miter.  (Without the fold the shifter encoding explodes and the
/// query burns SAT time for a tautology.)
#[test]
fn oversized_shift_fold_discharges_structurally() {
    let before = tiny_program("        hdr.h.a = (hdr.h.b << 8w41);");
    let after = tiny_program("        hdr.h.a = 8w0;");
    assert_structural_equal(&before, &after, "oversized shl");

    let before = tiny_program("        hdr.h.a = (hdr.h.b >> 8w200);");
    let after = tiny_program("        hdr.h.a = 8w0;");
    assert_structural_equal(&before, &after, "oversized shr");
}

/// Pin: nested ites over the same condition absorb into the outer ite, so
/// an if/else whose else-branch re-tests the identical condition validates
/// against its flattened form without a solver call.
#[test]
fn same_condition_ite_absorption_discharges_structurally() {
    let before = tiny_program(
        "        if ((hdr.h.a == 8w1)) {\n            hdr.h.b = 8w2;\n        } else {\n            if ((hdr.h.a == 8w1)) {\n                hdr.h.b = 8w3;\n            } else {\n                hdr.h.b = 8w4;\n            }\n        }",
    );
    let after = tiny_program(
        "        if ((hdr.h.a == 8w1)) {\n            hdr.h.b = 8w2;\n        } else {\n            hdr.h.b = 8w4;\n        }",
    );
    assert_structural_equal(&before, &after, "same-condition ite absorption");
}
