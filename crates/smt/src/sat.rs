//! A CDCL SAT solver.
//!
//! The bit-blaster lowers QF_BV queries to CNF; this module decides them.
//! The solver implements the standard conflict-driven clause learning loop:
//! two-watched-literal unit propagation, first-UIP conflict analysis,
//! non-chronological backjumping, VSIDS-style variable activities with phase
//! saving, and geometric restarts.  Instances produced by Gauntlet's
//! equivalence checks are small (hundreds to a few thousand variables), so
//! clarity is favoured over heavy optimisation throughout.

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: variable plus polarity, encoded as `var * 2 + negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    pub fn positive(var: Var) -> Lit {
        Lit(var * 2)
    }

    pub fn negative(var: Var) -> Lit {
        Lit(var * 2 + 1)
    }

    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var * 2 + u32::from(negated))
    }

    pub fn var(self) -> Var {
        self.0 / 2
    }

    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with one satisfying assignment (indexed by variable).
    Sat(Vec<bool>),
    Unsat,
}

impl SatResult {
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Whether the clause was learned during conflict analysis (kept for
    /// statistics and future clause-database reduction).
    #[allow(dead_code)]
    learned: bool,
}

const UNASSIGNED: i8 = 0;

/// Restart and decision-heuristic knobs for one CDCL instance.
///
/// A *portfolio* of differently-configured instances racing on one hard
/// instance is the classic way to collapse CDCL's heavy-tailed runtime
/// distribution: runtimes under different restart schedules and phase/
/// decision heuristics are near-independent, so the minimum over K
/// configurations has a far lighter tail than any single one.  The verdict
/// (SAT/UNSAT) is of course identical whichever configuration answers
/// first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Conflicts before the first restart.
    pub restart_base: u64,
    /// Geometric restart growth as a `(numerator, denominator)` ratio.
    pub restart_growth: (u64, u64),
    /// Initial saved phase for fresh variables (phase saving overwrites it
    /// as soon as a variable is first assigned).
    pub initial_phase: bool,
    /// VSIDS activity decay factor (activities are divided by this after
    /// every conflict; smaller means faster forgetting).
    pub activity_decay: f64,
    /// Tie-break among equally-active unassigned variables: `false` picks
    /// the lowest-numbered variable, `true` the highest-numbered.
    pub prefer_high_vars: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            restart_base: 100,
            restart_growth: (3, 2),
            initial_phase: false,
            activity_decay: 0.95,
            prefer_high_vars: false,
        }
    }
}

impl SolverConfig {
    /// The `i`-th portfolio member.  Variant 0 is the default configuration
    /// (so a 1-member portfolio behaves exactly like a plain solver); the
    /// others diversify restarts, phases, decay, and tie-breaking.
    pub fn portfolio_variant(i: usize) -> SolverConfig {
        match i % 4 {
            0 => SolverConfig::default(),
            1 => SolverConfig {
                restart_base: 50,
                restart_growth: (2, 1),
                initial_phase: true,
                activity_decay: 0.90,
                prefer_high_vars: true,
            },
            2 => SolverConfig {
                restart_base: 400,
                restart_growth: (3, 2),
                initial_phase: false,
                activity_decay: 0.99,
                prefer_high_vars: true,
            },
            _ => SolverConfig {
                restart_base: 32,
                restart_growth: (4, 3),
                initial_phase: true,
                activity_decay: 0.85,
                prefer_high_vars: false,
            },
        }
    }
}

/// The CDCL solver.
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    /// watches[lit.index()] = clause indices watching `lit`.
    watches: Vec<Vec<usize>>,
    /// assign[var] = 0 unassigned, 1 true, -1 false.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    config: SolverConfig,
    /// Set when an empty clause is added; the instance is trivially UNSAT.
    trivially_unsat: bool,
    /// Statistics: number of conflicts encountered.
    pub conflicts: u64,
    /// Statistics: number of decisions made.
    pub decisions: u64,
    /// Statistics: number of literals propagated.
    pub propagations: u64,
}

impl SatSolver {
    pub fn new() -> SatSolver {
        SatSolver::with_config(SolverConfig::default())
    }

    /// A solver using the given restart/decision configuration.
    pub fn with_config(config: SolverConfig) -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            config,
            ..SatSolver::default()
        }
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = self.assign.len() as Var;
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(self.config.initial_phase);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        var
    }

    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    fn value(&self, lit: Lit) -> i8 {
        let v = self.assign[lit.var() as usize];
        if lit.is_negated() {
            -v
        } else {
            v
        }
    }

    /// Adds a clause.  Must be called before `solve` (no incremental solving
    /// under assumptions beyond what [`SatSolver::solve_with_assumptions`]
    /// provides).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at decision level 0"
        );
        // Deduplicate and check for tautology.
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for window in sorted.windows(2) {
            if window[0].var() == window[1].var() {
                return; // x ∨ ¬x: tautology, skip.
            }
        }
        // Remove literals already false at level 0; drop clause if any literal
        // is already true at level 0.
        let mut reduced = Vec::with_capacity(sorted.len());
        for &lit in &sorted {
            match self.value(lit) {
                1 => return,
                -1 => {}
                _ => reduced.push(lit),
            }
        }
        match reduced.len() {
            0 => self.trivially_unsat = true,
            1 => {
                if !self.enqueue(reduced[0], None) || self.propagate().is_some() {
                    self.trivially_unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[reduced[0].index()].push(idx);
                self.watches[reduced[1].index()].push(idx);
                self.clauses.push(Clause {
                    lits: reduced,
                    learned: false,
                });
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.value(lit) {
            1 => true,
            -1 => false,
            _ => {
                let var = lit.var() as usize;
                self.assign[var] = if lit.is_negated() { -1 } else { 1 };
                self.level[var] = self.decision_level();
                self.reason[var] = reason;
                self.phase[var] = !lit.is_negated();
                self.trail.push(lit);
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Unit propagation.  Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = lit.negate();
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let clause_idx = watch_list[i];
                // Make sure the false literal is at position 1.
                let (first, second) = {
                    let clause = &mut self.clauses[clause_idx];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    (clause.lits[0], clause.lits[1])
                };
                debug_assert_eq!(second, false_lit);
                // If the other watched literal is already true, keep watching.
                if self.value(first) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = None;
                {
                    let clause = &self.clauses[clause_idx];
                    for (j, &other) in clause.lits.iter().enumerate().skip(2) {
                        if self.value(other) != -1 {
                            found = Some((j, other));
                            break;
                        }
                    }
                }
                if let Some((j, other)) = found {
                    self.clauses[clause_idx].lits.swap(1, j);
                    self.watches[other.index()].push(clause_idx);
                    watch_list.swap_remove(i);
                    continue;
                }
                // No new watch: the clause is unit or conflicting.
                if !self.enqueue(first, Some(clause_idx)) {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.index()].extend_from_slice(&watch_list[i..]);
                    self.watches[false_lit.index()].extend_from_slice(&watch_list[..i]);
                    self.qhead = self.trail.len();
                    return Some(clause_idx);
                }
                i += 1;
            }
            self.watches[false_lit.index()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var as usize] += self.var_inc;
        if self.activity[var as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.activity_decay;
    }

    /// First-UIP conflict analysis.  Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::positive(0)]; // placeholder for the asserting literal
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let current_level = self.decision_level();

        loop {
            let clause_lits: Vec<Lit> = self.clauses[clause_idx].lits.clone();
            // Skip the asserting literal slot on the first iteration only.
            let skip = usize::from(lit.is_some());
            for &q in clause_lits.iter().skip(skip) {
                let var = q.var() as usize;
                if !seen[var] && self.level[var] > 0 {
                    seen[var] = true;
                    self.bump_var(q.var());
                    if self.level[var] >= current_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                trail_pos -= 1;
                let p = self.trail[trail_pos];
                if seen[p.var() as usize] {
                    lit = Some(p);
                    break;
                }
            }
            let p = lit.expect("found a literal to resolve on");
            seen[p.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.negate();
                break;
            }
            clause_idx = self.reason[p.var() as usize].expect("non-decision literal has a reason");
        }

        // Compute backjump level: the highest level among the other literals.
        let backjump_level = if learned.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var() as usize] > self.level[learned[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            self.level[learned[1].var() as usize]
        };
        (learned, backjump_level)
    }

    fn backjump(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self
                .trail_lim
                .pop()
                .expect("decision level > 0 has a limit");
            while self.trail.len() > lim {
                let lit = self
                    .trail
                    .pop()
                    .expect("trail is non-empty above the limit");
                let var = lit.var() as usize;
                self.assign[var] = UNASSIGNED;
                self.reason[var] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn learn(&mut self, learned: Vec<Lit>) {
        if learned.len() == 1 {
            let ok = self.enqueue(learned[0], None);
            debug_assert!(
                ok,
                "asserting unit literal must be enqueueable after backjump"
            );
            return;
        }
        let idx = self.clauses.len();
        self.watches[learned[0].index()].push(idx);
        self.watches[learned[1].index()].push(idx);
        let asserting = learned[0];
        self.clauses.push(Clause {
            lits: learned,
            learned: true,
        });
        let ok = self.enqueue(asserting, Some(idx));
        debug_assert!(ok, "asserting literal must be enqueueable after backjump");
    }

    fn decide(&mut self) -> bool {
        let mut best: Option<Var> = None;
        let mut best_activity = -1.0f64;
        for var in 0..self.num_vars() {
            let better = if self.config.prefer_high_vars {
                self.activity[var] >= best_activity
            } else {
                self.activity[var] > best_activity
            };
            if self.assign[var] == UNASSIGNED && better {
                best_activity = self.activity[var];
                best = Some(var as Var);
            }
        }
        match best {
            Some(var) => {
                self.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = Lit::new(var, !self.phase[var as usize]);
                let ok = self.enqueue(lit, None);
                debug_assert!(ok, "decision variable was unassigned");
                true
            }
            None => false,
        }
    }

    /// Decides satisfiability of the added clauses.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability under the given assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_limited(assumptions, None, None)
            .expect("unlimited solve always completes")
    }

    /// Decides satisfiability under assumptions, giving up after
    /// `max_conflicts` conflicts (if given) or when `stop` becomes true.
    ///
    /// Returns `None` when the budget ran out or the stop flag fired; the
    /// solver backtracks to level 0 and keeps its learned clauses, so it
    /// stays usable (a later unlimited call resumes with everything
    /// learned so far).  This is the primitive behind portfolio racing: the
    /// incremental solver gets a conflict budget before the hard-miter
    /// escalation, and racing instances carry each other's stop flag.
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: Option<u64>,
        stop: Option<&std::sync::atomic::AtomicBool>,
    ) -> Option<SatResult> {
        use std::sync::atomic::Ordering;
        if self.trivially_unsat {
            return Some(SatResult::Unsat);
        }
        // Top-level propagation of any pending units.
        if self.propagate().is_some() {
            return Some(SatResult::Unsat);
        }
        // Enqueue assumptions as decisions; a conflict among them is UNSAT
        // (for Gauntlet's use, assumption conflicts never need a core).
        for &assumption in assumptions {
            match self.value(assumption) {
                1 => continue,
                -1 => {
                    self.backjump(0);
                    return Some(SatResult::Unsat);
                }
                _ => {
                    self.trail_lim.push(self.trail.len());
                    let ok = self.enqueue(assumption, None);
                    debug_assert!(ok);
                    if self.propagate().is_some() {
                        self.backjump(0);
                        return Some(SatResult::Unsat);
                    }
                }
            }
        }
        let assumption_level = self.decision_level();

        let mut conflicts_until_restart = self.config.restart_base;
        let mut conflicts_since_restart = 0u64;
        let (growth_num, growth_den) = self.config.restart_growth;
        let mut budget_spent = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                budget_spent += 1;
                if self.decision_level() <= assumption_level {
                    self.backjump(0);
                    return Some(SatResult::Unsat);
                }
                let (learned, backjump_level) = self.analyze(conflict);
                let target = backjump_level.max(assumption_level);
                self.backjump(target);
                // If the asserting literal is already assigned after
                // backjumping to the assumption level, the instance is UNSAT
                // under the assumptions.
                if self.value(learned[0]) != UNASSIGNED {
                    self.backjump(0);
                    return Some(SatResult::Unsat);
                }
                self.learn(learned);
                self.decay_activities();
                if max_conflicts.is_some_and(|max| budget_spent >= max)
                    || stop.is_some_and(|flag| flag.load(Ordering::Relaxed))
                {
                    // Give up, keeping everything learned so far.
                    self.backjump(0);
                    return None;
                }
                if conflicts_since_restart >= conflicts_until_restart {
                    conflicts_since_restart = 0;
                    conflicts_until_restart =
                        (conflicts_until_restart * growth_num) / growth_den.max(1);
                    self.backjump(assumption_level);
                }
            } else if !self.decide() {
                let model: Vec<bool> = self.assign.iter().map(|&v| v == 1).collect();
                self.backjump(0);
                return Some(SatResult::Sat(model));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        if v > 0 {
            Lit::positive((v - 1) as Var)
        } else {
            Lit::negative((-v - 1) as Var)
        }
    }

    fn solver_with_vars(n: usize) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn literal_encoding() {
        let l = Lit::positive(3);
        assert_eq!(l.var(), 3);
        assert!(!l.is_negated());
        assert!(l.negate().is_negated());
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        assert!(s.solve().is_sat());

        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (¬1 ∨ 2) ∧ (¬2 ∨ 3) ∧ 1 ∧ ¬3 is UNSAT.
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(-1), lit(2)]);
        s.add_clause(&[lit(-2), lit(3)]);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-3)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, 2, -3],
            vec![-1, 3],
            vec![-2, 3],
            vec![2, 3, 4],
            vec![-4, -1],
        ];
        let mut s = solver_with_vars(4);
        for clause in &clauses {
            let lits: Vec<Lit> = clause.iter().map(|&v| lit(v)).collect();
            s.add_clause(&lits);
        }
        match s.solve() {
            SatResult::Sat(model) => {
                for clause in &clauses {
                    assert!(clause.iter().any(|&v| {
                        let value = model[(v.unsigned_abs() - 1) as usize];
                        if v > 0 {
                            value
                        } else {
                            !value
                        }
                    }));
                }
            }
            SatResult::Unsat => panic!("instance is satisfiable"),
        }
    }

    /// Pigeonhole principle PHP(n+1, n) is unsatisfiable; n=3 keeps it fast
    /// but still requires real conflict analysis.
    #[test]
    fn pigeonhole_is_unsat() {
        let pigeons = 4;
        let holes = 3;
        let var = |p: usize, h: usize| (p * holes + h) as Var;
        let mut s = SatSolver::new();
        for _ in 0..pigeons * holes {
            s.new_var();
        }
        // Every pigeon is in some hole.
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| Lit::positive(var(p, h))).collect();
            s.add_clause(&clause);
        }
        // No two pigeons share a hole.
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause(&[Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_models() {
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(2)]);
        match s.solve_with_assumptions(&[lit(-1)]) {
            SatResult::Sat(model) => {
                assert!(!model[0]);
                assert!(model[1]);
            }
            SatResult::Unsat => panic!("satisfiable under assumption"),
        }
        // Conflicting assumptions.
        s.add_clause(&[lit(-2)]);
        assert_eq!(s.solve_with_assumptions(&[lit(-1)]), SatResult::Unsat);
        // Solver remains usable afterwards.
        assert!(s.solve_with_assumptions(&[lit(1)]).is_sat());
    }

    /// Brute-force cross-check on random 3-CNF instances.
    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        // Simple deterministic linear congruential generator so the test is
        // reproducible without external crates.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..60 {
            let num_vars = 4 + (next() % 6) as usize; // 4..9
            let num_clauses = 6 + (next() % 20) as usize;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let mut clause = Vec::new();
                for _ in 0..len {
                    let v = 1 + (next() % num_vars as u32) as i32;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    clause.push(v * sign);
                }
                clauses.push(clause);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for assignment in 0..(1u32 << num_vars) {
                for clause in &clauses {
                    let ok = clause.iter().any(|&v| {
                        let bit = (assignment >> (v.unsigned_abs() - 1)) & 1 == 1;
                        if v > 0 {
                            bit
                        } else {
                            !bit
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = solver_with_vars(num_vars);
            for clause in &clauses {
                let lits: Vec<Lit> = clause.iter().map(|&v| lit(v)).collect();
                s.add_clause(&lits);
            }
            let result = s.solve();
            assert_eq!(
                result.is_sat(),
                brute_sat,
                "mismatch on round {round}: {clauses:?}"
            );
            if let SatResult::Sat(model) = result {
                for clause in &clauses {
                    assert!(clause.iter().any(|&v| {
                        let value = model[(v.unsigned_abs() - 1) as usize];
                        if v > 0 {
                            value
                        } else {
                            !value
                        }
                    }));
                }
            }
        }
    }
}
