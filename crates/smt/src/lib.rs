//! # smt — a quantifier-free bit-vector solver
//!
//! The paper uses the Z3 SMT solver to decide program equivalence and to
//! generate test packets.  The `z3` crate needs the native libz3 library,
//! which is not available in this offline environment, so this crate
//! re-implements the fragment Gauntlet actually needs (QF_BV with
//! if-then-else) from scratch:
//!
//! * [`term`] — the term language and a constant-folding [`TermManager`];
//! * [`value`] — arbitrary-width concrete bit-vector values;
//! * [`mod@eval`] — concrete evaluation of terms under an assignment;
//! * [`bitblast`] — Tseitin lowering of terms to CNF;
//! * [`sat`] — a CDCL SAT solver (watched literals, 1UIP learning, VSIDS,
//!   restarts);
//! * [`solver`] — the Z3-shaped facade: assert terms, check, get a model.
//!
//! The design trade-off matches the paper's observation that generated
//! programs are small (§2.3, §5.2): formulas stay tiny, so a simple,
//! obviously-correct solver is preferable to a heavily optimised one.

pub mod bitblast;
pub mod eval;
pub mod sat;
pub mod solver;
pub mod term;
pub mod value;

pub use bitblast::{BitBlaster, BlastContext};
pub use eval::{eval, eval_with_default, Assignment, EvalError, Value};
pub use sat::SolverConfig;
pub use solver::{CheckResult, Model, PortfolioOptions, Solver, SolverStats};
pub use term::{Sort, Term, TermKind, TermManager, TermRef, VarName};
pub use value::BvValue;
