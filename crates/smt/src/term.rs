//! Term representation for the quantifier-free bit-vector logic (QF_BV)
//! fragment Gauntlet needs.
//!
//! The paper encodes P4 program semantics as Z3 formulas (§5.2).  This crate
//! plays the role of Z3 for the reproduction: terms are built through a
//! [`TermManager`], which assigns unique ids (used for memoisation during
//! bit-blasting and evaluation) and performs light constant folding.

use crate::value::BvValue;
use p4_ir::{Interner, Symbol};
use std::fmt;
use std::sync::Arc;

/// The sort (type) of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    Bool,
    BitVec(u32),
}

impl Sort {
    pub fn width(self) -> u32 {
        match self {
            Sort::Bool => 1,
            Sort::BitVec(w) => w,
        }
    }

    pub fn is_bool(self) -> bool {
        self == Sort::Bool
    }
}

/// Reference-counted term handle.  `Arc` rather than `Rc` so one hash-consed
/// term DAG can be shared across the campaign worker pool (epoch-scoped
/// caching): structurally identical subterms built by different workers
/// collapse to one node no matter which thread built them first.
pub type TermRef = Arc<Term>;

/// A term node.
#[derive(Debug)]
pub struct Term {
    /// Unique id assigned by the manager; used as a memoisation key.
    pub id: u64,
    pub sort: Sort,
    pub kind: TermKind,
}

/// An interned variable name: identity (hashing, equality) is the
/// campaign-scoped [`Symbol`] — a `u32` — while the spelling rides along as
/// a shared `Arc<str>` for display and model extraction.  Hash-consing a
/// variable therefore costs one integer hash instead of a byte scan of the
/// name, which dominates the term-builder hot path for the long dotted
/// names the symbolic interpreter emits (`ingress.hdr.eth.dst`, …).
#[derive(Debug, Clone)]
pub struct VarName {
    sym: Symbol,
    text: Arc<str>,
}

impl VarName {
    /// The interned identity.
    pub fn symbol(&self) -> Symbol {
        self.sym
    }

    pub fn as_str(&self) -> &str {
        &self.text
    }
}

impl PartialEq for VarName {
    fn eq(&self, other: &VarName) -> bool {
        self.sym == other.sym
    }
}

impl Eq for VarName {}

impl std::hash::Hash for VarName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

impl std::ops::Deref for VarName {
    type Target = str;

    fn deref(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for VarName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Term constructors.  Saturating arithmetic and a few other P4 operators
/// are desugared into this kernel language by the manager.
#[derive(Debug)]
pub enum TermKind {
    BoolConst(bool),
    BvConst(BvValue),
    /// A free variable of the term's sort.
    Var(VarName),

    // Boolean connectives.
    Not(TermRef),
    And(Vec<TermRef>),
    Or(Vec<TermRef>),
    Implies(TermRef, TermRef),

    /// Polymorphic equality (both operands share a sort).
    Eq(TermRef, TermRef),
    /// Polymorphic if-then-else (condition is Bool, branches share a sort).
    Ite(TermRef, TermRef, TermRef),

    // Bit-vector operations.
    BvAdd(TermRef, TermRef),
    BvSub(TermRef, TermRef),
    BvMul(TermRef, TermRef),
    BvAnd(TermRef, TermRef),
    BvOr(TermRef, TermRef),
    BvXor(TermRef, TermRef),
    BvNot(TermRef),
    BvNeg(TermRef),
    BvShl(TermRef, TermRef),
    BvLshr(TermRef, TermRef),
    BvUlt(TermRef, TermRef),
    BvUle(TermRef, TermRef),
    BvSlt(TermRef, TermRef),
    Concat(TermRef, TermRef),
    Extract {
        hi: u32,
        lo: u32,
        arg: TermRef,
    },
    ZeroExtend {
        arg: TermRef,
        width: u32,
    },
    SignExtend {
        arg: TermRef,
        width: u32,
    },
}

impl Term {
    /// Calls `f` on every direct child of this term.  The single place that
    /// knows the arity of every [`TermKind`]; DAG walkers (subterm
    /// collection, variable scans) build on this instead of re-matching.
    pub fn for_each_child(&self, mut f: impl FnMut(&TermRef)) {
        match &self.kind {
            TermKind::BoolConst(_) | TermKind::BvConst(_) | TermKind::Var(_) => {}
            TermKind::Not(a)
            | TermKind::BvNot(a)
            | TermKind::BvNeg(a)
            | TermKind::Extract { arg: a, .. }
            | TermKind::ZeroExtend { arg: a, .. }
            | TermKind::SignExtend { arg: a, .. } => f(a),
            TermKind::And(args) | TermKind::Or(args) => args.iter().for_each(f),
            TermKind::Implies(a, b)
            | TermKind::Eq(a, b)
            | TermKind::BvAdd(a, b)
            | TermKind::BvSub(a, b)
            | TermKind::BvMul(a, b)
            | TermKind::BvAnd(a, b)
            | TermKind::BvOr(a, b)
            | TermKind::BvXor(a, b)
            | TermKind::BvShl(a, b)
            | TermKind::BvLshr(a, b)
            | TermKind::BvUlt(a, b)
            | TermKind::BvUle(a, b)
            | TermKind::BvSlt(a, b)
            | TermKind::Concat(a, b) => {
                f(a);
                f(b);
            }
            TermKind::Ite(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TermKind::BoolConst(b) => write!(f, "{b}"),
            TermKind::BvConst(v) => write!(f, "{v}"),
            TermKind::Var(name) => write!(f, "{name}"),
            TermKind::Not(a) => write!(f, "(not {a})"),
            TermKind::And(args) => {
                write!(f, "(and")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            TermKind::Or(args) => {
                write!(f, "(or")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            TermKind::Implies(a, b) => write!(f, "(=> {a} {b})"),
            TermKind::Eq(a, b) => write!(f, "(= {a} {b})"),
            TermKind::Ite(c, t, e) => write!(f, "(ite {c} {t} {e})"),
            TermKind::BvAdd(a, b) => write!(f, "(bvadd {a} {b})"),
            TermKind::BvSub(a, b) => write!(f, "(bvsub {a} {b})"),
            TermKind::BvMul(a, b) => write!(f, "(bvmul {a} {b})"),
            TermKind::BvAnd(a, b) => write!(f, "(bvand {a} {b})"),
            TermKind::BvOr(a, b) => write!(f, "(bvor {a} {b})"),
            TermKind::BvXor(a, b) => write!(f, "(bvxor {a} {b})"),
            TermKind::BvNot(a) => write!(f, "(bvnot {a})"),
            TermKind::BvNeg(a) => write!(f, "(bvneg {a})"),
            TermKind::BvShl(a, b) => write!(f, "(bvshl {a} {b})"),
            TermKind::BvLshr(a, b) => write!(f, "(bvlshr {a} {b})"),
            TermKind::BvUlt(a, b) => write!(f, "(bvult {a} {b})"),
            TermKind::BvUle(a, b) => write!(f, "(bvule {a} {b})"),
            TermKind::BvSlt(a, b) => write!(f, "(bvslt {a} {b})"),
            TermKind::Concat(a, b) => write!(f, "(concat {a} {b})"),
            TermKind::Extract { hi, lo, arg } => write!(f, "((_ extract {hi} {lo}) {arg})"),
            TermKind::ZeroExtend { arg, width } => write!(f, "((_ zero_extend_to {width}) {arg})"),
            TermKind::SignExtend { arg, width } => write!(f, "((_ sign_extend_to {width}) {arg})"),
        }
    }
}

/// Structural key for hash-consing: a term's kind with children replaced by
/// their (already unique) ids.  Two structurally equal terms built through
/// the same manager therefore share one id, which makes syntactic equality
/// an id comparison — `eq(a, a)` folds to `true` without ever reaching the
/// solver, and the bit-blaster's id-keyed cache lowers every shared subterm
/// exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Shape {
    BoolConst(bool),
    BvConst(BvValue),
    /// Interned: variable lookups in the hash-cons table compare a `u32`.
    Var(Symbol),
    Not(u64),
    And(Vec<u64>),
    Or(Vec<u64>),
    Implies(u64, u64),
    Eq(u64, u64),
    Ite(u64, u64, u64),
    /// Binary bit-vector operators, tagged by operator name.
    Binary(&'static str, u64, u64),
    /// Unary bit-vector operators, tagged by operator name.
    Unary(&'static str, u64),
    Extract(u32, u32, u64),
    ZeroExtend(u64, u32),
    SignExtend(u64, u32),
}

impl Shape {
    fn of(kind: &TermKind) -> Shape {
        match kind {
            TermKind::BoolConst(b) => Shape::BoolConst(*b),
            TermKind::BvConst(v) => Shape::BvConst(v.clone()),
            TermKind::Var(name) => Shape::Var(name.symbol()),
            TermKind::Not(a) => Shape::Not(a.id),
            TermKind::And(args) => Shape::And(args.iter().map(|a| a.id).collect()),
            TermKind::Or(args) => Shape::Or(args.iter().map(|a| a.id).collect()),
            TermKind::Implies(a, b) => Shape::Implies(a.id, b.id),
            TermKind::Eq(a, b) => Shape::Eq(a.id, b.id),
            TermKind::Ite(c, t, e) => Shape::Ite(c.id, t.id, e.id),
            TermKind::BvAdd(a, b) => Shape::Binary("add", a.id, b.id),
            TermKind::BvSub(a, b) => Shape::Binary("sub", a.id, b.id),
            TermKind::BvMul(a, b) => Shape::Binary("mul", a.id, b.id),
            TermKind::BvAnd(a, b) => Shape::Binary("and", a.id, b.id),
            TermKind::BvOr(a, b) => Shape::Binary("or", a.id, b.id),
            TermKind::BvXor(a, b) => Shape::Binary("xor", a.id, b.id),
            TermKind::BvNot(a) => Shape::Unary("not", a.id),
            TermKind::BvNeg(a) => Shape::Unary("neg", a.id),
            TermKind::BvShl(a, b) => Shape::Binary("shl", a.id, b.id),
            TermKind::BvLshr(a, b) => Shape::Binary("lshr", a.id, b.id),
            TermKind::BvUlt(a, b) => Shape::Binary("ult", a.id, b.id),
            TermKind::BvUle(a, b) => Shape::Binary("ule", a.id, b.id),
            TermKind::BvSlt(a, b) => Shape::Binary("slt", a.id, b.id),
            TermKind::Concat(a, b) => Shape::Binary("concat", a.id, b.id),
            TermKind::Extract { hi, lo, arg } => Shape::Extract(*hi, *lo, arg.id),
            TermKind::ZeroExtend { arg, width } => Shape::ZeroExtend(arg.id, *width),
            TermKind::SignExtend { arg, width } => Shape::SignExtend(arg.id, *width),
        }
    }
}

/// Creates terms and hands out fresh variable names.  All terms used in a
/// single solver query must come from the same manager.
///
/// Terms are hash-consed: structurally identical terms share one node and
/// one id.  This matters enormously for translation validation, where the
/// "before" and "after" programs mostly coincide — their shared parts
/// collapse to the same term, so the distinguishing query only pays for the
/// parts a compiler pass actually changed.
/// Interior state of a [`TermManager`], guarded by one mutex so the manager
/// is `Send + Sync` and can back an epoch-scoped cache shared by the
/// campaign's worker pool.  Term *ids* assigned under contention are
/// schedule-dependent, but everything downstream treats ids as opaque
/// memoisation keys: hash-consing, the folds, and SAT verdicts are all
/// structural, and reported counterexamples are re-derived canonically from
/// the query term alone (see `p4-symbolic`), so rendered output stays
/// byte-identical at any `--jobs`.
#[derive(Debug, Default)]
struct ManagerState {
    next_id: u64,
    fresh_counter: u64,
    table: std::collections::HashMap<(Sort, Shape), TermRef>,
}

#[derive(Debug)]
pub struct TermManager {
    state: std::sync::Mutex<ManagerState>,
    /// Campaign-scoped name interner.  Shared (not owned) so a validation
    /// cache can replace its manager at an epoch barrier — bounding the
    /// term table — while symbols stay stable for the whole campaign.
    interner: Arc<Interner>,
}

impl Default for TermManager {
    fn default() -> TermManager {
        TermManager::with_interner(Arc::new(Interner::new()))
    }
}

impl TermManager {
    pub fn new() -> TermManager {
        TermManager::default()
    }

    /// A manager whose variable names intern through `interner`.  Managers
    /// sharing one interner agree on [`Symbol`] identity, so a cache that
    /// swaps managers across epochs keeps name identity stable.
    pub fn with_interner(interner: Arc<Interner>) -> TermManager {
        TermManager {
            state: std::sync::Mutex::default(),
            interner,
        }
    }

    /// The interner behind this manager's variable names.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    fn mk(&self, sort: Sort, kind: TermKind) -> TermRef {
        let key = (sort, Shape::of(&kind));
        let mut state = self.state.lock().expect("term manager lock poisoned");
        if let Some(existing) = state.table.get(&key) {
            return existing.clone();
        }
        let id = state.next_id;
        state.next_id += 1;
        let term = Arc::new(Term { id, sort, kind });
        state.table.insert(key, term.clone());
        term
    }

    /// Number of terms created so far (a proxy for formula size).
    pub fn term_count(&self) -> u64 {
        self.state
            .lock()
            .expect("term manager lock poisoned")
            .next_id
    }

    // ---- constants and variables -------------------------------------

    pub fn bool_const(&self, value: bool) -> TermRef {
        self.mk(Sort::Bool, TermKind::BoolConst(value))
    }

    pub fn tru(&self) -> TermRef {
        self.bool_const(true)
    }

    pub fn fls(&self) -> TermRef {
        self.bool_const(false)
    }

    pub fn bv_const(&self, value: u128, width: u32) -> TermRef {
        self.bv_value(BvValue::from_u128(value, width))
    }

    pub fn bv_value(&self, value: BvValue) -> TermRef {
        let width = value.width();
        self.mk(Sort::BitVec(width), TermKind::BvConst(value))
    }

    pub fn var(&self, name: impl AsRef<str>, sort: Sort) -> TermRef {
        let (sym, text) = self.interner.intern(name.as_ref());
        self.mk(sort, TermKind::Var(VarName { sym, text }))
    }

    /// A fresh variable with a unique name built from `prefix`.
    pub fn fresh_var(&self, prefix: &str, sort: Sort) -> TermRef {
        let n = {
            let mut state = self.state.lock().expect("term manager lock poisoned");
            let n = state.fresh_counter;
            state.fresh_counter += 1;
            n
        };
        self.var(format!("{prefix}!{n}"), sort)
    }

    // ---- boolean connectives ------------------------------------------

    pub fn not(&self, a: TermRef) -> TermRef {
        debug_assert!(a.sort.is_bool());
        match &a.kind {
            TermKind::BoolConst(b) => self.bool_const(!b),
            TermKind::Not(inner) => inner.clone(),
            _ => self.mk(Sort::Bool, TermKind::Not(a)),
        }
    }

    pub fn and(&self, args: Vec<TermRef>) -> TermRef {
        let mut flat = Vec::new();
        for a in args {
            debug_assert!(a.sort.is_bool());
            match &a.kind {
                TermKind::BoolConst(false) => return self.fls(),
                TermKind::BoolConst(true) => {}
                _ => flat.push(a),
            }
        }
        match flat.len() {
            0 => self.tru(),
            1 => flat.pop().expect("length checked"),
            _ => self.mk(Sort::Bool, TermKind::And(flat)),
        }
    }

    pub fn and2(&self, a: TermRef, b: TermRef) -> TermRef {
        self.and(vec![a, b])
    }

    pub fn or(&self, args: Vec<TermRef>) -> TermRef {
        let mut flat = Vec::new();
        for a in args {
            debug_assert!(a.sort.is_bool());
            match &a.kind {
                TermKind::BoolConst(true) => return self.tru(),
                TermKind::BoolConst(false) => {}
                _ => flat.push(a),
            }
        }
        match flat.len() {
            0 => self.fls(),
            1 => flat.pop().expect("length checked"),
            _ => self.mk(Sort::Bool, TermKind::Or(flat)),
        }
    }

    pub fn or2(&self, a: TermRef, b: TermRef) -> TermRef {
        self.or(vec![a, b])
    }

    pub fn implies(&self, a: TermRef, b: TermRef) -> TermRef {
        match (&a.kind, &b.kind) {
            (TermKind::BoolConst(false), _) | (_, TermKind::BoolConst(true)) => self.tru(),
            (TermKind::BoolConst(true), _) => b,
            (_, TermKind::BoolConst(false)) => self.not(a),
            _ => self.mk(Sort::Bool, TermKind::Implies(a, b)),
        }
    }

    pub fn xor(&self, a: TermRef, b: TermRef) -> TermRef {
        // Desugar boolean xor as (a != b).
        self.not(self.eq(a, b))
    }

    // ---- polymorphic --------------------------------------------------

    pub fn eq(&self, a: TermRef, b: TermRef) -> TermRef {
        debug_assert_eq!(a.sort, b.sort, "eq over mismatched sorts: {a} vs {b}");
        if a.id == b.id {
            return self.tru();
        }
        match (&a.kind, &b.kind) {
            (TermKind::BoolConst(x), TermKind::BoolConst(y)) => self.bool_const(x == y),
            (TermKind::BvConst(x), TermKind::BvConst(y)) => self.bool_const(x == y),
            _ => self.mk(Sort::Bool, TermKind::Eq(a, b)),
        }
    }

    pub fn neq(&self, a: TermRef, b: TermRef) -> TermRef {
        self.not(self.eq(a, b))
    }

    pub fn ite(&self, cond: TermRef, then_t: TermRef, else_t: TermRef) -> TermRef {
        debug_assert!(cond.sort.is_bool());
        debug_assert_eq!(then_t.sort, else_t.sort, "ite branches must share a sort");
        match &cond.kind {
            TermKind::BoolConst(true) => then_t,
            TermKind::BoolConst(false) => else_t,
            _ => {
                // Same-condition absorption: inside the then-branch `cond`
                // is known true (dually for else), so a nested ite on the
                // same condition collapses onto the matching arm.  The
                // symbolic interpreter's per-statement state merge nests
                // guards exactly this way for block-wrapped statements
                // (`ite(c, ite(c, a, b), b)`); without the fold the two
                // sides of a translation-validation miter stay structurally
                // different and the query goes to the SAT solver instead of
                // short-circuiting on hash-consed equality.
                let then_t = match &then_t.kind {
                    TermKind::Ite(c2, inner_then, _) if c2.id == cond.id => inner_then.clone(),
                    _ => then_t,
                };
                let else_t = match &else_t.kind {
                    TermKind::Ite(c2, _, inner_else) if c2.id == cond.id => inner_else.clone(),
                    _ => else_t,
                };
                if then_t.id == else_t.id {
                    then_t
                } else {
                    let sort = then_t.sort;
                    self.mk(sort, TermKind::Ite(cond, then_t, else_t))
                }
            }
        }
    }

    // ---- bit-vector operations ----------------------------------------

    fn bv_binop(
        &self,
        a: TermRef,
        b: TermRef,
        fold: impl Fn(&BvValue, &BvValue) -> BvValue,
        build: impl Fn(TermRef, TermRef) -> TermKind,
    ) -> TermRef {
        debug_assert_eq!(a.sort, b.sort, "bit-vector binop sorts differ: {a} vs {b}");
        let sort = a.sort;
        if let (TermKind::BvConst(x), TermKind::BvConst(y)) = (&a.kind, &b.kind) {
            return self.bv_value(fold(x, y));
        }
        self.mk(sort, build(a, b))
    }

    /// `Some(value)` when the term is a bit-vector constant.
    fn as_const(term: &TermRef) -> Option<&BvValue> {
        match &term.kind {
            TermKind::BvConst(v) => Some(v),
            _ => None,
        }
    }

    fn bv_cmp(
        &self,
        a: TermRef,
        b: TermRef,
        fold: impl Fn(&BvValue, &BvValue) -> bool,
        build: impl Fn(TermRef, TermRef) -> TermKind,
    ) -> TermRef {
        debug_assert_eq!(a.sort, b.sort, "comparison sorts differ");
        if let (TermKind::BvConst(x), TermKind::BvConst(y)) = (&a.kind, &b.kind) {
            return self.bool_const(fold(x, y));
        }
        self.mk(Sort::Bool, build(a, b))
    }

    pub fn bv_add(&self, a: TermRef, b: TermRef) -> TermRef {
        // x + 0 = 0 + x = x.
        if Self::as_const(&a).is_some_and(BvValue::is_zero) {
            return b;
        }
        if Self::as_const(&b).is_some_and(BvValue::is_zero) {
            return a;
        }
        self.bv_binop(a, b, BvValue::add, TermKind::BvAdd)
    }

    pub fn bv_sub(&self, a: TermRef, b: TermRef) -> TermRef {
        // x - 0 = x; x - x = 0.
        if Self::as_const(&b).is_some_and(BvValue::is_zero) {
            return a;
        }
        if a.id == b.id {
            return self.bv_const(0, a.sort.width());
        }
        self.bv_binop(a, b, BvValue::sub, TermKind::BvSub)
    }

    pub fn bv_mul(&self, a: TermRef, b: TermRef) -> TermRef {
        // x * 0 = 0; x * 1 = x (and the mirrored forms).
        let width = a.sort.width();
        for (constant, other) in [(&a, &b), (&b, &a)] {
            if let Some(value) = Self::as_const(constant) {
                if value.is_zero() {
                    return self.bv_const(0, width);
                }
                // `bit(0) && rest zero` rather than `to_u128() == 1`:
                // to_u128 panics on constants wider than 128 bits.
                if value.bit(0) && value.lshr(1).is_zero() {
                    return other.clone();
                }
                // x * 2^k = x << k (mod 2^width on both sides), canonicalised
                // so a strength-reduced shift and the original multiply
                // hash-cons to one term.
                if Self::as_const(other).is_none() {
                    if let Some(k) = value.single_bit_position() {
                        let amount = self.bv_const(u128::from(k), width);
                        return self.bv_shl(other.clone(), amount);
                    }
                }
            }
        }
        self.bv_binop(a, b, BvValue::mul, TermKind::BvMul)
    }

    pub fn bv_and(&self, a: TermRef, b: TermRef) -> TermRef {
        // x & 0 = 0; x & ~0 = x; x & x = x.
        if a.id == b.id {
            return a;
        }
        let width = a.sort.width();
        for (constant, other) in [(&a, &b), (&b, &a)] {
            if let Some(value) = Self::as_const(constant) {
                if value.is_zero() {
                    return self.bv_const(0, width);
                }
                if value.bitnot().is_zero() {
                    return other.clone();
                }
            }
        }
        self.bv_binop(a, b, BvValue::bitand, TermKind::BvAnd)
    }

    pub fn bv_or(&self, a: TermRef, b: TermRef) -> TermRef {
        // x | 0 = x; x | ~0 = ~0; x | x = x.
        if a.id == b.id {
            return a;
        }
        for (constant, other) in [(&a, &b), (&b, &a)] {
            if let Some(value) = Self::as_const(constant) {
                if value.is_zero() {
                    return other.clone();
                }
                if value.bitnot().is_zero() {
                    return constant.clone();
                }
            }
        }
        self.bv_binop(a, b, BvValue::bitor, TermKind::BvOr)
    }

    pub fn bv_xor(&self, a: TermRef, b: TermRef) -> TermRef {
        // x ^ 0 = x; x ^ x = 0.
        if a.id == b.id {
            return self.bv_const(0, a.sort.width());
        }
        for (constant, other) in [(&a, &b), (&b, &a)] {
            if let Some(value) = Self::as_const(constant) {
                if value.is_zero() {
                    return other.clone();
                }
            }
        }
        self.bv_binop(a, b, BvValue::bitxor, TermKind::BvXor)
    }

    pub fn bv_not(&self, a: TermRef) -> TermRef {
        let sort = a.sort;
        match &a.kind {
            TermKind::BvConst(v) => self.bv_value(v.bitnot()),
            // ~~x = x, mirroring the compiler's double-negation rewrite.
            TermKind::BvNot(inner) => inner.clone(),
            _ => self.mk(sort, TermKind::BvNot(a)),
        }
    }

    pub fn bv_neg(&self, a: TermRef) -> TermRef {
        let sort = a.sort;
        if let TermKind::BvConst(v) = &a.kind {
            return self.bv_value(v.neg());
        }
        self.mk(sort, TermKind::BvNeg(a))
    }

    pub fn bv_shl(&self, a: TermRef, b: TermRef) -> TermRef {
        // x << 0 = x.
        if Self::as_const(&b).is_some_and(BvValue::is_zero) {
            return a;
        }
        // x << k = 0 for constant k ≥ width (zero-fill semantics).  Folding
        // here keeps a symbolic `x << 41` and a rewritten literal `0`
        // hash-consed to the same term, so translation-validation miters
        // over oversized shifts stay structural instead of burning SAT time.
        if let (Sort::BitVec(width), Some(amount)) = (a.sort, Self::as_const(&b)) {
            if amount.to_u128() >= u128::from(width) {
                return self.bv_const(0, width);
            }
        }
        self.bv_binop(
            a,
            b,
            |x, y| x.shl(y.to_u128().min(u128::from(u32::MAX)) as u32),
            TermKind::BvShl,
        )
    }

    pub fn bv_lshr(&self, a: TermRef, b: TermRef) -> TermRef {
        // x >> 0 = x.
        if Self::as_const(&b).is_some_and(BvValue::is_zero) {
            return a;
        }
        // x >> k = 0 for constant k ≥ width, mirroring `bv_shl`.
        if let (Sort::BitVec(width), Some(amount)) = (a.sort, Self::as_const(&b)) {
            if amount.to_u128() >= u128::from(width) {
                return self.bv_const(0, width);
            }
        }
        self.bv_binop(
            a,
            b,
            |x, y| x.lshr(y.to_u128().min(u128::from(u32::MAX)) as u32),
            TermKind::BvLshr,
        )
    }

    pub fn bv_ult(&self, a: TermRef, b: TermRef) -> TermRef {
        // x < x = false; x < 0 = false (unsigned).  The zero fold is what
        // keeps `x |-| 0` (desugared `ite(ult(x, 0), 0, x - 0)`) hash-consed
        // back to `x`: a strength-reduced program and its original then meet
        // structurally instead of handing the SAT core an equivalence over
        // two 48-bit datapaths that costs unbounded conflicts to prove.
        if a.id == b.id || Self::as_const(&b).is_some_and(BvValue::is_zero) {
            return self.fls();
        }
        self.bv_cmp(a, b, BvValue::ult, TermKind::BvUlt)
    }

    pub fn bv_ule(&self, a: TermRef, b: TermRef) -> TermRef {
        // x <= x = true; 0 <= x = true (unsigned).
        if a.id == b.id || Self::as_const(&a).is_some_and(BvValue::is_zero) {
            return self.tru();
        }
        self.bv_cmp(a, b, |x, y| !y.ult(x), TermKind::BvUle)
    }

    pub fn bv_ugt(&self, a: TermRef, b: TermRef) -> TermRef {
        self.bv_ult(b, a)
    }

    pub fn bv_uge(&self, a: TermRef, b: TermRef) -> TermRef {
        self.bv_ule(b, a)
    }

    pub fn bv_slt(&self, a: TermRef, b: TermRef) -> TermRef {
        // x < x = false (signed).
        if a.id == b.id {
            return self.fls();
        }
        self.bv_cmp(a, b, BvValue::slt, TermKind::BvSlt)
    }

    /// Saturating add, desugared: `ite(ult(a + b, a), max, a + b)`.
    pub fn bv_sat_add(&self, a: TermRef, b: TermRef) -> TermRef {
        let width = a.sort.width();
        let sum = self.bv_add(a.clone(), b);
        let overflow = self.bv_ult(sum.clone(), a);
        let max = self.bv_value(BvValue::from_u128(u128::MAX, width).resize(width));
        let max = self.bv_not(self.bv_xor(max.clone(), max)); // all-ones of the right width
        self.ite(overflow, max, sum)
    }

    /// Saturating subtract, desugared: `ite(ult(a, b), 0, a - b)`.
    pub fn bv_sat_sub(&self, a: TermRef, b: TermRef) -> TermRef {
        let width = a.sort.width();
        let diff = self.bv_sub(a.clone(), b.clone());
        let underflow = self.bv_ult(a, b);
        let zero = self.bv_const(0, width);
        self.ite(underflow, zero, diff)
    }

    pub fn concat(&self, hi: TermRef, lo: TermRef) -> TermRef {
        let width = hi.sort.width() + lo.sort.width();
        if let (TermKind::BvConst(h), TermKind::BvConst(l)) = (&hi.kind, &lo.kind) {
            return self.bv_value(h.concat(l));
        }
        self.mk(Sort::BitVec(width), TermKind::Concat(hi, lo))
    }

    pub fn extract(&self, hi: u32, lo: u32, arg: TermRef) -> TermRef {
        assert!(hi >= lo, "extract with hi < lo");
        assert!(
            hi < arg.sort.width(),
            "extract out of range: [{hi}:{lo}] of {}",
            arg.sort.width()
        );
        let width = hi - lo + 1;
        if width == arg.sort.width() {
            return arg;
        }
        if let TermKind::BvConst(v) = &arg.kind {
            return self.bv_value(v.extract(hi, lo));
        }
        self.mk(Sort::BitVec(width), TermKind::Extract { hi, lo, arg })
    }

    pub fn zero_extend(&self, arg: TermRef, width: u32) -> TermRef {
        assert!(width >= arg.sort.width());
        if width == arg.sort.width() {
            return arg;
        }
        if let TermKind::BvConst(v) = &arg.kind {
            return self.bv_value(v.resize(width));
        }
        self.mk(Sort::BitVec(width), TermKind::ZeroExtend { arg, width })
    }

    pub fn sign_extend(&self, arg: TermRef, width: u32) -> TermRef {
        assert!(width >= arg.sort.width());
        if width == arg.sort.width() {
            return arg;
        }
        if let TermKind::BvConst(v) = &arg.kind {
            return self.bv_value(v.sign_extend(width));
        }
        self.mk(Sort::BitVec(width), TermKind::SignExtend { arg, width })
    }

    /// Resizes a bit-vector term to `width`, zero-extending or truncating.
    pub fn resize(&self, arg: TermRef, width: u32) -> TermRef {
        let current = arg.sort.width();
        if width == current {
            arg
        } else if width > current {
            self.zero_extend(arg, width)
        } else {
            self.extract(width - 1, 0, arg)
        }
    }

    /// Converts a boolean term to a 1-bit vector (true → 1).
    pub fn bool_to_bv(&self, arg: TermRef) -> TermRef {
        debug_assert!(arg.sort.is_bool());
        self.ite(arg, self.bv_const(1, 1), self.bv_const(0, 1))
    }

    /// Converts a bit-vector term to a boolean (non-zero → true).
    pub fn bv_to_bool(&self, arg: TermRef) -> TermRef {
        let width = arg.sort.width();
        let zero = self.bv_const(0, width);
        self.neq(arg, zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_arithmetic() {
        let tm = TermManager::new();
        let a = tm.bv_const(250, 8);
        let b = tm.bv_const(10, 8);
        let sum = tm.bv_add(a.clone(), b.clone());
        assert!(matches!(&sum.kind, TermKind::BvConst(v) if v.to_u128() == 4));
        let cmp = tm.bv_ult(a, b);
        assert!(matches!(&cmp.kind, TermKind::BoolConst(false)));
    }

    /// Same-condition nested ites absorb into the outer ite: the symbolic
    /// interpreter's per-statement merge produces `ite(c, ite(c, a, b), b)`
    /// for block-wrapped statements, which must stay hash-consed identical
    /// to the unwrapped `ite(c, a, b)` (a block-wrapping pass used to send
    /// the resulting 48-bit miter to the SAT solver and hang the campaign).
    #[test]
    fn same_condition_nested_ites_absorb() {
        let tm = TermManager::new();
        let c = tm.var("c", Sort::Bool);
        let a = tm.var("a", Sort::BitVec(48));
        let b = tm.var("b", Sort::BitVec(48));
        let plain = tm.ite(c.clone(), a.clone(), b.clone());
        let wrapped_then = tm.ite(c.clone(), plain.clone(), b.clone());
        assert_eq!(wrapped_then.id, plain.id);
        let wrapped_else = tm.ite(c.clone(), a.clone(), plain.clone());
        assert_eq!(wrapped_else.id, plain.id);
        // Different conditions must not absorb.
        let d = tm.var("d", Sort::Bool);
        let other = tm.ite(d, plain.clone(), b.clone());
        assert_ne!(other.id, plain.id);
    }

    /// Oversized constant shift amounts fold to the zero constant at the
    /// term level (zero-fill semantics), keeping `x << 41` hash-consed
    /// identical to a literal `0` — translation-validation miters over
    /// strength-reduced oversized shifts must stay structural (a 8w41 shift
    /// of a symbolic operand used to cost the SAT solver over a minute).
    #[test]
    fn oversized_constant_shifts_fold_to_zero() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        for shifted in [
            tm.bv_shl(x.clone(), tm.bv_const(41, 8)),
            tm.bv_shl(x.clone(), tm.bv_const(8, 8)),
            tm.bv_lshr(x.clone(), tm.bv_const(9, 8)),
        ] {
            assert!(
                matches!(&shifted.kind, TermKind::BvConst(v) if v.is_zero()),
                "expected zero constant, got {shifted:?}"
            );
        }
        // In-range constant amounts stay symbolic.
        let in_range = tm.bv_shl(x.clone(), tm.bv_const(7, 8));
        assert!(matches!(&in_range.kind, TermKind::BvShl(..)));
    }

    #[test]
    fn boolean_simplifications() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::Bool);
        assert!(matches!(
            tm.and2(tm.fls(), x.clone()).kind,
            TermKind::BoolConst(false)
        ));
        assert!(matches!(
            tm.or2(tm.tru(), x.clone()).kind,
            TermKind::BoolConst(true)
        ));
        assert_eq!(tm.and2(tm.tru(), x.clone()).id, x.id);
        let double_neg = tm.not(tm.not(x.clone()));
        assert_eq!(double_neg.id, x.id);
    }

    #[test]
    fn ite_simplifications() {
        let tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let b = tm.var("b", Sort::BitVec(8));
        assert_eq!(tm.ite(tm.tru(), a.clone(), b.clone()).id, a.id);
        assert_eq!(tm.ite(tm.fls(), a.clone(), b.clone()).id, b.id);
        let c = tm.var("c", Sort::Bool);
        assert_eq!(tm.ite(c, a.clone(), a.clone()).id, a.id);
    }

    #[test]
    fn eq_reflexive_and_constant() {
        let tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        assert!(matches!(
            tm.eq(a.clone(), a.clone()).kind,
            TermKind::BoolConst(true)
        ));
        let one = tm.bv_const(1, 8);
        let two = tm.bv_const(2, 8);
        assert!(matches!(tm.eq(one, two).kind, TermKind::BoolConst(false)));
    }

    #[test]
    fn extract_concat_widths() {
        let tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let b = tm.var("b", Sort::BitVec(16));
        let cat = tm.concat(a.clone(), b.clone());
        assert_eq!(cat.sort, Sort::BitVec(24));
        let ext = tm.extract(7, 4, a.clone());
        assert_eq!(ext.sort, Sort::BitVec(4));
        assert_eq!(tm.extract(7, 0, a.clone()).id, a.id);
        assert_eq!(tm.resize(a.clone(), 16).sort, Sort::BitVec(16));
        assert_eq!(tm.resize(b, 8).sort, Sort::BitVec(8));
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let tm = TermManager::new();
        let a = tm.fresh_var("undef", Sort::BitVec(8));
        let b = tm.fresh_var("undef", Sort::BitVec(8));
        match (&a.kind, &b.kind) {
            (TermKind::Var(n1), TermKind::Var(n2)) => assert_ne!(n1, n2),
            _ => panic!("fresh vars must be variables"),
        }
    }

    #[test]
    fn sat_arith_folds_to_expected_shape() {
        let tm = TermManager::new();
        let a = tm.bv_const(250, 8);
        let b = tm.bv_const(10, 8);
        let sat = tm.bv_sat_add(a, b);
        assert!(matches!(&sat.kind, TermKind::BvConst(v) if v.to_u128() == 255));
        let sat2 = tm.bv_sat_sub(tm.bv_const(3, 8), tm.bv_const(10, 8));
        assert!(matches!(&sat2.kind, TermKind::BvConst(v) if v.to_u128() == 0));
    }

    /// The comparison identities every strength-reduction rewrite leans on:
    /// without them `x |-| 0` (desugared through `ult(x, 0)`) and plain `x`
    /// only meet at the SAT solver, and a 48-bit instance of that miter is
    /// hard enough to stall a campaign for minutes.
    #[test]
    fn comparison_identities_fold() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(48));
        let zero = tm.bv_const(0, 48);
        assert!(matches!(
            tm.bv_ult(x.clone(), zero.clone()).kind,
            TermKind::BoolConst(false)
        ));
        assert!(matches!(
            tm.bv_ult(x.clone(), x.clone()).kind,
            TermKind::BoolConst(false)
        ));
        assert!(matches!(
            tm.bv_ule(zero.clone(), x.clone()).kind,
            TermKind::BoolConst(true)
        ));
        assert!(matches!(
            tm.bv_ule(x.clone(), x.clone()).kind,
            TermKind::BoolConst(true)
        ));
        assert!(matches!(
            tm.bv_slt(x.clone(), x.clone()).kind,
            TermKind::BoolConst(false)
        ));
        // Still symbolic when nothing is known.
        let y = tm.var("y", Sort::BitVec(48));
        assert!(matches!(
            tm.bv_ult(x.clone(), y.clone()).kind,
            TermKind::BvUlt(..)
        ));
        assert!(matches!(tm.bv_ule(x, y).kind, TermKind::BvUle(..)));
    }

    /// Saturating arithmetic with a zero operand folds all the way back to
    /// the other operand — the exact shape of the `add_zero_identity`
    /// strength-reduction rule, which must stay structural in miters.
    #[test]
    fn saturating_zero_identities_fold_to_operand() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(48));
        let zero = tm.bv_const(0, 48);
        assert_eq!(tm.bv_sat_sub(x.clone(), zero.clone()).id, x.id);
        assert_eq!(tm.bv_sat_add(x.clone(), zero.clone()).id, x.id);
        // The seed-17 regression shape: (x |-| 0) << 13 vs x << 13 must be
        // one hash-consed term, so the equivalence query never reaches SAT.
        let thirteen = tm.bv_const(13, 48);
        let reduced = tm.bv_shl(x.clone(), thirteen.clone());
        let original = tm.bv_shl(tm.bv_sat_sub(x.clone(), zero), thirteen);
        assert_eq!(original.id, reduced.id);
        assert!(matches!(
            tm.neq(original, reduced).kind,
            TermKind::BoolConst(false)
        ));
    }

    /// `x * 2^k` canonicalises to `x << k`, mirroring the compiler's
    /// `mul_pow2_to_shift` rewrite so those miters stay structural too.
    #[test]
    fn mul_by_power_of_two_canonicalises_to_shift() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let mul = tm.bv_mul(x.clone(), tm.bv_const(4, 8));
        let shift = tm.bv_shl(x.clone(), tm.bv_const(2, 8));
        assert_eq!(mul.id, shift.id);
        let mirrored = tm.bv_mul(tm.bv_const(16, 8), x.clone());
        assert!(matches!(&mirrored.kind, TermKind::BvShl(..)));
        // A power that would overflow the width truncates to zero before
        // the constructor sees it, landing in the mul-by-zero fold.
        let overflowed = tm.bv_mul(x.clone(), tm.bv_value(BvValue::from_u128(256, 8)));
        assert!(matches!(&overflowed.kind, TermKind::BvConst(v) if v.is_zero()));
        // Non-power constants still multiply.
        assert!(matches!(
            tm.bv_mul(x.clone(), tm.bv_const(6, 8)).kind,
            TermKind::BvMul(..)
        ));
        // Constant * constant folds to a constant, not a shift.
        let both = tm.bv_mul(tm.bv_const(3, 8), tm.bv_const(4, 8));
        assert!(matches!(&both.kind, TermKind::BvConst(v) if v.to_u128() == 12));
    }

    #[test]
    fn double_bitwise_negation_folds() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        assert_eq!(tm.bv_not(tm.bv_not(x.clone())).id, x.id);
    }

    #[test]
    fn display_smtlib_like() {
        let tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let e = tm.bv_add(a.clone(), tm.bv_const(1, 8));
        assert_eq!(format!("{e}"), "(bvadd a 8w1)");
    }
}
