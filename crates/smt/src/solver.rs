//! Solver facade: the `Z3`-shaped API the rest of the workspace uses.
//!
//! A [`Solver`] accumulates boolean assertions (terms) and decides their
//! conjunction by bit-blasting into the CDCL SAT core.  On SAT it returns a
//! [`Model`] mapping every variable that occurred in the assertions to a
//! concrete value; on UNSAT it reports unsatisfiability.  This is exactly
//! the interface translation validation (§5) and test-case generation (§6)
//! need.

use crate::bitblast::{BitBlaster, BlastContext, Repr};
use crate::eval::{eval_with_default, Assignment, Value};
use crate::sat::{Lit, SatResult, SatSolver, SolverConfig};
use crate::term::TermRef;
use crate::value::BvValue;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A satisfying assignment for the variables of a query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Model {
    values: HashMap<String, Value>,
}

impl Model {
    pub fn new(values: HashMap<String, Value>) -> Model {
        Model { values }
    }

    /// Value of a named variable, if it occurred in the query.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Bit-vector value of a named variable (booleans become 1-bit vectors).
    pub fn get_bv(&self, name: &str) -> Option<BvValue> {
        self.values.get(name).map(Value::as_bv)
    }

    /// Boolean value of a named variable.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.values.get(name).map(Value::as_bool)
    }

    /// Evaluates an arbitrary term under this model.  Variables absent from
    /// the model default to zero (they were "don't care" in the query).
    pub fn eval(&self, term: &TermRef) -> Value {
        eval_with_default(term, &self.values)
    }

    /// All variable bindings.
    pub fn bindings(&self) -> &HashMap<String, Value> {
        &self.values
    }

    /// The model as an evaluation environment.
    pub fn as_assignment(&self) -> Assignment {
        self.values.clone()
    }
}

/// Result of a [`Solver::check`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckResult {
    Sat(Model),
    Unsat,
}

impl CheckResult {
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }

    pub fn model(&self) -> Option<&Model> {
        match self {
            CheckResult::Sat(model) => Some(model),
            CheckResult::Unsat => None,
        }
    }
}

/// Statistics from one `check` call, surfaced to the benchmark harness.
///
/// `sat_variables`/`sat_clauses` are totals for the (possibly long-lived)
/// underlying SAT instance; the search counters (`conflicts`, `decisions`,
/// `propagations`) cover only the most recent check.  `memo_hits` counts
/// lookups the last check served from encodings built by *earlier* checks —
/// the subterms it did not have to re-bitblast thanks to the incremental
/// term-to-CNF memo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    pub sat_variables: usize,
    pub sat_clauses: usize,
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
    pub memo_hits: usize,
    /// When the last check escalated to a portfolio race, the index of the
    /// configuration (`SolverConfig::portfolio_variant`) that answered
    /// first.  Informational only: the verdict is identical whichever
    /// member wins, and counterexamples are canonicalised upstream, so
    /// nothing rendered depends on this value.
    pub portfolio_winner: Option<usize>,
}

/// Configuration of [`Solver`]'s portfolio escalation for hard instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioOptions {
    /// Number of configurations to race (clamped to at least 1).
    pub members: usize,
    /// Conflicts the incremental solver may spend before escalating to the
    /// race.  `0` races immediately (useful for tests).
    pub trigger_conflicts: u64,
}

impl Default for PortfolioOptions {
    fn default() -> PortfolioOptions {
        PortfolioOptions {
            members: 4,
            // Generated miters almost always decide within a few hundred
            // conflicts; only genuinely hard instances get this far.
            trigger_conflicts: 20_000,
        }
    }
}

/// An accumulating, incremental solver over terms.
///
/// The solver keeps one SAT instance and one bit-blasting memo alive for its
/// whole lifetime.  Assertions are lowered once when first checked;
/// [`Solver::check_with`] extras are lowered to indicator literals and
/// passed to the SAT core as *assumptions*, so they are decided without
/// being retained and without discarding any of the already-built CNF —
/// Z3's `push`/`check`/`pop` idiom, with learned clauses carrying over
/// between checks.  Chains of related queries over one [`crate::TermManager`]
/// (translation validation of consecutive pass pairs) therefore bit-blast
/// every shared subterm exactly once.
#[derive(Debug, Default)]
pub struct Solver {
    assertions: Vec<TermRef>,
    /// How many of `assertions` are already lowered into `sat`.
    lowered: usize,
    sat: SatSolver,
    ctx: BlastContext,
    last_stats: SolverStats,
    total_checks: u64,
    /// When set, hard checks escalate to a portfolio race (see
    /// [`PortfolioOptions`]).
    portfolio: Option<PortfolioOptions>,
    /// Lifetime count of checks that escalated to a race.
    portfolio_races: u64,
}

impl Solver {
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Enables (or disables, with `None`) portfolio escalation.
    pub fn set_portfolio(&mut self, options: Option<PortfolioOptions>) {
        self.portfolio = options;
    }

    /// Number of checks that escalated to a portfolio race so far.
    pub fn portfolio_races(&self) -> u64 {
        self.portfolio_races
    }

    /// Adds a boolean assertion.
    pub fn assert(&mut self, term: TermRef) {
        debug_assert!(term.sort.is_bool(), "assertions must be boolean terms");
        self.assertions.push(term);
    }

    /// Number of assertions added so far.
    pub fn len(&self) -> usize {
        self.assertions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.assertions.is_empty()
    }

    /// Removes all assertions and discards the incremental SAT state.
    pub fn reset(&mut self) {
        self.assertions.clear();
        self.lowered = 0;
        self.sat = SatSolver::new();
        self.ctx = BlastContext::new();
    }

    /// Statistics of the most recent `check`/`check_with` call.
    pub fn stats(&self) -> SolverStats {
        self.last_stats
    }

    /// Number of `check`/`check_with` calls over this solver's lifetime.
    pub fn total_checks(&self) -> u64 {
        self.total_checks
    }

    /// Decides the conjunction of all assertions.
    pub fn check(&mut self) -> CheckResult {
        self.check_with(&[])
    }

    /// Decides the conjunction of all assertions plus `extra` (which are not
    /// retained), mirroring Z3's push/assert/check/pop idiom.
    pub fn check_with(&mut self, extra: &[TermRef]) -> CheckResult {
        // Observation only: times the whole decision (blast + solve) into
        // the flight recorder's latency histogram when one is installed.
        let telemetry_query = gauntlet_telemetry::query_start();
        self.total_checks += 1;
        let (conflicts0, decisions0, propagations0) = (
            self.sat.conflicts,
            self.sat.decisions,
            self.sat.propagations,
        );

        // Lower assertions added since the last check as permanent unit
        // clauses; lower extras to indicator literals used as assumptions.
        let mut assumptions: Vec<Lit> = Vec::with_capacity(extra.len());
        {
            let mut blaster = BitBlaster::new(&mut self.sat, &mut self.ctx);
            let pending = self.assertions[self.lowered..].to_vec();
            for assertion in &pending {
                blaster.assert(assertion);
            }
            for term in extra {
                debug_assert!(term.sort.is_bool(), "checked terms must be boolean");
                assumptions.push(blaster.blast(term).as_bool());
            }
        }
        self.lowered = self.assertions.len();
        let memo_hits = self.ctx.cross_generation_hits();

        // Decide: incrementally when possible, escalating to a portfolio
        // race once a configured conflict budget is exhausted.  The race
        // re-blasts the full assertion set into fresh instances with
        // diverse configurations; the first to answer stops the rest.
        let mut portfolio_winner = None;
        let local_result = match self.portfolio {
            None => Some(self.sat.solve_with_assumptions(&assumptions)),
            Some(options) if options.trigger_conflicts > 0 => {
                self.sat
                    .solve_limited(&assumptions, Some(options.trigger_conflicts), None)
            }
            Some(_) => None,
        };
        let raced_values = match (&local_result, self.portfolio) {
            (None, Some(options)) => {
                self.portfolio_races += 1;
                let (winner, values) = self.race_portfolio(extra, options.members.max(1));
                portfolio_winner = Some(winner);
                Some(values)
            }
            _ => None,
        };
        self.last_stats = SolverStats {
            sat_variables: self.sat.num_vars(),
            sat_clauses: self.sat.num_clauses(),
            conflicts: self.sat.conflicts - conflicts0,
            decisions: self.sat.decisions - decisions0,
            propagations: self.sat.propagations - propagations0,
            memo_hits,
            portfolio_winner,
        };
        let result = match (local_result, raced_values) {
            (Some(SatResult::Unsat), _) => CheckResult::Unsat,
            (Some(SatResult::Sat(assignment)), _) => {
                CheckResult::Sat(Model::new(extract_values(&self.ctx, &assignment)))
            }
            (None, Some(None)) => CheckResult::Unsat,
            (None, Some(Some(values))) => CheckResult::Sat(Model::new(values)),
            (None, None) => unreachable!("an escalated check always races"),
        };
        gauntlet_telemetry::query_finish(telemetry_query);
        result
    }

    /// Races `members` freshly-blasted SAT instances with diverse
    /// configurations over the current assertions plus `extra`.  Returns
    /// the winning member's index and its verdict (`None` = UNSAT,
    /// `Some(values)` = a satisfying assignment).
    fn race_portfolio(
        &self,
        extra: &[TermRef],
        members: usize,
    ) -> (usize, Option<HashMap<String, Value>>) {
        let stop = AtomicBool::new(false);
        type RaceWin = Option<(usize, Option<HashMap<String, Value>>)>;
        let winner: Mutex<RaceWin> = Mutex::new(None);
        std::thread::scope(|scope| {
            for member in 0..members {
                let stop = &stop;
                let winner = &winner;
                let assertions = &self.assertions;
                scope.spawn(move || {
                    let mut sat = SatSolver::with_config(SolverConfig::portfolio_variant(member));
                    let mut ctx = BlastContext::new();
                    let mut assumptions = Vec::with_capacity(extra.len());
                    {
                        let mut blaster = BitBlaster::new(&mut sat, &mut ctx);
                        for assertion in assertions {
                            blaster.assert(assertion);
                        }
                        for term in extra {
                            assumptions.push(blaster.blast(term).as_bool());
                        }
                    }
                    let Some(result) = sat.solve_limited(&assumptions, None, Some(stop)) else {
                        return; // another member answered first
                    };
                    let mut slot = winner.lock().expect("portfolio winner lock poisoned");
                    if slot.is_none() {
                        stop.store(true, Ordering::Relaxed);
                        let values = match result {
                            SatResult::Unsat => None,
                            SatResult::Sat(assignment) => Some(extract_values(&ctx, &assignment)),
                        };
                        *slot = Some((member, values));
                    }
                });
            }
        });
        winner
            .into_inner()
            .expect("portfolio winner lock poisoned")
            .expect("at least one portfolio member completes")
    }

    /// Convenience: checks whether two terms of equal sort can differ.  This
    /// is the core query of translation validation (§5.2): it is satisfiable
    /// only if there is an input on which the two programs disagree.
    pub fn check_distinct(
        &mut self,
        tm: &crate::term::TermManager,
        a: TermRef,
        b: TermRef,
    ) -> CheckResult {
        let distinct = tm.neq(a, b);
        self.check_with(&[distinct])
    }
}

/// Named-variable values under a satisfying assignment, read through the
/// blast context that produced the CNF.
fn extract_values(ctx: &BlastContext, assignment: &[bool]) -> HashMap<String, Value> {
    let mut values = HashMap::new();
    for (name, repr) in ctx.variables() {
        let value = match repr {
            Repr::Bool(lit) => Value::Bool(assignment[lit.var() as usize] ^ lit.is_negated()),
            Repr::Bits(bits) => Value::Bv(BvValue::from_bits(
                bits.iter()
                    .map(|l| assignment[l.var() as usize] ^ l.is_negated())
                    .collect(),
            )),
        };
        values.insert(name.to_string(), value);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Sort, TermManager};

    #[test]
    fn sat_model_evaluates_assertions_true() {
        let tm = TermManager::new();
        let mut solver = Solver::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let a1 = tm.eq(tm.bv_add(x.clone(), y.clone()), tm.bv_const(10, 8));
        let a2 = tm.bv_ult(x.clone(), y.clone());
        solver.assert(a1.clone());
        solver.assert(a2.clone());
        match solver.check() {
            CheckResult::Sat(model) => {
                assert!(model.eval(&a1).as_bool());
                assert!(model.eval(&a2).as_bool());
                let xv = model.get_bv("x").unwrap().to_u128();
                let yv = model.get_bv("y").unwrap().to_u128();
                assert_eq!((xv + yv) % 256, 10);
                assert!(xv < yv);
            }
            CheckResult::Unsat => panic!("satisfiable instance reported UNSAT"),
        }
    }

    #[test]
    fn unsat_conjunction() {
        let tm = TermManager::new();
        let mut solver = Solver::new();
        let x = tm.var("x", Sort::BitVec(4));
        solver.assert(tm.bv_ult(x.clone(), tm.bv_const(3, 4)));
        solver.assert(tm.bv_ult(tm.bv_const(10, 4), x.clone()));
        assert_eq!(solver.check(), CheckResult::Unsat);
    }

    #[test]
    fn check_with_does_not_retain_extras() {
        let tm = TermManager::new();
        let mut solver = Solver::new();
        let x = tm.var("x", Sort::BitVec(4));
        solver.assert(tm.bv_ult(x.clone(), tm.bv_const(3, 4)));
        let contradiction = tm.bv_ult(tm.bv_const(10, 4), x.clone());
        assert_eq!(solver.check_with(&[contradiction]), CheckResult::Unsat);
        // Without the extra assertion the instance is satisfiable again.
        assert!(solver.check().is_sat());
        assert!(solver.stats().sat_variables > 0);
    }

    #[test]
    fn check_distinct_detects_semantic_difference() {
        let tm = TermManager::new();
        let mut solver = Solver::new();
        let x = tm.var("x", Sort::BitVec(8));
        // f(x) = x + 1 vs g(x) = x + 2 differ everywhere.
        let f = tm.bv_add(x.clone(), tm.bv_const(1, 8));
        let g = tm.bv_add(x.clone(), tm.bv_const(2, 8));
        assert!(solver.check_distinct(&tm, f.clone(), g).is_sat());
        // f vs f + 0 are equivalent.
        let f2 = tm.bv_add(f.clone(), tm.bv_const(0, 8));
        assert_eq!(solver.check_distinct(&tm, f, f2), CheckResult::Unsat);
    }

    #[test]
    fn incremental_checks_reuse_the_cnf_memo() {
        let tm = TermManager::new();
        let mut solver = Solver::new();
        let x = tm.var("x", Sort::BitVec(16));
        let y = tm.var("y", Sort::BitVec(16));
        // A moderately large shared subterm.
        let shared = tm.bv_mul(
            tm.bv_add(x.clone(), y.clone()),
            tm.bv_xor(x.clone(), y.clone()),
        );
        let q1 = tm.bv_ult(shared.clone(), tm.bv_const(100, 16));
        assert!(solver.check_with(std::slice::from_ref(&q1)).is_sat());
        let first_clauses = solver.stats().sat_clauses;
        assert_eq!(solver.stats().memo_hits, 0, "first check starts cold");
        // A second query over the same subterm must hit the memo instead of
        // re-bitblasting the multiplier.
        let q2 = tm.bv_ult(tm.bv_const(200, 16), shared.clone());
        assert!(solver.check_with(&[q2]).is_sat());
        assert!(
            solver.stats().memo_hits > 0,
            "shared subterm must be memoised"
        );
        let second_clauses = solver.stats().sat_clauses - first_clauses;
        assert!(
            second_clauses < first_clauses / 2,
            "incremental check re-encoded too much: {second_clauses} vs {first_clauses}"
        );
        // Results stay correct in both directions after many checks.
        assert_eq!(
            solver.check_with(&[tm.neq(shared.clone(), shared.clone())]),
            CheckResult::Unsat
        );
        assert!(solver.check_with(&[q1]).is_sat());
    }

    #[test]
    fn incremental_checks_respect_retained_assertions() {
        let tm = TermManager::new();
        let mut solver = Solver::new();
        let x = tm.var("x", Sort::BitVec(8));
        solver.assert(tm.bv_ult(x.clone(), tm.bv_const(10, 8)));
        assert!(solver.check().is_sat());
        // A later assertion narrows the space incrementally.
        solver.assert(tm.bv_ult(tm.bv_const(7, 8), x.clone()));
        match solver.check() {
            CheckResult::Sat(model) => {
                let value = model.get_bv("x").unwrap().to_u128();
                assert!(value > 7 && value < 10);
            }
            CheckResult::Unsat => panic!("8 and 9 satisfy both bounds"),
        }
        solver.assert(tm.bv_ult(tm.bv_const(8, 8), x.clone()));
        solver.assert(tm.neq(x.clone(), tm.bv_const(9, 8)));
        assert_eq!(solver.check(), CheckResult::Unsat);
    }

    /// A query hard enough to need conflicts, solved three ways: plain
    /// incremental, portfolio with a generous trigger (no race), and
    /// portfolio forced to race immediately.  All verdicts must agree.
    #[test]
    fn portfolio_race_agrees_with_incremental() {
        let tm = TermManager::new();
        // An UNSAT mutation miter: commuted multiplication (kept narrow —
        // UNSAT proofs over multipliers grow steeply with width).
        let x = tm.var("x", Sort::BitVec(5));
        let y = tm.var("y", Sort::BitVec(5));
        let lhs = tm.bv_mul(x.clone(), y.clone());
        let rhs = tm.bv_mul(y.clone(), x.clone());
        // Defeat hash-consing's syntactic collapse with an extra xor layer
        // so the query actually reaches the SAT core.
        let lhs = tm.bv_xor(lhs, tm.bv_add(x.clone(), y.clone()));
        let rhs = tm.bv_xor(rhs, tm.bv_add(x.clone(), y.clone()));
        let query = tm.neq(lhs, rhs);

        let mut plain = Solver::new();
        let expected = plain.check_with(std::slice::from_ref(&query));
        assert_eq!(expected, CheckResult::Unsat);
        assert_eq!(plain.stats().portfolio_winner, None);
        assert_eq!(plain.portfolio_races(), 0);

        let mut lazy = Solver::new();
        lazy.set_portfolio(Some(PortfolioOptions::default()));
        assert_eq!(lazy.check_with(std::slice::from_ref(&query)), expected);
        assert_eq!(lazy.portfolio_races(), 0, "generous trigger must not race");

        let mut eager = Solver::new();
        eager.set_portfolio(Some(PortfolioOptions {
            members: 4,
            trigger_conflicts: 0,
        }));
        assert_eq!(eager.check_with(std::slice::from_ref(&query)), expected);
        assert_eq!(eager.portfolio_races(), 1, "zero trigger races immediately");
        assert!(eager.stats().portfolio_winner.is_some());
    }

    /// SAT verdicts from a forced race are genuine witnesses.
    #[test]
    fn portfolio_race_sat_models_satisfy_the_query() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(10));
        let y = tm.var("y", Sort::BitVec(10));
        let query = tm.eq(tm.bv_mul(x.clone(), y.clone()), tm.bv_const(391, 10));
        let mut solver = Solver::new();
        solver.set_portfolio(Some(PortfolioOptions {
            members: 3,
            trigger_conflicts: 0,
        }));
        match solver.check_with(std::slice::from_ref(&query)) {
            CheckResult::Sat(model) => assert!(model.eval(&query).as_bool()),
            CheckResult::Unsat => panic!("391 = 17 * 23 is expressible in 10 bits"),
        }
    }

    /// A budget-limited solve gives up cleanly and the solver stays usable.
    #[test]
    fn budgeted_solve_is_resumable() {
        use crate::sat::{SatResult, SatSolver};
        // Pigeonhole PHP(5,4): UNSAT and needs real search.
        let pigeons = 5;
        let holes = 4;
        let var = |p: usize, h: usize| (p * holes + h) as u32;
        let mut sat = SatSolver::new();
        for _ in 0..pigeons * holes {
            sat.new_var();
        }
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| Lit::positive(var(p, h))).collect();
            sat.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    sat.add_clause(&[Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
                }
            }
        }
        assert_eq!(
            sat.solve_limited(&[], Some(1), None),
            None,
            "budget of one conflict cannot finish PHP(5,4)"
        );
        // The interrupted instance resumes and still answers correctly.
        assert_eq!(sat.solve_limited(&[], None, None), Some(SatResult::Unsat));
    }

    #[test]
    fn boolean_variables_in_models() {
        let tm = TermManager::new();
        let mut solver = Solver::new();
        let p = tm.var("p", Sort::Bool);
        let q = tm.var("q", Sort::Bool);
        solver.assert(tm.and2(p.clone(), tm.not(q.clone())));
        match solver.check() {
            CheckResult::Sat(model) => {
                assert_eq!(model.get_bool("p"), Some(true));
                assert_eq!(model.get_bool("q"), Some(false));
            }
            CheckResult::Unsat => panic!("satisfiable"),
        }
    }
}
