//! Bit-blasting: lowering QF_BV terms to CNF over a [`SatSolver`].
//!
//! Every bit-vector term is represented by a vector of literals (LSB first),
//! every boolean term by a single literal.  Word-level operations are
//! expanded into standard gate encodings (Tseitin transformation): ripple
//! carry adders, shift-and-add multipliers, barrel shifters, and
//! lexicographic comparators.

use crate::sat::{Lit, SatSolver};
use crate::term::{TermKind, TermRef, VarName};
use std::collections::HashMap;

/// The CNF-level representation of a term.
#[derive(Debug, Clone)]
pub enum Repr {
    Bool(Lit),
    /// LSB-first literal vector.
    Bits(Vec<Lit>),
}

impl Repr {
    pub fn as_bool(&self) -> Lit {
        match self {
            Repr::Bool(lit) => *lit,
            Repr::Bits(bits) => {
                assert_eq!(bits.len(), 1, "boolean view of a multi-bit vector");
                bits[0]
            }
        }
    }

    pub fn as_bits(&self) -> &[Lit] {
        match self {
            Repr::Bits(bits) => bits,
            Repr::Bool(_) => panic!("bit-vector view of a boolean representation"),
        }
    }
}

/// The persistent state of a bit-blasting session: the term-to-CNF memo and
/// the variable map survive across [`BitBlaster`] instances (and therefore
/// across solver checks), so a chain of related queries — translation
/// validation of consecutive pass pairs, for example — lowers every shared
/// subterm exactly once.
#[derive(Debug, Default)]
pub struct BlastContext {
    /// Term id → (CNF representation, generation that first encoded it).
    cache: HashMap<u64, (Repr, u64)>,
    /// Variable name → CNF representation, used for model extraction.
    /// Keyed by the interned [`VarName`] so lookups hash a `u32`, not the
    /// spelling.
    vars: HashMap<VarName, Repr>,
    /// The literal fixed to true, allocated on first use.
    true_lit: Option<Lit>,
    /// Current generation; bumped by each [`BitBlaster`] session so cache
    /// hits against *earlier* sessions can be counted cheaply.
    generation: u64,
    /// Cache hits against encodings from earlier generations, this
    /// generation.
    cross_generation_hits: usize,
}

impl BlastContext {
    pub fn new() -> BlastContext {
        BlastContext::default()
    }

    /// The map from symbolic variable names to their CNF literals, for model
    /// extraction after a SAT result.
    pub fn variables(&self) -> &HashMap<VarName, Repr> {
        &self.vars
    }

    /// Number of memoised term encodings.
    pub fn memo_len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the term with this id already has a CNF encoding.
    pub fn is_memoised(&self, term_id: u64) -> bool {
        self.cache.contains_key(&term_id)
    }

    /// Cache hits in the current generation against encodings built by
    /// earlier generations — the incremental-reuse telemetry.
    pub fn cross_generation_hits(&self) -> usize {
        self.cross_generation_hits
    }
}

/// Lowers terms to CNF, sharing sub-term encodings via the id-keyed memo in
/// a (possibly long-lived) [`BlastContext`].
pub struct BitBlaster<'a> {
    sat: &'a mut SatSolver,
    ctx: &'a mut BlastContext,
}

impl<'a> BitBlaster<'a> {
    /// Resumes (or starts) a blasting session over `ctx`.  The context must
    /// always be paired with the same `sat` instance.  Each session starts a
    /// new generation, so reuse of earlier sessions' encodings is counted.
    pub fn new(sat: &'a mut SatSolver, ctx: &'a mut BlastContext) -> BitBlaster<'a> {
        if ctx.true_lit.is_none() {
            let true_var = sat.new_var();
            let true_lit = Lit::positive(true_var);
            sat.add_clause(&[true_lit]);
            ctx.true_lit = Some(true_lit);
        }
        ctx.generation += 1;
        ctx.cross_generation_hits = 0;
        BitBlaster { sat, ctx }
    }

    fn const_lit(&self, value: bool) -> Lit {
        if value {
            self.ctx.true_lit.expect("initialised in new")
        } else {
            self.ctx.true_lit.expect("initialised in new").negate()
        }
    }

    fn fresh(&mut self) -> Lit {
        Lit::positive(self.sat.new_var())
    }

    // ---- gates ---------------------------------------------------------

    fn and_gate(&mut self, inputs: &[Lit]) -> Lit {
        if inputs.is_empty() {
            return self.const_lit(true);
        }
        if inputs.len() == 1 {
            return inputs[0];
        }
        let out = self.fresh();
        let mut long_clause = vec![out];
        for &input in inputs {
            self.sat.add_clause(&[out.negate(), input]);
            long_clause.push(input.negate());
        }
        self.sat.add_clause(&long_clause);
        out
    }

    fn or_gate(&mut self, inputs: &[Lit]) -> Lit {
        if inputs.is_empty() {
            return self.const_lit(false);
        }
        if inputs.len() == 1 {
            return inputs[0];
        }
        let out = self.fresh();
        let mut long_clause = vec![out.negate()];
        for &input in inputs {
            self.sat.add_clause(&[input.negate(), out]);
            long_clause.push(input);
        }
        self.sat.add_clause(&long_clause);
        out
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.fresh();
        self.sat.add_clause(&[a.negate(), b.negate(), out.negate()]);
        self.sat.add_clause(&[a, b, out.negate()]);
        self.sat.add_clause(&[a, b.negate(), out]);
        self.sat.add_clause(&[a.negate(), b, out]);
        out
    }

    fn iff_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor_gate(a, b).negate()
    }

    fn ite_gate(&mut self, cond: Lit, then_lit: Lit, else_lit: Lit) -> Lit {
        let out = self.fresh();
        self.sat
            .add_clause(&[cond.negate(), then_lit.negate(), out]);
        self.sat
            .add_clause(&[cond.negate(), then_lit, out.negate()]);
        self.sat.add_clause(&[cond, else_lit.negate(), out]);
        self.sat.add_clause(&[cond, else_lit, out.negate()]);
        out
    }

    fn majority_gate(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and_gate(&[a, b]);
        let ac = self.and_gate(&[a, c]);
        let bc = self.and_gate(&[b, c]);
        self.or_gate(&[ab, ac, bc])
    }

    // ---- word-level circuits --------------------------------------------

    fn adder(&mut self, a: &[Lit], b: &[Lit], carry_in: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        let mut carry = carry_in;
        for i in 0..a.len() {
            let axb = self.xor_gate(a[i], b[i]);
            let sum = self.xor_gate(axb, carry);
            let cout = self.majority_gate(a[i], b[i], carry);
            out.push(sum);
            carry = cout;
        }
        out
    }

    fn negate_bits(&self, bits: &[Lit]) -> Vec<Lit> {
        bits.iter().map(|l| l.negate()).collect()
    }

    fn subtractor(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let not_b = self.negate_bits(b);
        self.adder(a, &not_b, self.const_lit(true))
    }

    fn multiplier(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let width = a.len();
        let mut acc: Vec<Lit> = vec![self.const_lit(false); width];
        for (i, &b_bit) in b.iter().enumerate().take(width) {
            // Partial product: (a << i) AND-ed with b[i], truncated to width.
            let mut partial = Vec::with_capacity(width);
            for j in 0..width {
                if j < i {
                    partial.push(self.const_lit(false));
                } else {
                    partial.push(self.and_gate(&[a[j - i], b_bit]));
                }
            }
            acc = self.adder(&acc, &partial, self.const_lit(false));
        }
        acc
    }

    /// Barrel shifter.  `left = true` shifts towards the MSB.
    fn shifter(&mut self, a: &[Lit], amount: &[Lit], left: bool) -> Vec<Lit> {
        let width = a.len();
        let mut current: Vec<Lit> = a.to_vec();
        for (stage, &sel) in amount.iter().enumerate() {
            // Shifting by 2^stage; anything >= width zeroes the result.
            let shift = 1usize.checked_shl(stage as u32).unwrap_or(usize::MAX);
            let shifted: Vec<Lit> = (0..width)
                .map(|i| {
                    let source = if left {
                        if shift <= i {
                            Some(i - shift)
                        } else {
                            None
                        }
                    } else {
                        i.checked_add(shift).filter(|&s| s < width)
                    };
                    match source {
                        Some(s) => current[s],
                        None => self.const_lit(false),
                    }
                })
                .collect();
            current = (0..width)
                .map(|i| self.ite_gate(sel, shifted[i], current[i]))
                .collect();
        }
        current
    }

    fn equal_bits(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let per_bit: Vec<Lit> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| self.iff_gate(x, y))
            .collect();
        self.and_gate(&per_bit)
    }

    fn unsigned_less_than(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // Process from LSB to MSB: acc' = (¬a_i ∧ b_i) ∨ ((a_i ≡ b_i) ∧ acc)
        let mut acc = self.const_lit(false);
        for i in 0..a.len() {
            let strictly = self.and_gate(&[a[i].negate(), b[i]]);
            let equal = self.iff_gate(a[i], b[i]);
            let carry = self.and_gate(&[equal, acc]);
            acc = self.or_gate(&[strictly, carry]);
        }
        acc
    }

    fn signed_less_than(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let width = a.len();
        if width == 0 {
            return self.const_lit(false);
        }
        let a_sign = a[width - 1];
        let b_sign = b[width - 1];
        let ult = self.unsigned_less_than(a, b);
        let neg_pos = self.and_gate(&[a_sign, b_sign.negate()]);
        let same_sign = self.iff_gate(a_sign, b_sign);
        let same_and_ult = self.and_gate(&[same_sign, ult]);
        self.or_gate(&[neg_pos, same_and_ult])
    }

    // ---- term lowering ---------------------------------------------------

    /// Lowers a term to its CNF representation.
    pub fn blast(&mut self, term: &TermRef) -> Repr {
        if let Some((repr, generation)) = self.ctx.cache.get(&term.id) {
            if *generation < self.ctx.generation {
                self.ctx.cross_generation_hits += 1;
            }
            return repr.clone();
        }
        let repr = self.blast_uncached(term);
        self.ctx
            .cache
            .insert(term.id, (repr.clone(), self.ctx.generation));
        repr
    }

    fn blast_bits(&mut self, term: &TermRef) -> Vec<Lit> {
        match self.blast(term) {
            Repr::Bits(bits) => bits,
            Repr::Bool(lit) => vec![lit],
        }
    }

    fn blast_bool(&mut self, term: &TermRef) -> Lit {
        match self.blast(term) {
            Repr::Bool(lit) => lit,
            Repr::Bits(bits) => {
                assert_eq!(bits.len(), 1, "boolean context requires a 1-bit value");
                bits[0]
            }
        }
    }

    fn blast_uncached(&mut self, term: &TermRef) -> Repr {
        match &term.kind {
            TermKind::BoolConst(b) => Repr::Bool(self.const_lit(*b)),
            TermKind::BvConst(v) => {
                let bits = (0..v.width()).map(|i| self.const_lit(v.bit(i))).collect();
                Repr::Bits(bits)
            }
            TermKind::Var(name) => {
                if let Some(repr) = self.ctx.vars.get(name) {
                    return repr.clone();
                }
                let repr = match term.sort {
                    crate::term::Sort::Bool => Repr::Bool(self.fresh()),
                    crate::term::Sort::BitVec(w) => {
                        Repr::Bits((0..w).map(|_| self.fresh()).collect())
                    }
                };
                self.ctx.vars.insert(name.clone(), repr.clone());
                repr
            }
            TermKind::Not(a) => Repr::Bool(self.blast_bool(a).negate()),
            TermKind::And(args) => {
                let lits: Vec<Lit> = args.iter().map(|a| self.blast_bool(a)).collect();
                Repr::Bool(self.and_gate(&lits))
            }
            TermKind::Or(args) => {
                let lits: Vec<Lit> = args.iter().map(|a| self.blast_bool(a)).collect();
                Repr::Bool(self.or_gate(&lits))
            }
            TermKind::Implies(a, b) => {
                let la = self.blast_bool(a);
                let lb = self.blast_bool(b);
                Repr::Bool(self.or_gate(&[la.negate(), lb]))
            }
            TermKind::Eq(a, b) => {
                let repr_a = self.blast(a);
                let repr_b = self.blast(b);
                match (repr_a, repr_b) {
                    (Repr::Bool(x), Repr::Bool(y)) => Repr::Bool(self.iff_gate(x, y)),
                    (ra, rb) => {
                        let (x, y) = (ra_bits(&ra), ra_bits(&rb));
                        Repr::Bool(self.equal_bits(&x, &y))
                    }
                }
            }
            TermKind::Ite(c, t, e) => {
                let cond = self.blast_bool(c);
                match (self.blast(t), self.blast(e)) {
                    (Repr::Bool(x), Repr::Bool(y)) => Repr::Bool(self.ite_gate(cond, x, y)),
                    (rt, re) => {
                        let (x, y) = (ra_bits(&rt), ra_bits(&re));
                        assert_eq!(x.len(), y.len(), "ite branch widths differ");
                        let bits = (0..x.len())
                            .map(|i| self.ite_gate(cond, x[i], y[i]))
                            .collect();
                        Repr::Bits(bits)
                    }
                }
            }
            TermKind::BvAdd(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                let zero = self.const_lit(false);
                Repr::Bits(self.adder(&x, &y, zero))
            }
            TermKind::BvSub(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bits(self.subtractor(&x, &y))
            }
            TermKind::BvMul(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bits(self.multiplier(&x, &y))
            }
            TermKind::BvAnd(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bits((0..x.len()).map(|i| self.and_gate(&[x[i], y[i]])).collect())
            }
            TermKind::BvOr(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bits((0..x.len()).map(|i| self.or_gate(&[x[i], y[i]])).collect())
            }
            TermKind::BvXor(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bits((0..x.len()).map(|i| self.xor_gate(x[i], y[i])).collect())
            }
            TermKind::BvNot(a) => {
                let x = self.blast_bits(a);
                Repr::Bits(self.negate_bits(&x))
            }
            TermKind::BvNeg(a) => {
                let x = self.blast_bits(a);
                let zero: Vec<Lit> = vec![self.const_lit(false); x.len()];
                Repr::Bits(self.subtractor(&zero, &x))
            }
            TermKind::BvShl(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bits(self.shifter(&x, &y, true))
            }
            TermKind::BvLshr(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bits(self.shifter(&x, &y, false))
            }
            TermKind::BvUlt(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bool(self.unsigned_less_than(&x, &y))
            }
            TermKind::BvUle(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                let gt = self.unsigned_less_than(&y, &x);
                Repr::Bool(gt.negate())
            }
            TermKind::BvSlt(a, b) => {
                let (x, y) = (self.blast_bits(a), self.blast_bits(b));
                Repr::Bool(self.signed_less_than(&x, &y))
            }
            TermKind::Concat(hi, lo) => {
                let (hi_bits, lo_bits) = (self.blast_bits(hi), self.blast_bits(lo));
                let mut bits = lo_bits;
                bits.extend(hi_bits);
                Repr::Bits(bits)
            }
            TermKind::Extract { hi, lo, arg } => {
                let bits = self.blast_bits(arg);
                Repr::Bits(bits[*lo as usize..=*hi as usize].to_vec())
            }
            TermKind::ZeroExtend { arg, width } => {
                let mut bits = self.blast_bits(arg);
                bits.resize(*width as usize, self.const_lit(false));
                Repr::Bits(bits)
            }
            TermKind::SignExtend { arg, width } => {
                let mut bits = self.blast_bits(arg);
                let sign = bits.last().copied().unwrap_or(self.const_lit(false));
                bits.resize(*width as usize, sign);
                Repr::Bits(bits)
            }
        }
    }

    /// Asserts a boolean term as a top-level constraint.
    pub fn assert(&mut self, term: &TermRef) {
        let lit = self.blast_bool(term);
        self.sat.add_clause(&[lit]);
    }
}

fn ra_bits(repr: &Repr) -> Vec<Lit> {
    match repr {
        Repr::Bits(bits) => bits.clone(),
        Repr::Bool(lit) => vec![*lit],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use crate::term::{Sort, TermManager};
    use crate::value::BvValue;

    fn solve_assertion(tm: &TermManager, term: &TermRef) -> Option<Vec<(String, BvValue)>> {
        let _ = tm;
        let mut sat = SatSolver::new();
        let mut ctx = BlastContext::new();
        let mut blaster = BitBlaster::new(&mut sat, &mut ctx);
        blaster.assert(term);
        let vars: Vec<(String, Repr)> = ctx
            .variables()
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        match sat.solve() {
            SatResult::Sat(model) => {
                let mut out = Vec::new();
                for (name, repr) in vars {
                    if let Repr::Bits(bits) = repr {
                        let value = BvValue::from_bits(
                            bits.iter()
                                .map(|l| model[l.var() as usize] ^ l.is_negated())
                                .collect(),
                        );
                        out.push((name, value));
                    }
                }
                Some(out)
            }
            SatResult::Unsat => None,
        }
    }

    #[test]
    fn addition_model_is_correct() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let constraint = tm.eq(
            tm.bv_add(x.clone(), tm.bv_const(13, 8)),
            tm.bv_const(200, 8),
        );
        let model = solve_assertion(&tm, &constraint).expect("satisfiable");
        let x_value = model.iter().find(|(n, _)| n == "x").unwrap().1.to_u128();
        assert_eq!(x_value, 187);
    }

    #[test]
    fn unsatisfiable_arithmetic() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        // x + 1 == x is unsatisfiable for bit-vectors.
        let constraint = tm.eq(tm.bv_add(x.clone(), tm.bv_const(1, 8)), x.clone());
        assert!(solve_assertion(&tm, &constraint).is_none());
    }

    #[test]
    fn multiplication_factors() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        // x * y == 35 with x, y > 1: the only factorisations are {5, 7}.
        let constraint = tm.and(vec![
            tm.eq(tm.bv_mul(x.clone(), y.clone()), tm.bv_const(35, 8)),
            tm.bv_ult(tm.bv_const(1, 8), x.clone()),
            tm.bv_ult(tm.bv_const(1, 8), y.clone()),
            tm.bv_ult(x.clone(), tm.bv_const(16, 8)),
            tm.bv_ult(y.clone(), tm.bv_const(16, 8)),
        ]);
        let model = solve_assertion(&tm, &constraint).expect("satisfiable");
        let x_value = model.iter().find(|(n, _)| n == "x").unwrap().1.to_u128();
        let y_value = model.iter().find(|(n, _)| n == "y").unwrap().1.to_u128();
        assert_eq!(x_value * y_value, 35);
    }

    #[test]
    fn shift_semantics_match_zero_fill() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        // (x << 9) != 0 is unsatisfiable: shifting an 8-bit value by 9 gives 0.
        let shifted = tm.bv_shl(x.clone(), tm.var("s", Sort::BitVec(8)));
        let constraint = tm.and(vec![
            tm.eq(tm.var("s", Sort::BitVec(8)), tm.bv_const(9, 8)),
            tm.neq(shifted, tm.bv_const(0, 8)),
        ]);
        // Note: the two `s` vars are distinct term objects but share a name,
        // so the blaster unifies them through the variable map.
        assert!(solve_assertion(&tm, &constraint).is_none());
    }

    #[test]
    fn comparison_and_ite() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let branch = tm.ite(
            tm.bv_ult(x.clone(), tm.bv_const(100, 8)),
            tm.bv_const(1, 8),
            tm.bv_const(2, 8),
        );
        // branch == 2 forces x >= 100.
        let constraint = tm.eq(branch, tm.bv_const(2, 8));
        let model = solve_assertion(&tm, &constraint).expect("satisfiable");
        let x_value = model.iter().find(|(n, _)| n == "x").unwrap().1.to_u128();
        assert!(x_value >= 100);
    }

    #[test]
    fn concat_extract_roundtrip_constraint() {
        let tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let b = tm.var("b", Sort::BitVec(8));
        let cat = tm.concat(a.clone(), b.clone());
        // Extracting the halves of the concatenation differing from the
        // originals is unsatisfiable.
        let hi = tm.extract(15, 8, cat.clone());
        let lo = tm.extract(7, 0, cat);
        let constraint = tm.or2(tm.neq(hi, a), tm.neq(lo, b));
        assert!(solve_assertion(&tm, &constraint).is_none());
    }

    #[test]
    fn signed_comparison() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        // x <s 0 and x >u 127 are the same set; their difference is empty.
        let neg = tm.bv_slt(x.clone(), tm.bv_const(0, 8));
        let high = tm.bv_ult(tm.bv_const(127, 8), x.clone());
        let constraint = tm.neq(neg, high);
        assert!(solve_assertion(&tm, &constraint).is_none());
    }
}
