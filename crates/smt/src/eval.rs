//! Concrete evaluation of terms under a variable assignment.
//!
//! Used to validate models returned by the SAT-based solver, by property
//! tests that compare the solver against brute force, and by the concrete
//! packet targets when they replay symbolic outputs.

use crate::term::{TermKind, TermRef};
use crate::value::BvValue;
use std::collections::HashMap;

/// A concrete value: either a boolean or a bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Bool(bool),
    Bv(BvValue),
}

impl Value {
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Bv(v) => !v.is_zero(),
        }
    }

    pub fn as_bv(&self) -> BvValue {
        match self {
            Value::Bool(b) => BvValue::from_u128(u128::from(*b), 1),
            Value::Bv(v) => v.clone(),
        }
    }

    pub fn bv(value: u128, width: u32) -> Value {
        Value::Bv(BvValue::from_u128(value, width))
    }
}

/// A mapping from variable name to concrete value.
pub type Assignment = HashMap<String, Value>;

/// Errors during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no value in the assignment.
    UnboundVariable(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable {name}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `term` under `assignment`.  Unbound variables are an error so
/// callers can distinguish "don't care" inputs from genuine bugs; use
/// [`eval_with_default`] when unbound variables should default to zero.
pub fn eval(term: &TermRef, assignment: &Assignment) -> Result<Value, EvalError> {
    let mut cache: HashMap<u64, Value> = HashMap::new();
    eval_inner(term, assignment, false, &mut cache)
}

/// Like [`eval`], but unbound variables evaluate to zero/false (the policy
/// BMv2 applies to undefined values; paper §6.2).
pub fn eval_with_default(term: &TermRef, assignment: &Assignment) -> Value {
    let mut cache: HashMap<u64, Value> = HashMap::new();
    eval_inner(term, assignment, true, &mut cache).expect("defaulting evaluation cannot fail")
}

fn eval_inner(
    term: &TermRef,
    assignment: &Assignment,
    default_unbound: bool,
    cache: &mut HashMap<u64, Value>,
) -> Result<Value, EvalError> {
    if let Some(value) = cache.get(&term.id) {
        return Ok(value.clone());
    }
    let rec = |t: &TermRef, cache: &mut HashMap<u64, Value>| {
        eval_inner(t, assignment, default_unbound, cache)
    };
    let value = match &term.kind {
        TermKind::BoolConst(b) => Value::Bool(*b),
        TermKind::BvConst(v) => Value::Bv(v.clone()),
        TermKind::Var(name) => match assignment.get(name.as_str()) {
            Some(value) => {
                // Normalise widths: a model may store a narrower value.
                match (&value, term.sort) {
                    (Value::Bv(v), crate::term::Sort::BitVec(w)) if v.width() != w => {
                        Value::Bv(v.resize(w))
                    }
                    _ => value.clone(),
                }
            }
            None if default_unbound => match term.sort {
                crate::term::Sort::Bool => Value::Bool(false),
                crate::term::Sort::BitVec(w) => Value::Bv(BvValue::zero(w)),
            },
            None => return Err(EvalError::UnboundVariable(name.to_string())),
        },
        TermKind::Not(a) => Value::Bool(!rec(a, cache)?.as_bool()),
        TermKind::And(args) => {
            let mut result = true;
            for a in args {
                result &= rec(a, cache)?.as_bool();
            }
            Value::Bool(result)
        }
        TermKind::Or(args) => {
            let mut result = false;
            for a in args {
                result |= rec(a, cache)?.as_bool();
            }
            Value::Bool(result)
        }
        TermKind::Implies(a, b) => {
            Value::Bool(!rec(a, cache)?.as_bool() || rec(b, cache)?.as_bool())
        }
        TermKind::Eq(a, b) => {
            let (va, vb) = (rec(a, cache)?, rec(b, cache)?);
            match (va, vb) {
                (Value::Bool(x), Value::Bool(y)) => Value::Bool(x == y),
                (x, y) => Value::Bool(x.as_bv() == y.as_bv()),
            }
        }
        TermKind::Ite(c, t, e) => {
            if rec(c, cache)?.as_bool() {
                rec(t, cache)?
            } else {
                rec(e, cache)?
            }
        }
        TermKind::BvAdd(a, b) => Value::Bv(rec(a, cache)?.as_bv().add(&rec(b, cache)?.as_bv())),
        TermKind::BvSub(a, b) => Value::Bv(rec(a, cache)?.as_bv().sub(&rec(b, cache)?.as_bv())),
        TermKind::BvMul(a, b) => Value::Bv(rec(a, cache)?.as_bv().mul(&rec(b, cache)?.as_bv())),
        TermKind::BvAnd(a, b) => Value::Bv(rec(a, cache)?.as_bv().bitand(&rec(b, cache)?.as_bv())),
        TermKind::BvOr(a, b) => Value::Bv(rec(a, cache)?.as_bv().bitor(&rec(b, cache)?.as_bv())),
        TermKind::BvXor(a, b) => Value::Bv(rec(a, cache)?.as_bv().bitxor(&rec(b, cache)?.as_bv())),
        TermKind::BvNot(a) => Value::Bv(rec(a, cache)?.as_bv().bitnot()),
        TermKind::BvNeg(a) => Value::Bv(rec(a, cache)?.as_bv().neg()),
        TermKind::BvShl(a, b) => {
            let amount = rec(b, cache)?.as_bv().to_u128().min(1024) as u32;
            Value::Bv(rec(a, cache)?.as_bv().shl(amount))
        }
        TermKind::BvLshr(a, b) => {
            let amount = rec(b, cache)?.as_bv().to_u128().min(1024) as u32;
            Value::Bv(rec(a, cache)?.as_bv().lshr(amount))
        }
        TermKind::BvUlt(a, b) => Value::Bool(rec(a, cache)?.as_bv().ult(&rec(b, cache)?.as_bv())),
        TermKind::BvUle(a, b) => Value::Bool(!rec(b, cache)?.as_bv().ult(&rec(a, cache)?.as_bv())),
        TermKind::BvSlt(a, b) => Value::Bool(rec(a, cache)?.as_bv().slt(&rec(b, cache)?.as_bv())),
        TermKind::Concat(a, b) => Value::Bv(rec(a, cache)?.as_bv().concat(&rec(b, cache)?.as_bv())),
        TermKind::Extract { hi, lo, arg } => Value::Bv(rec(arg, cache)?.as_bv().extract(*hi, *lo)),
        TermKind::ZeroExtend { arg, width } => Value::Bv(rec(arg, cache)?.as_bv().resize(*width)),
        TermKind::SignExtend { arg, width } => {
            Value::Bv(rec(arg, cache)?.as_bv().sign_extend(*width))
        }
    };
    cache.insert(term.id, value.clone());
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Sort, TermManager};

    #[test]
    fn evaluates_arithmetic() {
        let tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let b = tm.var("b", Sort::BitVec(8));
        let expr = tm.bv_add(tm.bv_mul(a.clone(), tm.bv_const(3, 8)), b.clone());
        let mut env = Assignment::new();
        env.insert("a".into(), Value::bv(10, 8));
        env.insert("b".into(), Value::bv(5, 8));
        assert_eq!(eval(&expr, &env).unwrap(), Value::bv(35, 8));
    }

    #[test]
    fn evaluates_ite_and_comparison() {
        let tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let expr = tm.ite(
            tm.bv_ult(a.clone(), tm.bv_const(10, 8)),
            tm.bv_const(1, 8),
            tm.bv_const(2, 8),
        );
        let mut env = Assignment::new();
        env.insert("a".into(), Value::bv(3, 8));
        assert_eq!(eval(&expr, &env).unwrap(), Value::bv(1, 8));
        env.insert("a".into(), Value::bv(200, 8));
        assert_eq!(eval(&expr, &env).unwrap(), Value::bv(2, 8));
    }

    #[test]
    fn unbound_variable_is_an_error_or_defaults() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(16));
        let env = Assignment::new();
        assert_eq!(eval(&x, &env), Err(EvalError::UnboundVariable("x".into())));
        assert_eq!(eval_with_default(&x, &env), Value::bv(0, 16));
    }

    #[test]
    fn width_mismatched_assignment_is_resized() {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(16));
        let mut env = Assignment::new();
        env.insert("x".into(), Value::bv(0xff, 8));
        assert_eq!(eval(&x, &env).unwrap(), Value::bv(0xff, 16));
    }

    #[test]
    fn boolean_connectives() {
        let tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let q = tm.var("q", Sort::Bool);
        let formula = tm.implies(p.clone(), tm.or2(q.clone(), tm.not(p.clone())));
        let mut env = Assignment::new();
        env.insert("p".into(), Value::Bool(true));
        env.insert("q".into(), Value::Bool(false));
        assert_eq!(eval(&formula, &env).unwrap(), Value::Bool(false));
        env.insert("q".into(), Value::Bool(true));
        assert_eq!(eval(&formula, &env).unwrap(), Value::Bool(true));
    }
}
