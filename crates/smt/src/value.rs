//! Concrete bit-vector values of arbitrary width.
//!
//! Values are stored LSB-first as a vector of booleans.  Program-level bit
//! widths in the P4 subset are small (≤ 128 for scalars, a few hundred for
//! whole packets), so the simple representation is more than fast enough and
//! keeps the arithmetic code obviously correct.

use std::fmt;

/// A concrete bit vector (LSB first).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BvValue {
    bits: Vec<bool>,
}

impl BvValue {
    /// A zero value of the given width.
    pub fn zero(width: u32) -> BvValue {
        BvValue {
            bits: vec![false; width as usize],
        }
    }

    /// Builds a value from the low `width` bits of `value`.
    pub fn from_u128(value: u128, width: u32) -> BvValue {
        let mut bits = Vec::with_capacity(width as usize);
        for i in 0..width {
            if i < 128 {
                bits.push((value >> i) & 1 == 1);
            } else {
                bits.push(false);
            }
        }
        BvValue { bits }
    }

    /// Builds a value from an explicit LSB-first bit vector.
    pub fn from_bits(bits: Vec<bool>) -> BvValue {
        BvValue { bits }
    }

    pub fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    pub fn bit(&self, i: u32) -> bool {
        self.bits.get(i as usize).copied().unwrap_or(false)
    }

    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// `Some(k)` when the value is exactly `2^k` (a single set bit).
    pub fn single_bit_position(&self) -> Option<u32> {
        let mut position = None;
        for (i, &bit) in self.bits.iter().enumerate() {
            if bit {
                if position.is_some() {
                    return None;
                }
                position = Some(i as u32);
            }
        }
        position
    }

    /// Interprets the value as an unsigned integer; panics if wider than
    /// 128 bits and any high bit is set.
    pub fn to_u128(&self) -> u128 {
        let mut out = 0u128;
        for (i, &bit) in self.bits.iter().enumerate() {
            if bit {
                assert!(i < 128, "BvValue::to_u128 on a value wider than 128 bits");
                out |= 1u128 << i;
            }
        }
        out
    }

    /// Interprets the value as a signed (two's complement) integer.
    pub fn to_i128(&self) -> i128 {
        if self.bits.is_empty() {
            return 0;
        }
        let unsigned = self.to_u128();
        let width = self.width();
        if width < 128 && self.bit(width - 1) {
            (unsigned as i128) - (1i128 << width)
        } else {
            unsigned as i128
        }
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&b| !b)
    }

    /// Truncates or zero-extends to `width`.
    pub fn resize(&self, width: u32) -> BvValue {
        let mut bits = self.bits.clone();
        bits.resize(width as usize, false);
        BvValue { bits }
    }

    /// Sign-extends to `width` (which must be >= current width).
    pub fn sign_extend(&self, width: u32) -> BvValue {
        let sign = self.bits.last().copied().unwrap_or(false);
        let mut bits = self.bits.clone();
        bits.resize(width as usize, sign);
        BvValue { bits }
    }

    /// Extracts bits `[hi:lo]` inclusive.
    pub fn extract(&self, hi: u32, lo: u32) -> BvValue {
        assert!(hi >= lo, "extract with hi < lo");
        let bits = (lo..=hi).map(|i| self.bit(i)).collect();
        BvValue { bits }
    }

    /// Concatenation: `self` provides the high bits, `low` the low bits
    /// (matching SMT-LIB `concat hi lo`).
    pub fn concat(&self, low: &BvValue) -> BvValue {
        let mut bits = low.bits.clone();
        bits.extend_from_slice(&self.bits);
        BvValue { bits }
    }

    fn binary_wrapping<F>(&self, other: &BvValue, f: F) -> BvValue
    where
        F: Fn(u128, u128) -> u128,
    {
        let width = self.width().max(other.width());
        assert!(
            width <= 128,
            "wide arithmetic must go through the bit-blaster"
        );
        let result = f(self.resize(width).to_u128(), other.resize(width).to_u128());
        BvValue::from_u128(result, width)
    }

    pub fn add(&self, other: &BvValue) -> BvValue {
        self.binary_wrapping(other, |a, b| a.wrapping_add(b))
    }

    pub fn sub(&self, other: &BvValue) -> BvValue {
        self.binary_wrapping(other, |a, b| a.wrapping_sub(b))
    }

    pub fn mul(&self, other: &BvValue) -> BvValue {
        self.binary_wrapping(other, |a, b| a.wrapping_mul(b))
    }

    pub fn sat_add(&self, other: &BvValue) -> BvValue {
        let width = self.width().max(other.width());
        let max = if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        self.binary_wrapping(other, |a, b| a.checked_add(b).map_or(max, |s| s.min(max)))
    }

    pub fn sat_sub(&self, other: &BvValue) -> BvValue {
        self.binary_wrapping(other, |a, b| a.saturating_sub(b))
    }

    pub fn bitand(&self, other: &BvValue) -> BvValue {
        let width = self.width().max(other.width());
        let bits = (0..width).map(|i| self.bit(i) && other.bit(i)).collect();
        BvValue { bits }
    }

    pub fn bitor(&self, other: &BvValue) -> BvValue {
        let width = self.width().max(other.width());
        let bits = (0..width).map(|i| self.bit(i) || other.bit(i)).collect();
        BvValue { bits }
    }

    pub fn bitxor(&self, other: &BvValue) -> BvValue {
        let width = self.width().max(other.width());
        let bits = (0..width).map(|i| self.bit(i) ^ other.bit(i)).collect();
        BvValue { bits }
    }

    pub fn bitnot(&self) -> BvValue {
        BvValue {
            bits: self.bits.iter().map(|&b| !b).collect(),
        }
    }

    pub fn neg(&self) -> BvValue {
        BvValue::zero(self.width()).sub(self)
    }

    /// Logical left shift by `amount` bit positions.
    pub fn shl(&self, amount: u32) -> BvValue {
        let width = self.width();
        let bits = (0..width)
            .map(|i| {
                if i >= amount {
                    self.bit(i - amount)
                } else {
                    false
                }
            })
            .collect();
        BvValue { bits }
    }

    /// Logical right shift by `amount` bit positions.
    pub fn lshr(&self, amount: u32) -> BvValue {
        let width = self.width();
        let bits = (0..width).map(|i| self.bit(i + amount)).collect();
        BvValue { bits }
    }

    /// Unsigned less-than.
    pub fn ult(&self, other: &BvValue) -> bool {
        let width = self.width().max(other.width());
        for i in (0..width).rev() {
            let (a, b) = (self.bit(i), other.bit(i));
            if a != b {
                return b;
            }
        }
        false
    }

    /// Signed less-than.
    pub fn slt(&self, other: &BvValue) -> bool {
        self.to_i128() < other.to_i128()
    }
}

impl fmt::Debug for BvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width() <= 128 {
            write!(f, "{}w{}", self.width(), self.to_u128())
        } else {
            write!(f, "{}w<wide>", self.width())
        }
    }
}

impl fmt::Display for BvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u128() {
        let v = BvValue::from_u128(0xdead, 16);
        assert_eq!(v.to_u128(), 0xdead);
        assert_eq!(v.width(), 16);
        assert_eq!(BvValue::from_u128(0x1ff, 8).to_u128(), 0xff);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(BvValue::from_u128(0xff, 8).to_i128(), -1);
        assert_eq!(BvValue::from_u128(0x7f, 8).to_i128(), 127);
        assert_eq!(BvValue::from_u128(0x80, 8).to_i128(), -128);
    }

    #[test]
    fn arithmetic_wraps() {
        let a = BvValue::from_u128(250, 8);
        let b = BvValue::from_u128(10, 8);
        assert_eq!(a.add(&b).to_u128(), 4);
        assert_eq!(b.sub(&a).to_u128(), 16);
        assert_eq!(a.mul(&b).to_u128(), (250u32 * 10 % 256) as u128);
    }

    #[test]
    fn saturating_arithmetic() {
        let a = BvValue::from_u128(250, 8);
        let b = BvValue::from_u128(10, 8);
        assert_eq!(a.sat_add(&b).to_u128(), 255);
        assert_eq!(b.sat_sub(&a).to_u128(), 0);
    }

    #[test]
    fn shifts() {
        let v = BvValue::from_u128(0b1011, 8);
        assert_eq!(v.shl(2).to_u128(), 0b101100);
        assert_eq!(v.lshr(1).to_u128(), 0b101);
        assert_eq!(v.shl(9).to_u128(), 0);
    }

    #[test]
    fn comparisons() {
        let a = BvValue::from_u128(5, 8);
        let b = BvValue::from_u128(200, 8);
        assert!(a.ult(&b));
        assert!(!b.ult(&a));
        // 200 as int<8> is negative.
        assert!(b.slt(&a));
    }

    #[test]
    fn extract_and_concat() {
        let v = BvValue::from_u128(0xabcd, 16);
        assert_eq!(v.extract(15, 8).to_u128(), 0xab);
        assert_eq!(v.extract(7, 0).to_u128(), 0xcd);
        let hi = BvValue::from_u128(0xab, 8);
        let lo = BvValue::from_u128(0xcd, 8);
        assert_eq!(hi.concat(&lo).to_u128(), 0xabcd);
    }

    #[test]
    fn wide_values() {
        // 136-bit value: wider than u128, still representable bit-wise.
        let mut bits = vec![false; 136];
        bits[135] = true;
        let v = BvValue::from_bits(bits);
        assert_eq!(v.width(), 136);
        assert_eq!(v.extract(135, 128).to_u128(), 0x80);
        assert!(v.extract(127, 0).is_zero());
    }

    #[test]
    fn negation_and_complement() {
        let v = BvValue::from_u128(1, 8);
        assert_eq!(v.neg().to_u128(), 0xff);
        assert_eq!(v.bitnot().to_u128(), 0xfe);
    }
}
