//! Property-based tests for the SMT stack: the solver must agree with brute
//! force / the concrete evaluator on randomly generated formulas, and the
//! bit-vector value type must satisfy the usual algebraic laws.

use proptest::prelude::*;
use smt::{eval, Assignment, BvValue, CheckResult, Solver, Sort, TermManager, TermRef, Value};

// ---------------------------------------------------------------------------
// BvValue algebraic laws.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn addition_is_commutative_and_wraps(a in any::<u64>(), b in any::<u64>(), width in 1u32..64) {
        let x = BvValue::from_u128(u128::from(a), width);
        let y = BvValue::from_u128(u128::from(b), width);
        prop_assert_eq!(x.add(&y), y.add(&x));
        let modulus = 1u128 << width;
        prop_assert_eq!(x.add(&y).to_u128(), (u128::from(a) % modulus + u128::from(b) % modulus) % modulus);
    }

    #[test]
    fn subtraction_inverts_addition(a in any::<u64>(), b in any::<u64>(), width in 1u32..64) {
        let x = BvValue::from_u128(u128::from(a), width);
        let y = BvValue::from_u128(u128::from(b), width);
        prop_assert_eq!(x.add(&y).sub(&y), x);
    }

    #[test]
    fn complement_is_involutive_and_xor_self_is_zero(a in any::<u64>(), width in 1u32..64) {
        let x = BvValue::from_u128(u128::from(a), width);
        prop_assert_eq!(x.bitnot().bitnot(), x.clone());
        prop_assert!(x.bitxor(&x).is_zero());
    }

    #[test]
    fn concat_then_extract_recovers_parts(a in any::<u32>(), b in any::<u32>(), wa in 1u32..32, wb in 1u32..32) {
        let hi = BvValue::from_u128(u128::from(a), wa);
        let lo = BvValue::from_u128(u128::from(b), wb);
        let cat = hi.concat(&lo);
        prop_assert_eq!(cat.width(), wa + wb);
        prop_assert_eq!(cat.extract(wa + wb - 1, wb), hi);
        prop_assert_eq!(cat.extract(wb - 1, 0), lo);
    }

    #[test]
    fn unsigned_comparison_matches_integers(a in any::<u32>(), b in any::<u32>(), width in 1u32..32) {
        let mask = (1u64 << width) - 1;
        let x = BvValue::from_u128(u128::from(u64::from(a) & mask), width);
        let y = BvValue::from_u128(u128::from(u64::from(b) & mask), width);
        prop_assert_eq!(x.ult(&y), (u64::from(a) & mask) < (u64::from(b) & mask));
    }

    #[test]
    fn saturating_add_never_wraps(a in any::<u16>(), b in any::<u16>()) {
        let x = BvValue::from_u128(u128::from(a), 16);
        let y = BvValue::from_u128(u128::from(b), 16);
        let sat = x.sat_add(&y).to_u128();
        prop_assert_eq!(sat, (u128::from(a) + u128::from(b)).min(0xffff));
    }
}

// ---------------------------------------------------------------------------
// Solver vs. the term evaluator on random formulas over two 6-bit variables.
// ---------------------------------------------------------------------------

/// A tiny expression language we can both build as terms and evaluate by
/// brute force over all assignments of two 6-bit variables.
#[derive(Debug, Clone)]
enum MiniExpr {
    VarX,
    VarY,
    Const(u8),
    Add(Box<MiniExpr>, Box<MiniExpr>),
    Xor(Box<MiniExpr>, Box<MiniExpr>),
    And(Box<MiniExpr>, Box<MiniExpr>),
    Ite(Box<MiniExpr>, Box<MiniExpr>, Box<MiniExpr>),
}

const WIDTH: u32 = 6;

fn mini_expr() -> impl Strategy<Value = MiniExpr> {
    let leaf = prop_oneof![
        Just(MiniExpr::VarX),
        Just(MiniExpr::VarY),
        (0u8..64).prop_map(MiniExpr::Const),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MiniExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MiniExpr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MiniExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| { MiniExpr::Ite(Box::new(c), Box::new(a), Box::new(b)) }),
        ]
    })
}

fn to_term(tm: &TermManager, expr: &MiniExpr, x: &TermRef, y: &TermRef) -> TermRef {
    match expr {
        MiniExpr::VarX => x.clone(),
        MiniExpr::VarY => y.clone(),
        MiniExpr::Const(value) => tm.bv_const(u128::from(*value), WIDTH),
        MiniExpr::Add(a, b) => tm.bv_add(to_term(tm, a, x, y), to_term(tm, b, x, y)),
        MiniExpr::Xor(a, b) => tm.bv_xor(to_term(tm, a, x, y), to_term(tm, b, x, y)),
        MiniExpr::And(a, b) => tm.bv_and(to_term(tm, a, x, y), to_term(tm, b, x, y)),
        MiniExpr::Ite(c, a, b) => {
            let cond = tm.neq(to_term(tm, c, x, y), tm.bv_const(0, WIDTH));
            tm.ite(cond, to_term(tm, a, x, y), to_term(tm, b, x, y))
        }
    }
}

fn brute_eval(expr: &MiniExpr, x: u8, y: u8) -> u8 {
    let mask = 0x3f;
    match expr {
        MiniExpr::VarX => x & mask,
        MiniExpr::VarY => y & mask,
        MiniExpr::Const(value) => value & mask,
        MiniExpr::Add(a, b) => (brute_eval(a, x, y).wrapping_add(brute_eval(b, x, y))) & mask,
        MiniExpr::Xor(a, b) => (brute_eval(a, x, y) ^ brute_eval(b, x, y)) & mask,
        MiniExpr::And(a, b) => brute_eval(a, x, y) & brute_eval(b, x, y) & mask,
        MiniExpr::Ite(c, a, b) => {
            if brute_eval(c, x, y) != 0 {
                brute_eval(a, x, y)
            } else {
                brute_eval(b, x, y)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `expr == target` is satisfiable exactly when brute force finds a
    /// satisfying (x, y), and any model returned is correct.
    #[test]
    fn solver_agrees_with_brute_force(expr in mini_expr(), target in 0u8..64) {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(WIDTH));
        let y = tm.var("y", Sort::BitVec(WIDTH));
        let term = to_term(&tm, &expr, &x, &y);
        let query = tm.eq(term.clone(), tm.bv_const(u128::from(target), WIDTH));

        let mut brute_sat = false;
        'outer: for xv in 0u8..64 {
            for yv in 0u8..64 {
                if brute_eval(&expr, xv, yv) == target {
                    brute_sat = true;
                    break 'outer;
                }
            }
        }

        let mut solver = Solver::new();
        solver.assert(query.clone());
        match solver.check() {
            CheckResult::Sat(model) => {
                prop_assert!(brute_sat, "solver found a model but brute force says UNSAT");
                // Validate the model against the independent evaluator.
                let mut env = Assignment::new();
                env.insert("x".into(), Value::Bv(model.get_bv("x").unwrap_or_else(|| BvValue::zero(WIDTH))));
                env.insert("y".into(), Value::Bv(model.get_bv("y").unwrap_or_else(|| BvValue::zero(WIDTH))));
                let value = eval(&query, &env).expect("closed formula evaluates");
                prop_assert!(value.as_bool(), "model does not satisfy the query");
            }
            CheckResult::Unsat => prop_assert!(!brute_sat, "solver reported UNSAT but a model exists"),
        }
    }

    /// Constant folding in the term manager preserves semantics: evaluating
    /// the folded term equals evaluating the unfolded structure.
    #[test]
    fn construction_time_folding_is_sound(expr in mini_expr(), xv in 0u8..64, yv in 0u8..64) {
        let tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(WIDTH));
        let y = tm.var("y", Sort::BitVec(WIDTH));
        let term = to_term(&tm, &expr, &x, &y);
        let mut env = Assignment::new();
        env.insert("x".into(), Value::bv(u128::from(xv), WIDTH));
        env.insert("y".into(), Value::bv(u128::from(yv), WIDTH));
        let evaluated = eval(&term, &env).expect("evaluates").as_bv().to_u128();
        prop_assert_eq!(evaluated as u8, brute_eval(&expr, xv, yv));
    }
}
