//! Offline stand-in for `serde`.
//!
//! This build environment has no network access and no vendored registry, so
//! the real `serde` crate is unavailable.  The workspace only uses serde for
//! `#[derive(Serialize, Deserialize)]` annotations on configuration and
//! report types — nothing in-tree performs actual serialization.  This shim
//! therefore provides the two derive macros as no-ops: the annotations stay
//! in place (documenting intent and keeping the source compatible with the
//! real crate), but no trait impls are generated.
//!
//! Swapping in the real serde is a one-line change in the workspace
//! manifest; no source edits are needed.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
