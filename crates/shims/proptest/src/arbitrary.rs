//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        marker: std::marker::PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_the_domain() {
        let mut rng = TestRng::new(11);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..64 {
            if any::<bool>().generate(&mut rng) {
                seen_true = true;
            } else {
                seen_false = true;
            }
        }
        assert!(seen_true && seen_false);
        // u64 values should not all collide.
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
    }
}
