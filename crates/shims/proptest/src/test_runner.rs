//! Test-runner configuration and the deterministic RNG driving generation.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility with the real crate; this shim never
    /// shrinks, so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic SplitMix64 generator; each test derives its seed from its
/// own name so runs are reproducible and independent of test order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seeds from a test name via FNV-1a.
    pub fn from_name(name: &str) -> TestRng {
        let mut hash = 0xcbf29ce484222325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng::new(hash)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("some_test");
        let mut b = TestRng::from_name("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("other_test");
        assert_ne!(TestRng::from_name("some_test").next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
