//! Value-generation strategies: the composable core of the shim.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for
    /// "smaller" values and wraps it into composite nodes, up to `depth`
    /// levels.  (`desired_size` and `expected_branch_size` are accepted for
    /// API compatibility and ignored — this shim controls size by depth
    /// alone.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let deeper = recurse(levels.last().expect("at least the leaf level").clone());
            levels.push(deeper.boxed());
        }
        BoxedStrategy(Arc::new(LevelPick { levels }))
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view used inside [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Picks a recursion level uniformly, then generates from it (deeper levels
/// can still produce shallow values because composite strategies embed the
/// leaf strategy in their choice sets).
struct LevelPick<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> DynStrategy<T> for LevelPick<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.levels.len() as u64) as usize;
        self.levels[index].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.arms.len() as u64) as usize;
        self.arms[index].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_just_produce_expected_values() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            assert_eq!(Just("x").generate(&mut rng), "x");
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::new(4);
        let strat = crate::prop_oneof![(0u8..10).prop_map(|v| v * 2), Just(99u8),];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && v < 20));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }
}
