//! Offline stand-in for `proptest`.
//!
//! This environment has no access to crates.io, so the real `proptest`
//! crate cannot be used.  This shim implements the subset of its API that
//! the workspace's property tests rely on:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating one `#[test]` per property;
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, and `boxed`;
//! * strategies: integer/bool [`arbitrary::any`], integer ranges,
//!   [`strategy::Just`], tuples up to arity 4, and [`prop_oneof!`] unions;
//! * `prop_assert!` / `prop_assert_eq!` (panic-based — no shrinking).
//!
//! Differences from the real crate: values are generated from a
//! deterministic per-test RNG (seeded from the test name, so failures are
//! reproducible), and failing cases are *not* shrunk — the panic message
//! carries the generated values instead, which the workspace's tests
//! already format into their assertion messages.

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property test (panics on failure; the real
/// crate returns an error and shrinks, this shim does not).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `name in strategy` binding is sampled
/// `config.cases` times and the body re-run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let strategies = ( $( $strat, )+ );
                for case in 0..config.cases {
                    let ( $($arg,)+ ) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let _ = case;
                    $body
                }
            }
        )*
    };
}
