//! Offline stand-in for `criterion`.
//!
//! The benchmark harness under `crates/bench/benches/` is written against
//! the Criterion API; this shim supplies the subset those targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a much simpler
//! measurement model: each benchmark is warmed up once, the iteration count
//! is calibrated towards a fixed measurement budget, and the mean wall-clock
//! time per iteration is printed.
//!
//! No statistical analysis, plotting, or result persistence is performed;
//! the numbers are honest wall-clock means, which is what the reproduction
//! guides in `docs/REPRODUCING.md` compare against.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark (after one calibration pass).
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(400);

/// How a batched input is sized; accepted for API compatibility, the shim
/// measures identically for all variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-creating its input with `setup` outside the
    /// timed section each iteration.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples (used here to scale the
    /// measurement budget; small values keep slow benchmarks fast).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id);
        // Calibration pass: one iteration to estimate per-iteration cost.
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iteration = bencher.elapsed.max(Duration::from_nanos(1));
        let budget = MEASUREMENT_BUDGET.min(per_iteration * self.sample_size as u32 * 2);
        let iterations = (budget.as_nanos() / per_iteration.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed / iterations as u32;
        println!("{full_name:<60} time: {mean:>12.3?}  ({iterations} iterations)");
        self.criterion.results.push((full_name, mean));
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// All `(name, mean time)` pairs measured so far.
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }
}

/// Prevents the compiler from optimising a value away (re-exported for
/// compatibility; `std::hint::black_box` works equally well).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_records() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(10);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
        assert_eq!(criterion.results().len(), 1);
        assert!(criterion.results()[0].0.contains("shim/count"));
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("batched", 1), &1u32, |b, &v| {
            b.iter_batched(
                || vec![v; 8],
                |input| input.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(criterion.results().len(), 1);
        assert!(criterion.results()[0].0.ends_with("batched/1"));
    }
}
