//! Offline stand-in for `rand`.
//!
//! Implements exactly the API subset the program generator uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open and inclusive integer ranges — on top
//! of a SplitMix64 core.  The generator is fully deterministic per seed,
//! which the campaign engine relies on for schedule-independent
//! reproducibility (same seed set ⇒ byte-identical bug reports regardless
//! of `--jobs`).
//!
//! The statistical quality of SplitMix64 is more than sufficient for
//! fuzzing-style program generation; it is the same mixer the real
//! `rand` crate uses to seed its generators from a `u64`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `gen_range` can produce.  The single blanket impl of
/// [`SampleRange`] over this trait (mirroring the real crate's
/// `SampleUniform`) is what lets integer-literal ranges unify with the
/// expected output type during inference.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn from_i128(value: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }

            fn from_i128(value: i128) -> $t {
                value as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be sampled uniformly from a range (the `gen_range`
/// argument).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start.to_i128(), self.end.to_i128());
        assert!(start < end, "cannot sample from empty range");
        let span = (end - start) as u128;
        T::from_i128(start + (u128::from(rng.next_u64()) % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start().to_i128(), self.end().to_i128());
        assert!(start <= end, "cannot sample from empty range");
        let span = (end - start) as u128 + 1;
        T::from_i128(start + (u128::from(rng.next_u64()) % span) as i128)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniformly random boolean with probability `p` of being `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let u = rng.gen_range(0usize..=3);
            assert!(u <= 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1_000_000)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0u32..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
